//! Mitigation comparison: FaP vs FaPIT vs FalVolt (the paper's Figures 6-8),
//! expressed as declarative campaign plans — the strategy axis is data, and
//! the three strategies of one fault rate retrain against the same pooled
//! chip.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mitigation_comparison
//! ```

use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fault mitigation comparison (Figures 6, 7, 8) ==");
    let scale = ExperimentScale::Tiny;
    let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, scale, 42)?;
    println!(
        "baseline accuracy on {}: {:.1}%",
        ctx.kind().label(),
        ctx.baseline_accuracy() * 100.0
    );

    // Figure 7 (and 6): accuracy of each strategy at several fault rates,
    // plus the per-layer thresholds FalVolt learns.
    let epochs = scale.retrain_epochs();
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.10, 0.30]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::FaP,
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .run()?;
    println!("\n-- Figure 7: accuracy after mitigation --");
    println!("  fault rate | strategy | accuracy");
    for cell in &run {
        let outcome = cell.outcome().expect("retraining cell");
        println!(
            "  {:>9.0}% | {:<8} | {:>5.1}%",
            cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
            outcome.strategy,
            cell.accuracy * 100.0
        );
    }
    println!("\n-- Figure 6: per-layer thresholds learned by FalVolt --");
    for cell in &run {
        let outcome = cell.outcome().expect("retraining cell");
        if outcome.strategy != "FalVolt" {
            continue;
        }
        println!(
            "  fault rate {:.0}%:",
            cell.spec.fault_rate.unwrap_or(0.0) * 100.0
        );
        for (layer, v) in &outcome.thresholds {
            println!("    {layer:12} V = {v:.3}");
        }
    }

    // Figure 8: convergence speed of FaPIT vs FalVolt at 30% faulty PEs.
    let convergence = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .run()?;
    let fapit = &convergence.cells()[0]
        .outcome()
        .expect("FaPIT cell")
        .history;
    let falvolt = &convergence.cells()[1]
        .outcome()
        .expect("FalVolt cell")
        .history;
    println!("\n-- Figure 8: accuracy vs retraining epochs (30% faulty PEs) --");
    println!("  epoch |  FaPIT  | FalVolt");
    for (fa, fv) in fapit.iter().zip(falvolt) {
        println!(
            "  {:>5} | {:>6.1}% | {:>6.1}%",
            fa.epoch,
            fa.test_accuracy * 100.0,
            fv.test_accuracy * 100.0
        );
    }
    let target = convergence.baseline_accuracy() * 0.95;
    println!(
        "  epochs to reach 95% of baseline: FaPIT {:?}, FalVolt {:?}",
        falvolt::mitigation::epochs_to_reach(fapit, target),
        falvolt::mitigation::epochs_to_reach(falvolt, target)
    );
    Ok(())
}
