//! Mitigation comparison: FaP vs FaPIT vs FalVolt (the paper's Figures 6-8).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mitigation_comparison
//! ```

use falvolt::experiment::{
    convergence_experiment, mitigation_comparison, DatasetKind, ExperimentContext, ExperimentScale,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fault mitigation comparison (Figures 6, 7, 8) ==");
    let scale = ExperimentScale::Tiny;
    let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, scale, 42)?;
    println!(
        "baseline accuracy on {}: {:.1}%",
        ctx.kind().label(),
        ctx.baseline_accuracy() * 100.0
    );

    // Figure 7 (and 6): accuracy of each strategy at several fault rates,
    // plus the per-layer thresholds FalVolt learns.
    let fault_rates = [0.10, 0.30];
    let epochs = scale.retrain_epochs();
    let report = mitigation_comparison(&mut ctx, &fault_rates, epochs)?;
    println!("\n-- Figure 7: accuracy after mitigation --");
    println!("  fault rate | strategy | accuracy");
    for row in &report.rows {
        println!(
            "  {:>9.0}% | {:<8} | {:>5.1}%",
            row.fault_rate * 100.0,
            row.strategy,
            row.accuracy * 100.0
        );
    }
    println!("\n-- Figure 6: per-layer thresholds learned by FalVolt --");
    for row in report.rows.iter().filter(|r| r.strategy == "FalVolt") {
        println!("  fault rate {:.0}%:", row.fault_rate * 100.0);
        for (layer, v) in &row.thresholds {
            println!("    {layer:12} V = {v:.3}");
        }
    }

    // Figure 8: convergence speed of FaPIT vs FalVolt at 30% faulty PEs.
    let convergence = convergence_experiment(&mut ctx, 0.30, epochs)?;
    println!("\n-- Figure 8: accuracy vs retraining epochs (30% faulty PEs) --");
    println!("  epoch |  FaPIT  | FalVolt");
    for (fapit, falvolt) in convergence.fapit.iter().zip(&convergence.falvolt) {
        println!(
            "  {:>5} | {:>6.1}% | {:>6.1}%",
            fapit.epoch,
            fapit.test_accuracy * 100.0,
            falvolt.test_accuracy * 100.0
        );
    }
    let (fapit_epochs, falvolt_epochs) = convergence.epochs_to_fraction_of_baseline(0.95);
    println!(
        "  epochs to reach 95% of baseline: FaPIT {:?}, FalVolt {:?}",
        fapit_epochs, falvolt_epochs
    );
    Ok(())
}
