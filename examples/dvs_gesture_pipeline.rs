//! End-to-end pipeline on the neuromorphic DVS-Gesture-like workload: the
//! event-stream dataset the paper finds most fault-sensitive.
//!
//! Trains the 5-conv-block PLIF-SNN on synthetic gesture events, measures the
//! stuck-at fault impact, and repairs the accelerator with FalVolt.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dvs_gesture_pipeline
//! ```

use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::{MitigationStrategy, Mitigator, RetrainConfig};
use falvolt::vulnerability::accuracy_under_faults;
use falvolt_systolic::{FaultMap, StuckAt};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== DVS-Gesture pipeline ==");
    println!("training the 5-block PLIF-SNN on synthetic gesture events (this is the");
    println!("largest of the three classifiers; expect roughly a minute)...");
    let mut ctx = ExperimentContext::prepare(DatasetKind::DvsGesture, ExperimentScale::Tiny, 42)?;
    println!(
        "baseline accuracy: {:.1}% over {} gesture classes",
        ctx.baseline_accuracy() * 100.0,
        ctx.classes()
    );

    let systolic = *ctx.systolic_config();
    let msb = systolic.accumulator_format().msb();
    let mut rng = StdRng::seed_from_u64(3);
    let test = ctx.test_batches().to_vec();
    let train = ctx.train_batches().to_vec();

    for &rate in &[0.10f64, 0.30] {
        let fault_map = FaultMap::random_with_rate(&systolic, rate, msb, StuckAt::One, &mut rng)?;

        ctx.restore_baseline()?;
        let unmitigated =
            accuracy_under_faults(ctx.network_mut(), systolic, fault_map.clone(), &test)?;

        ctx.restore_baseline()?;
        let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::quick());
        let outcome = mitigator.run(
            ctx.network_mut(),
            &fault_map,
            &train,
            &test,
            MitigationStrategy::falvolt(ExperimentScale::Tiny.retrain_epochs()),
        )?;

        println!(
            "fault rate {:>3.0}%: unmitigated {:>5.1}%  ->  FalVolt {:>5.1}%  (pruned {:.1}% of weights)",
            rate * 100.0,
            unmitigated * 100.0,
            outcome.final_accuracy * 100.0,
            outcome.pruned_weight_fraction * 100.0
        );
    }
    Ok(())
}
