//! End-to-end pipeline on the neuromorphic DVS-Gesture-like workload: the
//! event-stream dataset the paper finds most fault-sensitive.
//!
//! Trains the 5-conv-block PLIF-SNN on synthetic gesture events, then runs
//! two campaign plans over the same fault-rate axis: an evaluation campaign
//! (stuck-at impact, unmitigated) and a FalVolt retraining campaign. The
//! shared seed mixing means each rate's repair targets exactly the chip the
//! evaluation measured.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dvs_gesture_pipeline
//! ```

use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== DVS-Gesture pipeline ==");
    println!("training the 5-block PLIF-SNN on synthetic gesture events (this is the");
    println!("largest of the three classifiers; expect roughly a minute)...");
    let mut ctx = ExperimentContext::prepare(DatasetKind::DvsGesture, ExperimentScale::Tiny, 42)?;
    println!(
        "baseline accuracy: {:.1}% over {} gesture classes",
        ctx.baseline_accuracy() * 100.0,
        ctx.classes()
    );

    let rates = vec![0.10f64, 0.30];
    let unmitigated = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(rates.clone()))
        .run()?;
    let repaired = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(rates))
        .axis(Axis::Mitigation(vec![MitigationStrategy::falvolt(
            ExperimentScale::Tiny.retrain_epochs(),
        )]))
        .run()?;

    for (vulnerable, fixed) in unmitigated.cells().iter().zip(repaired.cells()) {
        let outcome = fixed.outcome().expect("retraining cell");
        println!(
            "fault rate {:>3.0}%: unmitigated {:>5.1}%  ->  FalVolt {:>5.1}%  (pruned {:.1}% of weights)",
            vulnerable.spec.fault_rate.unwrap_or(0.0) * 100.0,
            vulnerable.accuracy * 100.0,
            outcome.final_accuracy * 100.0,
            outcome.pruned_weight_fraction * 100.0
        );
    }
    Ok(())
}
