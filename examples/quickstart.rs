//! Quickstart: train a small spiking network, break the accelerator with
//! stuck-at faults, and repair it with FalVolt — in two campaign plans.
//!
//! The two plans share the same fault-drawing parameters and seed mixing, so
//! the chip FalVolt repairs is exactly the chip the evaluation measured.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== FalVolt quickstart ==");
    println!("1. generating a synthetic MNIST-like dataset and training a PLIF-SNN baseline...");
    let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
    println!(
        "   baseline accuracy (fault-free): {:.1}%",
        ctx.baseline_accuracy() * 100.0
    );

    // A chip whose post-fabrication test found stuck-at-1 faults in the
    // accumulator MSB of 30% of its PEs: a one-cell evaluation campaign
    // measures inference accuracy with the faults active and unmitigated.
    println!("2. injecting faults (30% of PEs, MSB stuck-at-1)...");
    let vulnerable = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30]))
        .run()?;
    println!(
        "   accuracy with faults active and unmitigated: {:.1}%",
        vulnerable.cells()[0].accuracy * 100.0
    );

    // FalVolt: prune the weights mapped to faulty PEs, retrain with per-layer
    // learnable threshold voltages. Adding the strategy axis turns the cell
    // into a retraining cell; the default seed mixer excludes the payload,
    // so the drawn chip is the same one measured above.
    println!("3. running FalVolt mitigation (Algorithm 1)...");
    let mitigated = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30]))
        .axis(Axis::Mitigation(vec![MitigationStrategy::falvolt(
            ExperimentScale::Tiny.retrain_epochs(),
        )]))
        .run()?;
    let outcome = mitigated.cells()[0].outcome().expect("retraining cell");

    println!(
        "   accuracy right after fault-aware pruning: {:.1}%",
        outcome.accuracy_after_pruning * 100.0
    );
    println!(
        "   accuracy after FalVolt retraining:        {:.1}%",
        outcome.final_accuracy * 100.0
    );
    println!("   learned per-layer threshold voltages:");
    for (layer, v) in &outcome.thresholds {
        println!("     {layer:12} V = {v:.3}");
    }
    Ok(())
}
