//! Quickstart: train a small spiking network, break the accelerator with
//! stuck-at faults, and repair it with FalVolt.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::{MitigationStrategy, Mitigator, RetrainConfig};
use falvolt::vulnerability::accuracy_under_faults;
use falvolt_systolic::{FaultMap, StuckAt};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== FalVolt quickstart ==");
    println!("1. generating a synthetic MNIST-like dataset and training a PLIF-SNN baseline...");
    let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
    println!(
        "   baseline accuracy (fault-free): {:.1}%",
        ctx.baseline_accuracy() * 100.0
    );

    // A chip whose post-fabrication test found stuck-at-1 faults in the
    // accumulator MSB of 30% of its PEs.
    let systolic = *ctx.systolic_config();
    let mut rng = StdRng::seed_from_u64(7);
    let fault_map = FaultMap::random_with_rate(
        &systolic,
        0.30,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )?;
    println!("2. injecting faults: {fault_map}");

    // Faulty inference without any mitigation.
    ctx.restore_baseline()?;
    let test = ctx.test_batches().to_vec();
    let faulty_accuracy =
        accuracy_under_faults(ctx.network_mut(), systolic, fault_map.clone(), &test)?;
    println!(
        "   accuracy with faults active and unmitigated: {:.1}%",
        faulty_accuracy * 100.0
    );

    // FalVolt: prune the weights mapped to faulty PEs, retrain with per-layer
    // learnable threshold voltages.
    println!("3. running FalVolt mitigation (Algorithm 1)...");
    let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::quick());
    ctx.restore_baseline()?;
    let train = ctx.train_batches().to_vec();
    let outcome = mitigator.run(
        ctx.network_mut(),
        &fault_map,
        &train,
        &test,
        MitigationStrategy::falvolt(ExperimentScale::Tiny.retrain_epochs()),
    )?;

    println!(
        "   accuracy right after fault-aware pruning: {:.1}%",
        outcome.accuracy_after_pruning * 100.0
    );
    println!(
        "   accuracy after FalVolt retraining:        {:.1}%",
        outcome.final_accuracy * 100.0
    );
    println!("   learned per-layer threshold voltages:");
    for (layer, v) in &outcome.thresholds {
        println!("     {layer:12} V = {v:.3}");
    }
    Ok(())
}
