//! # falvolt-suite
//!
//! Umbrella crate of the FalVolt reproduction workspace. It re-exports the
//! member crates so that the examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) have a single dependency, and so that a
//! downstream user can depend on one crate and reach the whole stack.
//!
//! * [`tensor`] — dense tensor substrate,
//! * [`fixedpoint`] — Q-format fixed-point arithmetic,
//! * [`systolic`] — systolic-array accelerator simulator with stuck-at fault
//!   injection,
//! * [`snn`] — spiking-neural-network library (PLIF neurons, BPTT),
//! * [`datasets`] — synthetic MNIST / N-MNIST / DVS-Gesture stand-ins,
//! * [`core`] — FalVolt itself: pruning, mitigation, vulnerability analysis
//!   and figure-level experiments.
//!
//! # Example
//!
//! ```
//! use falvolt_suite::snn::config::ArchitectureConfig;
//!
//! # fn main() -> Result<(), falvolt_suite::snn::SnnError> {
//! let network = ArchitectureConfig::tiny_test().build(1)?;
//! assert!(!network.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The FalVolt core crate: mitigation, vulnerability analysis, experiments.
pub use falvolt as core;
/// Synthetic dataset generators.
pub use falvolt_datasets as datasets;
/// Fixed-point arithmetic.
pub use falvolt_fixedpoint as fixedpoint;
/// Spiking-neural-network library.
pub use falvolt_snn as snn;
/// Systolic-array accelerator simulator.
pub use falvolt_systolic as systolic;
/// Dense tensor substrate.
pub use falvolt_tensor as tensor;
