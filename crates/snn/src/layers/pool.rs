//! Average and max pooling layers.

use crate::layers::{ForwardContext, Layer};
use crate::{Result, SnnError};
use falvolt_tensor::{ops, Tensor};

/// Non-overlapping average pooling with a square window.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{AvgPool2d, ForwardContext, Layer, Mode};
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut pool = AvgPool2d::new("pool1", 2);
/// let backend = FloatBackend::new();
/// let ctx = ForwardContext::new(Mode::Eval, &backend);
/// let out = pool.forward(&Tensor::ones(&[1, 3, 8, 8]), &ctx)?;
/// assert_eq!(out.shape(), &[1, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    name: String,
    kernel: usize,
    caches: Vec<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with window and stride `kernel`.
    pub fn new(name: impl Into<String>, kernel: usize) -> Self {
        Self {
            name: name.into(),
            kernel,
            caches: Vec::new(),
        }
    }

    /// The pooling window size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }
}

impl Layer for AvgPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        let output = ops::avg_pool2d_forward(input, self.kernel)?;
        if ctx.mode.is_train() {
            self.caches.push(input.shape().to_vec());
        }
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        Ok(ops::avg_pool2d_backward(grad_output, &shape, self.kernel)?)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }

    fn cache_fingerprint(&self, fp: &mut falvolt_tensor::Fingerprint) {
        // The window size is the layer's only result-changing configuration.
        fp.write_str(self.name());
        fp.write_usize(self.kernel);
    }
}

/// Non-overlapping max pooling with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    kernel: usize,
    caches: Vec<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with window and stride `kernel`.
    pub fn new(name: impl Into<String>, kernel: usize) -> Self {
        Self {
            name: name.into(),
            kernel,
            caches: Vec::new(),
        }
    }

    /// The pooling window size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        let (mut output, argmax) = ops::max_pool2d_forward(input, self.kernel)?;
        // Max pooling preserves the binary amplitude of spikes, so a spike
        // input yields a spike output: re-index it (one O(len) scan of the
        // smaller pooled tensor) to keep the event stream flowing into the
        // next convolution block.
        if input.spike_index().is_some() && !ctx.mode.is_train() {
            if let Some(cols) = output.shape().last().copied().filter(|&c| c > 0) {
                if let Some(index) = falvolt_tensor::SpikeIndex::from_dense(output.data(), cols) {
                    output.attach_spike_index(std::sync::Arc::new(index));
                }
            }
        }
        if ctx.mode.is_train() {
            self.caches.push((input.shape().to_vec(), argmax));
        }
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (shape, argmax) = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        Ok(ops::max_pool2d_backward(grad_output, &shape, &argmax)?)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }

    fn cache_fingerprint(&self, fp: &mut falvolt_tensor::Fingerprint) {
        // The window size is the layer's only result-changing configuration.
        fp.write_str(self.name());
        fp.write_usize(self.kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;

    #[test]
    fn avg_pool_forward_backward_roundtrip() {
        let backend = FloatBackend::new();
        let mut pool = AvgPool2d::new("avg", 2);
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let y = pool.forward(&x, &ctx).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.get(&[0, 0, 0, 0]), (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
        let g = pool.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert!(g.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
        assert!(pool.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());
        assert_eq!(pool.kernel(), 2);
    }

    #[test]
    fn max_pool_routes_gradient_to_maxima() {
        let backend = FloatBackend::new();
        let mut pool = MaxPool2d::new("max", 2);
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![0.1, 0.9, 0.3, 0.2]).unwrap();
        let y = pool.forward(&x, &ctx).unwrap();
        assert_eq!(y.data(), &[0.9]);
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(pool.kernel(), 2);
    }

    #[test]
    fn eval_mode_keeps_no_cache_and_reset_clears() {
        let backend = FloatBackend::new();
        let mut pool = AvgPool2d::new("avg", 2);
        let eval = ForwardContext::new(Mode::Eval, &backend);
        pool.forward(&Tensor::ones(&[1, 1, 4, 4]), &eval).unwrap();
        assert!(pool.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());

        let train = ForwardContext::new(Mode::Train, &backend);
        pool.forward(&Tensor::ones(&[1, 1, 4, 4]), &train).unwrap();
        pool.reset_state();
        assert!(pool.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());

        let mut mp = MaxPool2d::new("max", 2);
        mp.forward(&Tensor::ones(&[1, 1, 4, 4]), &train).unwrap();
        mp.reset_state();
        assert!(mp.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn invalid_spatial_size_is_rejected() {
        let backend = FloatBackend::new();
        let mut pool = AvgPool2d::new("avg", 2);
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        assert!(pool.forward(&Tensor::ones(&[1, 1, 5, 5]), &ctx).is_err());
    }
}
