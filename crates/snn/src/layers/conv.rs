//! 2-D convolution layer (im2col lowering, backend-executed matmul).

use crate::layers::{ForwardContext, Layer};
use crate::param::Param;
use crate::{Result, SnnError};
use falvolt_tensor::ops::{self, Conv2dDims};
use falvolt_tensor::{init, Fingerprint, MatmulHint, OperandProfile, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct StepCache {
    cols: Tensor,
    dims: Conv2dDims,
}

/// A 2-D convolution over `[N, C, H, W]` inputs with square kernels.
///
/// The weight is stored in the `[out_channels, in_channels * k * k]` matrix
/// layout — the same matrix the systolic array tiles over its PEs, which is
/// what makes fault-aware pruning of this layer straightforward.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{Conv2d, ForwardContext, Layer, Mode};
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut conv = Conv2d::new("conv1", 1, 4, 3, 1, 1, 42)?;
/// let backend = FloatBackend::new();
/// let ctx = ForwardContext::new(Mode::Eval, &backend);
/// let out = conv.forward(&Tensor::zeros(&[2, 1, 8, 8]), &ctx)?;
/// assert_eq!(out.shape(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Param,
    caches: Vec<StepCache>,
    // Transposed weight keyed by the weight's edit version (see `Linear`).
    // Arc-shared so scenario views inherit it instead of deep-copying a
    // weight-sized buffer per worker.
    weight_t: Option<(u64, Arc<Tensor>)>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for zero-sized channels, kernel or
    /// stride.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 {
            return Err(SnnError::invalid_config("channel counts must be non-zero"));
        }
        if kernel == 0 || stride == 0 {
            return Err(SnnError::invalid_config(
                "kernel and stride must be non-zero",
            ));
        }
        let name = name.into();
        let fan_in = in_channels * kernel * kernel;
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_uniform(out_channels, fan_in, &mut rng),
        );
        let bias = Param::new(format!("{name}.bias"), Tensor::zeros(&[out_channels]));
        Ok(Self {
            name,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias,
            caches: Vec::new(),
            weight_t: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The `[out_channels, in_channels * k * k]` weight matrix.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    fn dims_for(&self, input: &Tensor) -> Result<Conv2dDims> {
        if input.ndim() != 4 {
            return Err(SnnError::invalid_input(format!(
                "conv layer '{}' expects [N, C, H, W] input, got shape {:?}",
                self.name,
                input.shape()
            )));
        }
        if input.shape()[1] != self.in_channels {
            return Err(SnnError::invalid_input(format!(
                "conv layer '{}' expects {} input channels, got {}",
                self.name,
                self.in_channels,
                input.shape()[1]
            )));
        }
        Ok(Conv2dDims::new(
            input.shape()[0],
            self.in_channels,
            self.out_channels,
            input.shape()[2],
            input.shape()[3],
            self.kernel,
            self.stride,
            self.padding,
        )?)
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        let dims = self.dims_for(input)?;
        // A spike input carrying a CSR index costs O(1) to profile (the
        // index certifies binariness and carries the nonzero count);
        // otherwise probe the input once (O(len), negligible next to the
        // product). With hints disabled everything is pinned dense.
        let index = input
            .spike_index()
            .filter(|ix| ix.rows() == dims.batch * dims.in_channels * dims.in_h);
        let profile = if !ctx.spike_hints {
            OperandProfile::dense()
        } else if let Some(index) = index {
            OperandProfile {
                density: index.density(),
                binary: true,
            }
        } else {
            OperandProfile::measure(input.data())
        };
        // The im2col lowering is a pure function of the input and the conv
        // geometry — in particular it is *backend-independent*, so scenario
        // sweeps evaluating many fault maps on the same input batch lower it
        // once and share it through the sweep cache (training passes own
        // their cols tensor and never cache). The key uses the input's
        // content id: O(1) per consult instead of hashing the batch.
        // Only scenario-invariant (prefix) inputs consult the shared store:
        // suffix inputs are per-scenario, per-step tensors whose freshly
        // minted content ids can never produce a second sighting, so their
        // lookups would be pure lock traffic and dead Pending markers.
        let mut local_cols: Option<Tensor> = None;
        let mut shared_cols: Option<Arc<Tensor>> = None;
        match ctx.cache {
            Some(cache) if !ctx.mode.is_train() && ctx.shareable_input => {
                let geom = dims.geom();
                let mut fp = Fingerprint::new();
                fp.write_str("im2col");
                fp.write_dims(&[
                    geom.batch,
                    geom.channels,
                    geom.in_h,
                    geom.in_w,
                    geom.kernel,
                    geom.stride,
                    geom.padding,
                ]);
                fp.write_u64(input.content_id());
                // The CSR switch changes whether the cached cols tensor
                // carries an index (never its bytes); keep the variants
                // apart so an index-free consumer is not handed one.
                fp.write_u64(u64::from(ctx.csr_spikes));
                let key = fp.finish();
                // Prefix inputs are scenario-invariant by construction, so
                // their lowerings promote on first sighting — the first
                // worker's cols (and their content id) become the shared
                // operand every later worker keys its products on.
                match cache.lookup_lowered_eager(key) {
                    crate::sweep_cache::SweepDecision::Hit(hit) => shared_cols = Some(hit),
                    decision => {
                        let promoted =
                            matches!(decision, crate::sweep_cache::SweepDecision::Compute);
                        let computed = match ops::im2col_with_profile(input, &dims, profile) {
                            Ok(cols) => Arc::new(cols),
                            Err(e) => {
                                // Release the in-flight slot so the key is
                                // not dead for the rest of the sweep.
                                if promoted {
                                    cache.abandon_lowered(key);
                                }
                                return Err(e.into());
                            }
                        };
                        if promoted {
                            cache.fulfill_lowered(key, Arc::clone(&computed));
                        }
                        shared_cols = Some(computed);
                    }
                }
            }
            _ => local_cols = Some(ops::im2col_with_profile(input, &dims, profile)?),
        }
        let cols: &Tensor = shared_cols
            .as_deref()
            .or(local_cols.as_ref())
            .expect("one lowering path taken above");
        let weight_t =
            crate::layers::shared_weight_transpose(&self.weight, &mut self.weight_t, ctx.cache)?;
        let weight_t: &Tensor = &weight_t;
        let hint = if !ctx.spike_hints {
            MatmulHint::Dense
        } else if profile.binary {
            // im2col preserves binariness (it only copies pixels and pads
            // with zeros), so the lowered matrix is a spike matrix too.
            MatmulHint::Spikes
        } else {
            MatmulHint::Auto
        };
        // Prefix products are scenario-invariant by construction: tell the
        // backend, so sweep-batched backends evaluate every fault scenario
        // in one pass on the first request.
        let rows = ctx
            .backend
            .matmul_request(
                crate::backend::MatmulRequest::new(cols, weight_t)
                    .with_hint(hint)
                    .scenario_shared(ctx.shareable_input),
            )?
            .into_tensor();
        let mut feature_map = ops::rows_to_feature_map(&rows, &dims)?;
        ops::add_channel_bias(&mut feature_map, self.bias.value())?;
        if ctx.mode.is_train() {
            let cols = local_cols.expect("training lowers locally");
            self.caches.push(StepCache { cols, dims });
        }
        Ok(feature_map)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        let grads =
            ops::conv2d_backward(grad_output, &cache.cols, self.weight.value(), &cache.dims)?;
        self.weight.accumulate_grad(&grads.grad_weight)?;
        self.bias.accumulate_grad(&grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn cache_fingerprint(&self, fp: &mut falvolt_tensor::Fingerprint) {
        fp.write_str(self.name());
        // The convolution geometry changes the output independently of the
        // weight contents (the weight shape fixes channels and kernel, but
        // not stride or padding).
        fp.write_dims(&[
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        ]);
        for param in [&self.weight, &self.bias] {
            fp.write_dims(param.value().shape());
            fp.write_f32s(param.value().data());
        }
    }

    fn weight_mut(&mut self) -> Option<&mut Param> {
        Some(&mut self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;

    fn train_ctx(backend: &FloatBackend) -> ForwardContext<'_> {
        ForwardContext::new(Mode::Train, backend)
    }

    #[test]
    fn construction_validates_arguments() {
        assert!(Conv2d::new("c", 0, 4, 3, 1, 1, 0).is_err());
        assert!(Conv2d::new("c", 1, 0, 3, 1, 1, 0).is_err());
        assert!(Conv2d::new("c", 1, 4, 0, 1, 1, 0).is_err());
        assert!(Conv2d::new("c", 1, 4, 3, 0, 1, 0).is_err());
        let c = Conv2d::new("c", 2, 4, 3, 1, 1, 0).unwrap();
        assert_eq!(c.weight().value().shape(), &[4, 18]);
        assert_eq!(c.in_channels(), 2);
        assert_eq!(c.out_channels(), 4);
    }

    #[test]
    fn forward_shape_and_input_validation() {
        let backend = FloatBackend::new();
        let mut conv = Conv2d::new("c", 2, 8, 3, 1, 1, 1).unwrap();
        let ctx = train_ctx(&backend);
        let out = conv.forward(&Tensor::zeros(&[3, 2, 6, 6]), &ctx).unwrap();
        assert_eq!(out.shape(), &[3, 8, 6, 6]);
        assert!(conv.forward(&Tensor::zeros(&[3, 1, 6, 6]), &ctx).is_err());
        assert!(conv.forward(&Tensor::zeros(&[3, 6, 6]), &ctx).is_err());
    }

    #[test]
    fn backward_consumes_cache_in_reverse_and_errors_when_empty() {
        let backend = FloatBackend::new();
        let mut conv = Conv2d::new("c", 1, 2, 3, 1, 1, 2).unwrap();
        let ctx = train_ctx(&backend);
        conv.forward(&Tensor::ones(&[1, 1, 4, 4]), &ctx).unwrap();
        conv.forward(&Tensor::ones(&[1, 1, 4, 4]), &ctx).unwrap();
        assert!(conv.backward(&Tensor::ones(&[1, 2, 4, 4])).is_ok());
        assert!(conv.backward(&Tensor::ones(&[1, 2, 4, 4])).is_ok());
        assert!(matches!(
            conv.backward(&Tensor::ones(&[1, 2, 4, 4])),
            Err(SnnError::MissingForwardState { .. })
        ));
    }

    #[test]
    fn eval_mode_keeps_no_cache() {
        let backend = FloatBackend::new();
        let mut conv = Conv2d::new("c", 1, 2, 3, 1, 1, 2).unwrap();
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        conv.forward(&Tensor::ones(&[1, 1, 4, 4]), &ctx).unwrap();
        assert!(conv.backward(&Tensor::ones(&[1, 2, 4, 4])).is_err());
    }

    #[test]
    fn gradients_accumulate_across_time_steps() {
        let backend = FloatBackend::new();
        let mut conv = Conv2d::new("c", 1, 1, 1, 1, 0, 3).unwrap();
        let ctx = train_ctx(&backend);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        conv.forward(&x, &ctx).unwrap();
        conv.forward(&x, &ctx).unwrap();
        conv.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        let g1 = conv.weight.grad().data()[0];
        conv.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        let g2 = conv.weight.grad().data()[0];
        assert!((g2 - 2.0 * g1).abs() < 1e-5, "second step doubles the grad");
        // Bias gradient counts output positions: 4 per step.
        assert!((conv.bias.grad().data()[0] - 8.0).abs() < 1e-5);
    }

    #[test]
    fn weight_gradient_matches_finite_difference_through_layer() {
        let backend = FloatBackend::new();
        let mut conv = Conv2d::new("c", 1, 1, 2, 1, 0, 5).unwrap();
        let ctx = train_ctx(&backend);
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| (i as f32 * 0.7).sin());
        conv.forward(&x, &ctx).unwrap();
        conv.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        let analytic = conv.weight.grad().data().to_vec();

        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)] // wi indexes three parallel buffers
        for wi in 0..conv.weight.value().len() {
            for (sign, store) in [(1.0f32, 0usize), (-1.0, 1)] {
                let _ = store;
                let mut perturbed = Conv2d::new("c", 1, 1, 2, 1, 0, 5).unwrap();
                perturbed
                    .weight
                    .value_mut()
                    .data_mut()
                    .copy_from_slice(conv.weight.value().data());
                perturbed.weight.value_mut().data_mut()[wi] += sign * eps;
                let out = perturbed
                    .forward(&x, &ForwardContext::new(Mode::Eval, &backend))
                    .unwrap();
                let loss: f32 = out.data().iter().sum();
                if sign > 0.0 {
                    // store plus-loss in a thread-local-free way: recompute below
                    let mut minus = Conv2d::new("c", 1, 1, 2, 1, 0, 5).unwrap();
                    minus
                        .weight
                        .value_mut()
                        .data_mut()
                        .copy_from_slice(conv.weight.value().data());
                    minus.weight.value_mut().data_mut()[wi] -= eps;
                    let lm: f32 = minus
                        .forward(&x, &ForwardContext::new(Mode::Eval, &backend))
                        .unwrap()
                        .data()
                        .iter()
                        .sum();
                    let numeric = (loss - lm) / (2.0 * eps);
                    assert!(
                        (numeric - analytic[wi]).abs() < 1e-2,
                        "weight {wi}: numeric {numeric} vs analytic {}",
                        analytic[wi]
                    );
                }
            }
        }
    }

    #[test]
    fn reset_state_clears_caches() {
        let backend = FloatBackend::new();
        let mut conv = Conv2d::new("c", 1, 2, 3, 1, 1, 2).unwrap();
        let ctx = train_ctx(&backend);
        conv.forward(&Tensor::ones(&[1, 1, 4, 4]), &ctx).unwrap();
        conv.reset_state();
        assert!(conv.backward(&Tensor::ones(&[1, 2, 4, 4])).is_err());
    }

    #[test]
    fn exposes_prunable_weight() {
        let mut conv = Conv2d::new("c", 2, 4, 3, 1, 1, 9).unwrap();
        assert!(conv.weight_mut().is_some());
        assert_eq!(conv.weight_mut().unwrap().value().shape(), &[4, 18]);
        assert!(conv.threshold_mut().is_none());
        assert_eq!(conv.params_mut().len(), 2);
    }
}
