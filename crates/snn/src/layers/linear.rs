//! Fully connected (dense) layer.

use crate::layers::{ForwardContext, Layer};
use crate::param::Param;
use crate::{Result, SnnError};
use falvolt_tensor::{init, ops, MatmulHint, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A fully connected layer `y = x Wᵀ + b` over `[N, in_features]` inputs.
///
/// The weight is stored as `[out_features, in_features]` — the layout the
/// systolic array tiles, so the same fault-aware prune mask machinery used
/// for convolutions applies here unchanged.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{ForwardContext, Layer, Linear, Mode};
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut fc = Linear::new("fc1", 8, 3, 7)?;
/// let backend = FloatBackend::new();
/// let ctx = ForwardContext::new(Mode::Eval, &backend);
/// let out = fc.forward(&Tensor::zeros(&[4, 8]), &ctx)?;
/// assert_eq!(out.shape(), &[4, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    caches: Vec<Tensor>,
    // Transposed weight, keyed by the weight's edit version: recomputed only
    // when the weight actually changes instead of on every forward call (the
    // scenario axis evaluates the same frozen weights thousands of times).
    // Arc-shared so scenario views inherit it instead of deep-copying a
    // weight-sized buffer per worker.
    weight_t: Option<(u64, Arc<Tensor>)>,
}

impl Linear {
    /// Creates a fully connected layer with Kaiming-uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when either feature count is zero.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        seed: u64,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(SnnError::invalid_config("feature counts must be non-zero"));
        }
        let name = name.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_uniform(out_features, in_features, &mut rng),
        );
        let bias = Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features]));
        Ok(Self {
            name,
            in_features,
            out_features,
            weight,
            bias,
            caches: Vec::new(),
            weight_t: None,
        })
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The `[out_features, in_features]` weight matrix.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        if input.ndim() != 2 || input.shape()[1] != self.in_features {
            return Err(SnnError::invalid_input(format!(
                "linear layer '{}' expects [N, {}] input, got shape {:?}",
                self.name,
                self.in_features,
                input.shape()
            )));
        }
        let weight_t =
            crate::layers::shared_weight_transpose(&self.weight, &mut self.weight_t, ctx.cache)?;
        let weight_t: &Tensor = &weight_t;
        // After a spiking layer (+ flatten) the input is a binary spike
        // matrix; let the backend's dispatcher probe it and pick the
        // event-driven kernel. Hints off pins the dense baseline.
        let hint = if ctx.spike_hints {
            MatmulHint::Auto
        } else {
            MatmulHint::Dense
        };
        // Prefix (scenario-invariant) products announce themselves so
        // sweep-batched backends can evaluate every scenario in one pass.
        let mut output = ctx
            .backend
            .matmul_request(
                crate::backend::MatmulRequest::new(input, weight_t)
                    .with_hint(hint)
                    .scenario_shared(ctx.shareable_input),
            )?
            .into_tensor();
        // Add the bias to every row.
        let bias = self.bias.value().data().to_vec();
        let out_features = self.out_features;
        let data = output.data_mut();
        for row in data.chunks_mut(out_features) {
            for (value, &b) in row.iter_mut().zip(&bias) {
                *value += b;
            }
        }
        if ctx.mode.is_train() {
            self.caches.push(input.clone());
        }
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        // grad_W = grad_yᵀ @ x, grad_b = Σ_rows grad_y, grad_x = grad_y @ W.
        let grad_output_t = ops::transpose2d(grad_output)?;
        let grad_weight = ops::matmul(&grad_output_t, &input)?;
        self.weight.accumulate_grad(&grad_weight)?;
        let grad_bias = falvolt_tensor::reduce::sum_axis0(grad_output)?;
        self.bias.accumulate_grad(&grad_bias)?;
        let grad_input = ops::matmul(grad_output, self.weight.value())?;
        Ok(grad_input)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn weight_mut(&mut self) -> Option<&mut Param> {
        Some(&mut self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;

    fn train_ctx(backend: &FloatBackend) -> ForwardContext<'_> {
        ForwardContext::new(Mode::Train, backend)
    }

    #[test]
    fn construction_validates() {
        assert!(Linear::new("fc", 0, 2, 0).is_err());
        assert!(Linear::new("fc", 2, 0, 0).is_err());
        let fc = Linear::new("fc", 3, 5, 0).unwrap();
        assert_eq!(fc.weight().value().shape(), &[5, 3]);
        assert_eq!(fc.in_features(), 3);
        assert_eq!(fc.out_features(), 5);
    }

    #[test]
    fn forward_computes_affine_map() {
        let backend = FloatBackend::new();
        let mut fc = Linear::new("fc", 2, 2, 0).unwrap();
        // Overwrite weights with a known matrix.
        fc.weight
            .value_mut()
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // W = [[1,2],[3,4]]
        fc.bias.value_mut().data_mut().copy_from_slice(&[0.5, -0.5]);
        let ctx = train_ctx(&backend);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = fc.forward(&x, &ctx).unwrap();
        // y = x Wᵀ + b = [1+2, 3+4] + [0.5, -0.5] = [3.5, 6.5].
        assert_eq!(y.data(), &[3.5, 6.5]);
        assert!(fc.forward(&Tensor::zeros(&[1, 3]), &ctx).is_err());
    }

    #[test]
    fn backward_gradients_match_manual_computation() {
        let backend = FloatBackend::new();
        let mut fc = Linear::new("fc", 2, 1, 0).unwrap();
        fc.weight
            .value_mut()
            .data_mut()
            .copy_from_slice(&[2.0, -1.0]);
        let ctx = train_ctx(&backend);
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        fc.forward(&x, &ctx).unwrap();
        let grad_out = Tensor::from_vec(vec![2, 1], vec![1.0, 1.0]).unwrap();
        let grad_in = fc.backward(&grad_out).unwrap();
        // grad_W = grad_yᵀ x = [1+3, 2+4] = [4, 6]; grad_b = 2.
        assert_eq!(fc.weight.grad().data(), &[4.0, 6.0]);
        assert_eq!(fc.bias.grad().data(), &[2.0]);
        // grad_x = grad_y W = [[2, -1], [2, -1]].
        assert_eq!(grad_in.data(), &[2.0, -1.0, 2.0, -1.0]);
    }

    #[test]
    fn backward_requires_forward_cache() {
        let mut fc = Linear::new("fc", 2, 1, 0).unwrap();
        assert!(matches!(
            fc.backward(&Tensor::zeros(&[1, 1])),
            Err(SnnError::MissingForwardState { .. })
        ));
    }

    #[test]
    fn reset_state_and_weight_exposure() {
        let backend = FloatBackend::new();
        let mut fc = Linear::new("fc", 2, 2, 3).unwrap();
        let ctx = train_ctx(&backend);
        fc.forward(&Tensor::zeros(&[1, 2]), &ctx).unwrap();
        fc.reset_state();
        assert!(fc.backward(&Tensor::zeros(&[1, 2])).is_err());
        assert!(fc.weight_mut().is_some());
        assert_eq!(fc.params_mut().len(), 2);
        assert!(fc.threshold().is_none());
    }
}
