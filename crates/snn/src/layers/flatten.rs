//! Flattening layer bridging convolutional and fully connected stages.

use crate::layers::{ForwardContext, Layer};
use crate::{Result, SnnError};
use falvolt_tensor::Tensor;

/// Flattens `[N, C, H, W]` (or any rank >= 2 tensor) into `[N, features]`.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{Flatten, ForwardContext, Layer, Mode};
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut flatten = Flatten::new("flatten");
/// let backend = FloatBackend::new();
/// let ctx = ForwardContext::new(Mode::Eval, &backend);
/// let out = flatten.forward(&Tensor::zeros(&[2, 3, 4, 4]), &ctx)?;
/// assert_eq!(out.shape(), &[2, 48]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flatten {
    name: String,
    caches: Vec<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            caches: Vec::new(),
        }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        if input.ndim() < 2 {
            return Err(SnnError::invalid_input(format!(
                "flatten layer '{}' needs a batch dimension, got shape {:?}",
                self.name,
                input.shape()
            )));
        }
        let batch = input.shape()[0];
        let features: usize = input.shape()[1..].iter().product();
        let mut output = input.reshape(&[batch, features])?;
        // Flattening a spike tensor is an index transform: the CSR rows of
        // one sample concatenate into that sample's feature row. The event
        // stream survives the reshape, so the fully connected product can
        // walk it instead of re-scanning the dense row.
        if let Some(index) = input.spike_index() {
            if batch > 0 && features > 0 && index.rows() % batch == 0 {
                let group = index.rows() / batch;
                output.attach_spike_index(std::sync::Arc::new(index.flatten_rows(group)));
            }
        }
        if ctx.mode.is_train() {
            self.caches.push(input.shape().to_vec());
        }
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        Ok(grad_output.reshape(&shape)?)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;

    #[test]
    fn flattens_and_restores_shape() {
        let backend = FloatBackend::new();
        let mut layer = Flatten::new("f");
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = layer.forward(&x, &ctx).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let g = layer.backward(&y).unwrap();
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn rejects_scalars_and_requires_cache() {
        let backend = FloatBackend::new();
        let mut layer = Flatten::new("f");
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        assert!(layer.forward(&Tensor::scalar(1.0), &ctx).is_err());
        assert!(layer.backward(&Tensor::zeros(&[1, 1])).is_err());
        layer.forward(&Tensor::zeros(&[1, 2, 2]), &ctx).unwrap();
        // Eval mode: no cache.
        assert!(layer.backward(&Tensor::zeros(&[1, 4])).is_err());
        layer.reset_state();
    }
}
