//! Inverted dropout.

use crate::layers::{ForwardContext, Layer};
use crate::{Result, SnnError};
use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: in training mode each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; evaluation mode is the identity.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{Dropout, ForwardContext, Layer, Mode};
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut dropout = Dropout::new("drop1", 0.5, 1)?;
/// let backend = FloatBackend::new();
/// let eval = ForwardContext::new(Mode::Eval, &backend);
/// let x = Tensor::ones(&[2, 4]);
/// assert_eq!(dropout.forward(&x, &eval)?, x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    name: String,
    p: f32,
    rng: StdRng,
    caches: Vec<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when `p` is outside `[0, 1)`.
    pub fn new(name: impl Into<String>, p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(SnnError::invalid_config(format!(
                "dropout probability {p} must lie in [0, 1)"
            )));
        }
        Ok(Self {
            name: name.into(),
            p,
            rng: StdRng::seed_from_u64(seed),
            caches: Vec::new(),
        })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        if !ctx.mode.is_train() || self.p == 0.0 {
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(input.shape(), |_| {
            if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let output = input.mul(&mask)?;
        self.caches.push(mask);
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        Ok(grad_output.mul(&mask)?)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;

    #[test]
    fn construction_validates_probability() {
        assert!(Dropout::new("d", -0.1, 0).is_err());
        assert!(Dropout::new("d", 1.0, 0).is_err());
        assert!(Dropout::new("d", 0.0, 0).is_ok());
        assert_eq!(Dropout::new("d", 0.3, 0).unwrap().probability(), 0.3);
    }

    #[test]
    fn eval_mode_is_identity() {
        let backend = FloatBackend::new();
        let mut d = Dropout::new("d", 0.9, 3).unwrap();
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, &ctx).unwrap(), x);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction_and_preserves_expectation() {
        let backend = FloatBackend::new();
        let mut d = Dropout::new("d", 0.5, 7).unwrap();
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, &ctx).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.5).abs() < 0.05, "dropped fraction {frac}");
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "inverted scaling keeps E[y]=E[x]");
    }

    #[test]
    fn backward_applies_same_mask() {
        let backend = FloatBackend::new();
        let mut d = Dropout::new("d", 0.5, 11).unwrap();
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::ones(&[8, 8]);
        let y = d.forward(&x, &ctx).unwrap();
        let g = d.backward(&Tensor::ones(&[8, 8])).unwrap();
        // Positions zeroed in the forward pass must also be zero in the grad.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
        assert!(d.backward(&Tensor::ones(&[8, 8])).is_err());
    }

    #[test]
    fn zero_probability_never_caches() {
        let backend = FloatBackend::new();
        let mut d = Dropout::new("d", 0.0, 11).unwrap();
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::ones(&[2, 2]);
        assert_eq!(d.forward(&x, &ctx).unwrap(), x);
        assert!(d.backward(&Tensor::ones(&[2, 2])).is_err());
        d.reset_state();
    }
}
