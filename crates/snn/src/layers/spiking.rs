//! The spiking-neuron layer with a learnable per-layer threshold voltage.
//!
//! This layer is where the paper's contribution lives. Per time step `t` and
//! layer `l`:
//!
//! 1. charge: `h_t = v_{t-1} + α (x_t − (v_{t-1} − v_reset))` with
//!    `α = sigmoid(w)` the (optionally learnable) membrane decay,
//! 2. fire (Eq. 1): `z_t = h_t / V − 1`, `o_t = Heaviside(z_t)`,
//! 3. hard reset: `v_t = (1 − o_t) h_t + o_t v_reset`.
//!
//! During backpropagation the discontinuous `∂o/∂z` is replaced by the
//! triangular surrogate of Eq. (2); the gradient of the loss with respect to
//! the threshold voltage follows Eq. (4): since `z = h/V − 1`,
//! `∂z/∂V = −h/V²`, so `ΔV = Σ_t ∂L/∂o_t · ∂o/∂z_t · (−h_t/V²)`. FalVolt
//! enables this gradient during fault-aware retraining and learns one `V` per
//! layer; plain training and FaPIT keep `V` frozen at its initial value.

use crate::layers::{ForwardContext, Layer};
use crate::neuron::NeuronConfig;
use crate::param::Param;
use crate::surrogate::{heaviside, sigmoid};
use crate::{Result, SnnError};
use falvolt_tensor::Tensor;

/// Minimum threshold voltage: keeps `1/V` and `h/V²` finite if the optimizer
/// drives the learnable threshold toward zero.
const MIN_THRESHOLD: f32 = 0.05;

#[derive(Debug, Clone)]
struct StepCache {
    input: Tensor,
    v_prev: Tensor,
    charged: Tensor,
    spikes: Tensor,
}

/// A layer of LIF/PLIF spiking neurons with a shared, optionally learnable,
/// threshold voltage.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{ForwardContext, Layer, Mode, SpikingLayer};
/// use falvolt_snn::neuron::NeuronConfig;
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut layer = SpikingLayer::new("sn1", NeuronConfig::paper_default());
/// let backend = FloatBackend::new();
/// let ctx = ForwardContext::new(Mode::Eval, &backend);
/// // A strong input drives the membrane over the threshold -> spike.
/// let spikes = layer.forward(&Tensor::full(&[1, 4], 3.0), &ctx)?;
/// assert!(spikes.data().iter().all(|&s| s == 1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpikingLayer {
    name: String,
    config: NeuronConfig,
    threshold: Param,
    decay_logit: Param,
    membrane: Option<Tensor>,
    caches: Vec<StepCache>,
    grad_membrane_carry: Option<Tensor>,
}

impl SpikingLayer {
    /// Creates a spiking layer from a neuron configuration.
    pub fn new(name: impl Into<String>, config: NeuronConfig) -> Self {
        let mut threshold = Param::new("v_threshold", Tensor::scalar(config.v_threshold));
        threshold.set_trainable(config.learn_threshold);
        let mut decay_logit = Param::new(
            "decay_logit",
            Tensor::scalar(config.model.initial_decay_logit()),
        );
        decay_logit.set_trainable(config.model.learns_decay());
        Self {
            name: name.into(),
            config,
            threshold,
            decay_logit,
            membrane: None,
            caches: Vec::new(),
            grad_membrane_carry: None,
        }
    }

    /// The neuron configuration this layer was built with.
    pub fn config(&self) -> &NeuronConfig {
        &self.config
    }

    /// The current threshold voltage `V` (clamped to a small positive
    /// minimum).
    pub fn threshold_voltage(&self) -> f32 {
        self.threshold.value().data()[0].max(MIN_THRESHOLD)
    }

    /// Overwrites the threshold voltage (used by the fixed-`V` sweep of the
    /// paper's motivational study, Figure 2).
    pub fn set_threshold_voltage(&mut self, v: f32) {
        self.threshold.value_mut().fill(v.max(MIN_THRESHOLD));
    }

    /// The current membrane decay factor `α = sigmoid(w)`.
    pub fn decay_factor(&self) -> f32 {
        sigmoid(self.decay_logit.value().data()[0])
    }

    /// The membrane potential after the most recent time step, if any.
    pub fn membrane_potential(&self) -> Option<&Tensor> {
        self.membrane.as_ref()
    }
}

impl Layer for SpikingLayer {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        let v_reset = self.config.v_reset;
        let alpha = self.decay_factor();
        let v_threshold = self.threshold_voltage();

        let v_prev = match self.membrane.take() {
            Some(v) if v.shape() == input.shape() => v,
            _ => Tensor::full(input.shape(), v_reset),
        };

        // Charge, fire, reset — elementwise over the whole activation tensor.
        let mut charged = Tensor::zeros(input.shape());
        let mut spikes = Tensor::zeros(input.shape());
        let mut v_next = Tensor::zeros(input.shape());
        {
            let x = input.data();
            let vp = v_prev.data();
            let h = charged.data_mut();
            for i in 0..x.len() {
                h[i] = vp[i] + alpha * (x[i] - (vp[i] - v_reset));
            }
            let s = spikes.data_mut();
            let vn = v_next.data_mut();
            for i in 0..x.len() {
                let z = h[i] / v_threshold - 1.0;
                s[i] = heaviside(z);
                vn[i] = if s[i] > 0.0 { v_reset } else { h[i] };
            }
        }

        self.membrane = Some(v_next);
        if ctx.mode.is_train() {
            self.caches.push(StepCache {
                input: input.clone(),
                v_prev,
                charged,
                spikes: spikes.clone(),
            });
        } else if ctx.csr_spikes {
            // Emit the spike event stream directly: the firing layer is the
            // one place that knows exactly which elements are nonzero, so it
            // indexes them once (CSR over last-dimension rows) and every
            // downstream consumer — im2col, the gather-accumulate kernel,
            // the systolic executor's event walk — reads the index instead
            // of re-probing the dense buffer. Spikes are binary by
            // construction, so `from_dense` always succeeds.
            if let Some(cols) = spikes.shape().last().copied().filter(|&c| c > 0) {
                if let Some(index) = falvolt_tensor::SpikeIndex::from_dense(spikes.data(), cols) {
                    spikes.attach_spike_index(std::sync::Arc::new(index));
                }
            }
        }
        Ok(spikes)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        if grad_output.shape() != cache.spikes.shape() {
            return Err(SnnError::invalid_input(format!(
                "spiking layer '{}' got gradient of shape {:?}, expected {:?}",
                self.name,
                grad_output.shape(),
                cache.spikes.shape()
            )));
        }

        let alpha = self.decay_factor();
        let v_threshold = self.threshold_voltage();
        let v_reset = self.config.v_reset;
        let surrogate = self.config.surrogate;

        let grad_v_carry = match self.grad_membrane_carry.take() {
            Some(g) if g.shape() == grad_output.shape() => g,
            _ => Tensor::zeros(grad_output.shape()),
        };

        let n = grad_output.len();
        let mut grad_input = Tensor::zeros(cache.input.shape());
        let mut grad_v_prev = Tensor::zeros(cache.input.shape());
        let mut grad_threshold_acc = 0.0f64;
        let mut grad_decay_acc = 0.0f64;

        {
            let go = grad_output.data();
            let gv = grad_v_carry.data();
            let h = cache.charged.data();
            let s = cache.spikes.data();
            let x = cache.input.data();
            let vp = cache.v_prev.data();
            let gi = grad_input.data_mut();
            let gvp = grad_v_prev.data_mut();

            for i in 0..n {
                let z = h[i] / v_threshold - 1.0;
                let sg = surrogate.grad(z);
                // dL/dh through the spike output and through the (detached-
                // reset) membrane update v = (1 - s) h + s v_reset.
                let dl_dh = go[i] * sg / v_threshold + gv[i] * (1.0 - s[i]);
                // Threshold gradient, Eq. (4): dz/dV = -h / V^2.
                grad_threshold_acc +=
                    (go[i] * sg) as f64 * (-(h[i]) / (v_threshold * v_threshold)) as f64;
                // Charge step: h = v_prev + alpha (x - (v_prev - v_reset)).
                gi[i] = dl_dh * alpha;
                gvp[i] = dl_dh * (1.0 - alpha);
                grad_decay_acc += dl_dh as f64 * (x[i] - (vp[i] - v_reset)) as f64;
            }
        }

        if self.threshold.is_trainable() {
            let g = Tensor::scalar(grad_threshold_acc as f32);
            self.threshold.accumulate_grad(&g)?;
        }
        if self.decay_logit.is_trainable() {
            // d alpha / d w = sigmoid'(w) = alpha (1 - alpha).
            let g = Tensor::scalar(grad_decay_acc as f32 * alpha * (1.0 - alpha));
            self.decay_logit.accumulate_grad(&g)?;
        }

        self.grad_membrane_carry = Some(grad_v_prev);
        Ok(grad_input)
    }

    fn reset_state(&mut self) {
        self.membrane = None;
        self.caches.clear();
        self.grad_membrane_carry = None;
    }

    fn is_stateful(&self, _mode: crate::layers::Mode) -> bool {
        // The membrane potential integrates across time steps in every mode.
        true
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.threshold, &mut self.decay_logit]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.threshold, &self.decay_logit]
    }

    fn threshold_mut(&mut self) -> Option<&mut Param> {
        Some(&mut self.threshold)
    }

    fn threshold(&self) -> Option<f32> {
        Some(self.threshold_voltage())
    }

    fn set_threshold_trainable(&mut self, trainable: bool) {
        self.threshold.set_trainable(trainable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;
    use crate::neuron::NeuronModel;

    fn ctx(backend: &FloatBackend, mode: Mode) -> ForwardContext<'_> {
        ForwardContext::new(mode, backend)
    }

    #[test]
    fn strong_input_fires_and_resets_membrane() {
        let backend = FloatBackend::new();
        let mut layer = SpikingLayer::new("sn", NeuronConfig::paper_default());
        let spikes = layer
            .forward(&Tensor::full(&[1, 3], 5.0), &ctx(&backend, Mode::Eval))
            .unwrap();
        assert!(spikes.data().iter().all(|&s| s == 1.0));
        // Hard reset: membrane returns to v_reset after firing.
        assert!(layer
            .membrane_potential()
            .unwrap()
            .data()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn weak_input_integrates_over_time_before_firing() {
        // With alpha = 0.5 and threshold 1.0, a constant input of 0.8 charges
        // 0.4, then 0.6, then 0.7 ... and crosses 1.0 only after several steps
        // — never, actually, since it converges to 0.8 < 1.0. Use 1.5 input:
        // charges 0.75 (no spike), then 1.125 (spike).
        let backend = FloatBackend::new();
        let mut layer = SpikingLayer::new(
            "sn",
            NeuronConfig::paper_default().with_model(NeuronModel::Lif { tau: 2.0 }),
        );
        let x = Tensor::full(&[1, 1], 1.5);
        let c = ctx(&backend, Mode::Eval);
        let s1 = layer.forward(&x, &c).unwrap();
        assert_eq!(s1.data(), &[0.0]);
        let s2 = layer.forward(&x, &c).unwrap();
        assert_eq!(s2.data(), &[1.0]);
    }

    #[test]
    fn lower_threshold_fires_more_easily() {
        let backend = FloatBackend::new();
        let c = ctx(&backend, Mode::Eval);
        let x = Tensor::full(&[1, 1], 1.2);

        let mut high = SpikingLayer::new("h", NeuronConfig::paper_default().with_threshold(1.0));
        let mut low = SpikingLayer::new("l", NeuronConfig::paper_default().with_threshold(0.45));
        let s_high = high.forward(&x, &c).unwrap();
        let s_low = low.forward(&x, &c).unwrap();
        assert_eq!(s_high.data(), &[0.0], "alpha=0.5 charge 0.6 < 1.0");
        assert_eq!(s_low.data(), &[1.0], "0.6 > 0.45 threshold");
    }

    #[test]
    fn reset_state_clears_membrane_and_caches() {
        let backend = FloatBackend::new();
        let mut layer = SpikingLayer::new("sn", NeuronConfig::paper_default());
        let c = ctx(&backend, Mode::Train);
        layer.forward(&Tensor::full(&[1, 2], 2.0), &c).unwrap();
        assert!(layer.membrane_potential().is_some());
        layer.reset_state();
        assert!(layer.membrane_potential().is_none());
        assert!(layer.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut layer = SpikingLayer::new("sn", NeuronConfig::paper_default());
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 1])),
            Err(SnnError::MissingForwardState { .. })
        ));
    }

    #[test]
    fn threshold_gradient_matches_finite_difference() {
        // Loss = sum over T of spike outputs smoothed by the surrogate is not
        // differentiable exactly, but for membrane values inside the surrogate
        // window the analytic dL/dV should approximate the finite-difference
        // slope of the *surrogate-relaxed* loss. We instead verify the sign
        // and magnitude relationship: increasing V cannot increase the spike
        // count, so dL/dV of the (relaxed) spike-sum must be negative when
        // neurons are near threshold.
        let config = NeuronConfig::falvolt_retraining();
        let backend = FloatBackend::new();
        let mut layer = SpikingLayer::new("sn", config);
        let c = ctx(&backend, Mode::Train);
        // Inputs near the threshold so the surrogate is active.
        let x = Tensor::from_vec(vec![1, 4], vec![1.8, 2.0, 2.2, 1.9]).unwrap();
        let spikes = layer.forward(&x, &c).unwrap();
        assert!(spikes.data().iter().sum::<f32>() > 0.0);
        // dL/d spike = 1 for every output (loss = total spike count).
        layer.backward(&Tensor::ones(&[1, 4])).unwrap();
        let grad_v = layer.threshold_mut().unwrap().grad().data()[0];
        assert!(
            grad_v < 0.0,
            "raising the threshold must lower the spike-count loss, grad {grad_v}"
        );
    }

    #[test]
    fn frozen_threshold_accumulates_no_gradient() {
        let backend = FloatBackend::new();
        let mut layer = SpikingLayer::new("sn", NeuronConfig::paper_default());
        let c = ctx(&backend, Mode::Train);
        let x = Tensor::full(&[1, 4], 1.9);
        layer.forward(&x, &c).unwrap();
        layer.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(layer.threshold_mut().unwrap().grad().data()[0], 0.0);
        // Unlocking makes the gradient flow.
        layer.reset_state();
        layer.set_threshold_trainable(true);
        layer.forward(&x, &c).unwrap();
        layer.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_ne!(layer.threshold_mut().unwrap().grad().data()[0], 0.0);
    }

    #[test]
    fn input_gradient_matches_finite_difference_of_relaxed_dynamics() {
        // Validate dL/dx numerically by replacing the spike Heaviside with the
        // membrane charge itself (loss = sum of charges), which the analytic
        // path reproduces when the surrogate window is wide.
        let backend = FloatBackend::new();
        let config = NeuronConfig {
            surrogate: crate::surrogate::Surrogate::Rectangular { width: 100.0 },
            ..NeuronConfig::paper_default()
        };
        let mut layer = SpikingLayer::new("sn", config);
        let c = ctx(&backend, Mode::Train);
        let x = Tensor::from_vec(vec![1, 2], vec![0.3, 0.7]).unwrap();
        layer.forward(&x, &c).unwrap();
        let grad_in = layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        // With a single time step, dL/dx = surrogate * (1/V) * alpha. The
        // rectangular surrogate of width 100 gives 1/200 everywhere.
        let alpha = layer.decay_factor();
        let expected = (1.0 / 200.0) / 1.0 * alpha;
        for &g in grad_in.data() {
            assert!((g - expected).abs() < 1e-6, "{g} vs {expected}");
        }
    }

    #[test]
    fn set_threshold_voltage_clamps_to_minimum() {
        let mut layer = SpikingLayer::new("sn", NeuronConfig::paper_default());
        layer.set_threshold_voltage(0.0);
        assert!(layer.threshold_voltage() >= MIN_THRESHOLD);
        layer.set_threshold_voltage(0.7);
        assert_eq!(layer.threshold().unwrap(), 0.7);
    }

    #[test]
    fn plif_decay_is_trainable_and_lif_is_not() {
        let mut plif = SpikingLayer::new("p", NeuronConfig::paper_default());
        let trainable: Vec<bool> = plif.params_mut().iter().map(|p| p.is_trainable()).collect();
        assert_eq!(trainable, vec![false, true]); // threshold frozen, decay learnable

        let mut lif = SpikingLayer::new(
            "l",
            NeuronConfig::paper_default().with_model(NeuronModel::Lif { tau: 2.0 }),
        );
        let trainable: Vec<bool> = lif.params_mut().iter().map(|p| p.is_trainable()).collect();
        assert_eq!(trainable, vec![false, false]);
    }

    #[test]
    fn bptt_carries_membrane_gradient_across_time() {
        // Two time steps: gradient of the step-2 output w.r.t. the step-1
        // input must be non-zero because the membrane carries state.
        let backend = FloatBackend::new();
        let config = NeuronConfig {
            surrogate: crate::surrogate::Surrogate::Rectangular { width: 100.0 },
            ..NeuronConfig::paper_default()
        };
        let mut layer = SpikingLayer::new("sn", config);
        let c = ctx(&backend, Mode::Train);
        let x = Tensor::from_vec(vec![1, 1], vec![0.2]).unwrap();
        layer.forward(&x, &c).unwrap();
        layer.forward(&x, &c).unwrap();
        // Only the second step's output contributes to the loss.
        let g2 = layer.backward(&Tensor::ones(&[1, 1])).unwrap();
        let g1 = layer.backward(&Tensor::zeros(&[1, 1])).unwrap();
        assert!(g2.data()[0] > 0.0);
        assert!(
            g1.data()[0] > 0.0,
            "gradient must flow to the earlier step through the membrane"
        );
    }
}
