//! Neural-network layers with backpropagation-through-time support.
//!
//! Every layer processes **one time step per `forward` call**. The
//! [`crate::SpikingNetwork`] container calls `forward` once per time step and
//! then `backward` the same number of times in reverse order; layers push an
//! internal cache per forward call and pop it per backward call. Stateful
//! layers (the spiking neurons) additionally carry membrane-potential state
//! across forward calls and its gradient across backward calls.

use crate::backend::MatmulBackend;
use crate::param::Param;
use crate::sweep_cache::SweepCache;
use crate::Result;
use falvolt_tensor::{Fingerprint, Tensor};
use std::fmt;

pub mod batchnorm;
pub mod conv;
pub mod dropout;
pub mod flatten;
pub mod linear;
pub mod pool;
pub mod spiking;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, MaxPool2d};
pub use spiking::SpikingLayer;

/// Whether a forward pass is part of training (caches kept, dropout active,
/// batch-norm uses batch statistics) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training: gradients will be requested, stochastic layers are active.
    Train,
    /// Evaluation/inference: no caches, deterministic behaviour.
    #[default]
    Eval,
}

impl Mode {
    /// Returns `true` in training mode.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// Per-time-step context handed to every layer's forward pass.
pub struct ForwardContext<'a> {
    /// Training or evaluation mode.
    pub mode: Mode,
    /// Backend executing matrix products (float or systolic-array model).
    pub backend: &'a dyn MatmulBackend,
    /// Whether layers may probe their activations and pass operand-structure
    /// hints to the backend (the spike-sparse kernel switch). Off pins every
    /// product to the dense blocked kernel — the engine-off baseline.
    pub spike_hints: bool,
    /// Whether evaluation-mode spiking layers attach a CSR
    /// [`falvolt_tensor::SpikeIndex`] to their outputs (and downstream layers
    /// propagate it), making the spike event stream first-class: im2col
    /// becomes an index transform and products walk the index instead of
    /// probing. Off reproduces the probe-based engine bit-for-bit.
    pub csr_spikes: bool,
    /// Sweep-driver-owned cross-call cache, when the network is evaluating
    /// inside a scenario sweep. Layers may use it to share backend-independent
    /// intermediates (im2col lowerings, transposed weights) across scenario
    /// workers; `None` outside sweeps and always `None` in training mode.
    pub cache: Option<&'a SweepCache>,
    /// `true` when this context's input is scenario-invariant by
    /// construction (the stateless prefix of a sweep forward sees the raw
    /// batch, which every worker shares). Layers may then promote their
    /// input-derived cache keys on first sighting instead of waiting for a
    /// second worker to prove sharing.
    pub shareable_input: bool,
}

impl<'a> ForwardContext<'a> {
    /// Creates a context with spike-structure hints and CSR spike indexes
    /// enabled and no sweep cache.
    pub fn new(mode: Mode, backend: &'a dyn MatmulBackend) -> Self {
        Self {
            mode,
            backend,
            spike_hints: true,
            csr_spikes: true,
            cache: None,
            shareable_input: false,
        }
    }

    /// Builder-style override of the spike-hint switch.
    pub fn with_spike_hints(mut self, enabled: bool) -> Self {
        self.spike_hints = enabled;
        self
    }

    /// Builder-style override of the CSR spike-index switch.
    pub fn with_csr_spikes(mut self, enabled: bool) -> Self {
        self.csr_spikes = enabled;
        self
    }

    /// Builder-style attachment of a sweep cache (ignored in training mode —
    /// training forwards mutate per-layer state and are never shared).
    pub fn with_cache(mut self, cache: Option<&'a SweepCache>) -> Self {
        self.cache = if self.mode.is_train() { None } else { cache };
        self
    }

    /// Builder-style override of the shareable-input flag.
    pub fn with_shareable_input(mut self, shareable: bool) -> Self {
        self.shareable_input = shareable;
        self
    }
}

/// Returns the transposed weight matrix, reusing the layer-local derivation
/// while the weight's edit version is unchanged and sharing the computed
/// transpose across scenario workers through the sweep cache (keyed on the
/// weight's content id — scenario views share the weight buffer, so every
/// worker resolves the same key instead of transposing its own copy).
pub(crate) fn shared_weight_transpose(
    weight: &Param,
    local: &mut Option<(u64, std::sync::Arc<Tensor>)>,
    cache: Option<&SweepCache>,
) -> Result<std::sync::Arc<Tensor>> {
    use crate::sweep_cache::SweepDecision;
    use std::sync::Arc;
    if local.as_ref().map(|(v, _)| *v) != Some(weight.version()) {
        let computed: Arc<Tensor> = match cache {
            Some(cache) => {
                let mut fp = Fingerprint::new();
                fp.write_str("weight_t");
                fp.write_u64(weight.value().content_id());
                let key = fp.finish();
                // Weight transposes are always shared by construction in an
                // evaluation sweep (scenario views share the frozen weight
                // buffer), so promote on first sighting.
                match cache.lookup_lowered_eager(key) {
                    SweepDecision::Hit(hit) => hit,
                    decision => {
                        let promoted = matches!(decision, SweepDecision::Compute);
                        match falvolt_tensor::ops::transpose2d(weight.value()) {
                            Ok(t) => {
                                let t = Arc::new(t);
                                if promoted {
                                    cache.fulfill_lowered(key, Arc::clone(&t));
                                }
                                t
                            }
                            Err(e) => {
                                if promoted {
                                    cache.abandon_lowered(key);
                                }
                                return Err(e.into());
                            }
                        }
                    }
                }
            }
            None => Arc::new(falvolt_tensor::ops::transpose2d(weight.value())?),
        };
        *local = Some((weight.version(), computed));
    }
    Ok(std::sync::Arc::clone(
        &local.as_ref().expect("stored above").1,
    ))
}

impl fmt::Debug for ForwardContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForwardContext")
            .field("mode", &self.mode)
            .field("backend", &self.backend.name())
            .finish()
    }
}

/// A neural-network layer processing one time step per call.
///
/// The contract between [`Layer::forward`] and [`Layer::backward`] is
/// stack-like: with `T` forward calls in training mode, the container must
/// issue exactly `T` backward calls which consume the cached time steps in
/// reverse order.
/// `Send + Sync` lets whole networks be cloned into worker threads, which is
/// how the experiment layer parallelises its scenario axis (one cloned
/// network per fault map / mitigation cell).
pub trait Layer: fmt::Debug + Send + Sync {
    /// A short human-readable layer name (used in diagnostics and reports).
    fn name(&self) -> &str;

    /// Clones the layer behind a fresh box (layers are held as trait
    /// objects, so `Clone` cannot be a supertrait directly).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Processes one time step.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor>;

    /// Backpropagates through the most recent un-consumed forward call and
    /// returns the gradient with respect to that call's input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SnnError::MissingForwardState`] when no cached
    /// forward state is available.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Clears all cached forward state and any temporal state (membrane
    /// potentials). Called by the network before every sample/batch.
    fn reset_state(&mut self);

    /// Whether a forward call in `mode` depends on (or mutates) state carried
    /// across time steps — membrane potentials, RNG draws, BPTT cache pushes,
    /// running statistics. The network's temporal prefix cache computes the
    /// maximal stateless prefix once per static input and reuses it for all
    /// `T` steps, so a layer that returns `false` here must be a pure
    /// function of its input in that mode.
    fn is_stateful(&self, mode: Mode) -> bool {
        // Conservative default: training-mode forwards push BPTT caches, so
        // only evaluation is presumed stateless.
        mode.is_train()
    }

    /// The layer's trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// The layer's parameters, read-only. Must yield the same parameters (in
    /// the same order) as [`Layer::params_mut`]; used for content
    /// fingerprinting by the cross-call prefix cache.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Absorbs everything that determines this layer's *evaluation-mode*
    /// output for a given input into `fp` — the layer name, every parameter
    /// by content, and (via overrides) any non-`Param` hyperparameter that
    /// changes the output: convolution geometry, pooling windows, batch-norm
    /// epsilon. The cross-call prefix cache keys stateless prefixes on this,
    /// so an override that forgets result-changing configuration would let
    /// two differently configured layers share a prefix output. Layers whose
    /// eval output is a pure function of input and `params()` alone
    /// (`Linear` — its geometry is the weight shape — `Flatten`, `Dropout`
    /// in eval) use this default.
    fn cache_fingerprint(&self, fp: &mut Fingerprint) {
        fp.write_str(self.name());
        let params = self.params();
        fp.write_usize(params.len());
        for param in params {
            fp.write_str(param.name());
            fp.write_dims(param.value().shape());
            fp.write_f32s(param.value().data());
        }
    }

    /// The layer's prunable weight matrix (`[out, in]` layout), if it has
    /// one. Fault-aware pruning multiplies this by the PE-derived mask.
    fn weight_mut(&mut self) -> Option<&mut Param> {
        None
    }

    /// The layer's threshold-voltage parameter, if it is a spiking layer.
    fn threshold_mut(&mut self) -> Option<&mut Param> {
        None
    }

    /// Current threshold voltage of a spiking layer.
    fn threshold(&self) -> Option<f32> {
        None
    }

    /// Enables or disables threshold-voltage learning (no-op for non-spiking
    /// layers).
    fn set_threshold_trainable(&mut self, _trainable: bool) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;

    #[test]
    fn mode_helpers() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
        assert_eq!(Mode::default(), Mode::Eval);
    }

    #[test]
    fn context_debug_mentions_backend() {
        let backend = FloatBackend::new();
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let debug = format!("{ctx:?}");
        assert!(debug.contains("float"));
        assert!(debug.contains("Train"));
    }
}
