//! Per-channel batch normalisation over `[N, C, H, W]` feature maps.

use crate::layers::{ForwardContext, Layer};
use crate::param::Param;
use crate::{Result, SnnError};
use falvolt_tensor::Tensor;

#[derive(Debug, Clone)]
struct StepCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

/// Batch normalisation with learnable scale/shift and running statistics.
///
/// In training mode statistics are computed per time step over the batch and
/// spatial positions of each channel (the convention the PLIF reference
/// implementation uses); evaluation uses the running averages.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{BatchNorm2d, ForwardContext, Layer, Mode};
/// use falvolt_snn::FloatBackend;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut bn = BatchNorm2d::new("bn1", 3);
/// let backend = FloatBackend::new();
/// let ctx = ForwardContext::new(Mode::Train, &backend);
/// let out = bn.forward(&Tensor::ones(&[2, 3, 4, 4]), &ctx)?;
/// assert_eq!(out.shape(), &[2, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    gamma: Param,
    beta: Param,
    // Running statistics are stored as *frozen* parameters so that they are
    // part of the network's exported/imported state (a baseline restore must
    // bring the evaluation-mode statistics back too), while optimizers skip
    // them.
    running_mean: Param,
    running_var: Param,
    momentum: f32,
    eps: f32,
    caches: Vec<StepCache>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature channels.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        let name = name.into();
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: Param::frozen(format!("{name}.running_mean"), Tensor::zeros(&[channels])),
            running_var: Param::frozen(format!("{name}.running_var"), Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
            caches: Vec::new(),
            channels,
            name,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Running mean per channel (used in evaluation mode).
    pub fn running_mean(&self) -> &[f32] {
        self.running_mean.value().data()
    }

    /// Running variance per channel (used in evaluation mode).
    pub fn running_var(&self) -> &[f32] {
        self.running_var.value().data()
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if input.ndim() != 4 || input.shape()[1] != self.channels {
            return Err(SnnError::invalid_input(format!(
                "batch-norm layer '{}' expects [N, {}, H, W] input, got {:?}",
                self.name,
                self.channels,
                input.shape()
            )));
        }
        Ok((
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ))
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, ctx: &ForwardContext<'_>) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input)?;
        let spatial = h * w;
        let count = (n * spatial) as f32;
        let data = input.data();

        let (mean, var) = if ctx.mode.is_train() {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            let running_mean = self.running_mean.value_mut().data_mut();
            let running_var = self.running_var.value_mut().data_mut();
            for ch in 0..c {
                let mut sum = 0.0f32;
                for b in 0..n {
                    let base = (b * c + ch) * spatial;
                    sum += data[base..base + spatial].iter().sum::<f32>();
                }
                mean[ch] = sum / count;
                let mut sq = 0.0f32;
                for b in 0..n {
                    let base = (b * c + ch) * spatial;
                    sq += data[base..base + spatial]
                        .iter()
                        .map(|&x| (x - mean[ch]) * (x - mean[ch]))
                        .sum::<f32>();
                }
                var[ch] = sq / count;
                running_mean[ch] =
                    (1.0 - self.momentum) * running_mean[ch] + self.momentum * mean[ch];
                running_var[ch] = (1.0 - self.momentum) * running_var[ch] + self.momentum * var[ch];
            }
            (mean, var)
        } else {
            (
                self.running_mean.value().data().to_vec(),
                self.running_var.value().data().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.value().data().to_vec();
        let beta = self.beta.value().data().to_vec();

        let mut normalized = Tensor::zeros(input.shape());
        let mut output = Tensor::zeros(input.shape());
        {
            let nd = normalized.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let base = (b * c + ch) * spatial;
                    for i in 0..spatial {
                        nd[base + i] = (data[base + i] - mean[ch]) * inv_std[ch];
                    }
                }
            }
            let od = output.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let base = (b * c + ch) * spatial;
                    for i in 0..spatial {
                        od[base + i] = gamma[ch] * nd[base + i] + beta[ch];
                    }
                }
            }
        }

        if ctx.mode.is_train() {
            self.caches.push(StepCache {
                normalized,
                inv_std,
                shape: input.shape().to_vec(),
            });
        }
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .caches
            .pop()
            .ok_or_else(|| SnnError::MissingForwardState {
                layer: self.name.clone(),
            })?;
        if grad_output.shape() != cache.shape.as_slice() {
            return Err(SnnError::invalid_input(format!(
                "batch-norm '{}' got gradient shape {:?}, expected {:?}",
                self.name,
                grad_output.shape(),
                cache.shape
            )));
        }
        let (n, c, h, w) = (
            cache.shape[0],
            cache.shape[1],
            cache.shape[2],
            cache.shape[3],
        );
        let spatial = h * w;
        let count = (n * spatial) as f32;
        let go = grad_output.data();
        let xhat = cache.normalized.data();
        let gamma = self.gamma.value().data().to_vec();

        let mut grad_gamma = vec![0.0f32; c];
        let mut grad_beta = vec![0.0f32; c];
        let mut sum_go = vec![0.0f32; c];
        let mut sum_go_xhat = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * spatial;
                for i in 0..spatial {
                    let g = go[base + i];
                    grad_beta[ch] += g;
                    grad_gamma[ch] += g * xhat[base + i];
                }
            }
        }
        sum_go[..c].copy_from_slice(&grad_beta[..c]);
        sum_go_xhat[..c].copy_from_slice(&grad_gamma[..c]);

        let mut grad_input = Tensor::zeros(&cache.shape);
        {
            let gi = grad_input.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let base = (b * c + ch) * spatial;
                    let scale = gamma[ch] * cache.inv_std[ch];
                    for i in 0..spatial {
                        gi[base + i] = scale
                            * (go[base + i]
                                - sum_go[ch] / count
                                - xhat[base + i] * sum_go_xhat[ch] / count);
                    }
                }
            }
        }

        self.gamma
            .accumulate_grad(&Tensor::from_vec(vec![c], grad_gamma)?)?;
        self.beta
            .accumulate_grad(&Tensor::from_vec(vec![c], grad_beta)?)?;
        Ok(grad_input)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.gamma,
            &mut self.beta,
            &mut self.running_mean,
            &mut self.running_var,
        ]
    }

    fn params(&self) -> Vec<&Param> {
        // Running statistics ride along: they determine the evaluation-mode
        // output, so the prefix-cache fingerprint must see them.
        vec![
            &self.gamma,
            &self.beta,
            &self.running_mean,
            &self.running_var,
        ]
    }

    fn cache_fingerprint(&self, fp: &mut falvolt_tensor::Fingerprint) {
        fp.write_str(self.name());
        // Epsilon changes the normalisation denominator independently of the
        // parameters and running statistics.
        fp.write_u64(u64::from(self.eps.to_bits()));
        for param in self.params() {
            fp.write_dims(param.value().shape());
            fp.write_f32s(param.value().data());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::layers::Mode;
    use falvolt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_forward_normalizes_each_channel() {
        let backend = FloatBackend::new();
        let mut bn = BatchNorm2d::new("bn", 2);
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::normal(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, &ctx).unwrap();
        // Each channel of the output should have ~zero mean and ~unit variance.
        let spatial = 9;
        for ch in 0..2 {
            let mut values = Vec::new();
            for b in 0..4 {
                let base = (b * 2 + ch) * spatial;
                values.extend_from_slice(&y.data()[base..base + spatial]);
            }
            let mean: f32 = values.iter().sum::<f32>() / values.len() as f32;
            let var: f32 =
                values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let backend = FloatBackend::new();
        let mut bn = BatchNorm2d::new("bn", 1);
        let train_ctx = ForwardContext::new(Mode::Train, &backend);
        let mut rng = StdRng::seed_from_u64(5);
        // Several training passes to move the running stats toward the data.
        for _ in 0..50 {
            let x = init::normal(&[8, 1, 2, 2], 3.0, 1.0, &mut rng);
            bn.forward(&x, &train_ctx).unwrap();
            bn.reset_state();
        }
        assert!((bn.running_mean()[0] - 3.0).abs() < 0.3);
        // In eval mode an input equal to the running mean maps near beta = 0.
        let eval_ctx = ForwardContext::new(Mode::Eval, &backend);
        let x = Tensor::full(&[1, 1, 2, 2], bn.running_mean()[0]);
        let y = bn.forward(&x, &eval_ctx).unwrap();
        assert!(y.data().iter().all(|&v| v.abs() < 1e-3));
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let backend = FloatBackend::new();
        let mut bn = BatchNorm2d::new("bn", 1);
        let ctx = ForwardContext::new(Mode::Train, &backend);
        let x = Tensor::from_vec(vec![2, 1, 1, 2], vec![0.5, 1.5, -0.5, 2.0]).unwrap();
        bn.forward(&x, &ctx).unwrap();
        let grad_out = Tensor::from_vec(vec![2, 1, 1, 2], vec![1.0, -1.0, 0.5, 2.0]).unwrap();
        let grad_in = bn.backward(&grad_out).unwrap();

        // Finite differences through a fresh layer (same gamma/beta = 1/0).
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut bnp = BatchNorm2d::new("bn", 1);
            let mut bnm = BatchNorm2d::new("bn", 1);
            let yp = bnp.forward(&xp, &ctx).unwrap();
            let ym = bnm.forward(&xm, &ctx).unwrap();
            let lp: f32 = yp
                .data()
                .iter()
                .zip(grad_out.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = ym
                .data()
                .iter()
                .zip(grad_out.data())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[i]).abs() < 1e-2,
                "position {i}: numeric {numeric} vs analytic {}",
                grad_in.data()[i]
            );
        }
    }

    #[test]
    fn input_validation_and_cache_discipline() {
        let backend = FloatBackend::new();
        let mut bn = BatchNorm2d::new("bn", 2);
        let ctx = ForwardContext::new(Mode::Train, &backend);
        assert!(bn.forward(&Tensor::zeros(&[1, 3, 2, 2]), &ctx).is_err());
        assert!(bn.backward(&Tensor::zeros(&[1, 2, 2, 2])).is_err());
        bn.forward(&Tensor::zeros(&[1, 2, 2, 2]), &ctx).unwrap();
        assert!(bn.backward(&Tensor::zeros(&[1, 2, 3, 3])).is_err());
        assert_eq!(bn.channels(), 2);
        // gamma, beta + the two frozen running-statistics parameters.
        assert_eq!(bn.params_mut().len(), 4);
        let trainable = bn.params_mut().iter().filter(|p| p.is_trainable()).count();
        assert_eq!(trainable, 2);
    }
}
