//! Evaluation metrics.

use crate::{Result, SnnError};
use falvolt_tensor::{reduce, Tensor};
use serde::{Deserialize, Serialize};

/// A square confusion matrix for a `classes`-way classifier.
///
/// # Example
///
/// ```
/// use falvolt_snn::metrics::ConfusionMatrix;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0)?;
/// cm.record(1, 2)?;
/// assert_eq!(cm.total(), 2);
/// assert!((cm.accuracy() - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix.
    pub fn new(classes: usize) -> Self {
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true label, predicted label)` observation.
    ///
    /// # Errors
    ///
    /// Returns an error when either label is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) -> Result<()> {
        if truth >= self.classes || prediction >= self.classes {
            return Err(SnnError::invalid_input(format!(
                "labels ({truth}, {prediction}) out of range for {} classes",
                self.classes
            )));
        }
        self.counts[truth * self.classes + prediction] += 1;
        Ok(())
    }

    /// Records a batch of observations.
    ///
    /// # Errors
    ///
    /// Returns an error when the slices differ in length or contain
    /// out-of-range labels.
    pub fn record_batch(&mut self, truths: &[usize], predictions: &[usize]) -> Result<()> {
        if truths.len() != predictions.len() {
            return Err(SnnError::invalid_input(
                "truth and prediction slices must have equal length".to_string(),
            ));
        }
        for (&t, &p) in truths.iter().zip(predictions) {
            self.record(t, p)?;
        }
        Ok(())
    }

    /// Count at `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> u64 {
        self.counts[truth * self.classes + prediction]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall classification accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (diagonal / row sum), `None` for classes never seen.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }
}

/// Classification accuracy of rate outputs against integer labels.
///
/// # Errors
///
/// Returns an error when the label count differs from the number of rows.
pub fn accuracy(rates: &Tensor, labels: &[usize]) -> Result<f32> {
    Ok(reduce::classification_accuracy(rates, labels)?)
}

/// Mean firing rate of a spike-rate tensor — a proxy for the energy the
/// accelerator would spend (spike counts drive accumulator activity).
pub fn mean_firing_rate(rates: &Tensor) -> f32 {
    reduce::mean(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_accuracy_and_recall() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&[0, 0, 1, 1], &[0, 1, 1, 1]).unwrap();
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-9);
        assert!((cm.recall(0).unwrap() - 0.5).abs() < 1e-9);
        assert!((cm.recall(1).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(cm.classes(), 2);
    }

    #[test]
    fn confusion_matrix_validates_input() {
        let mut cm = ConfusionMatrix::new(2);
        assert!(cm.record(2, 0).is_err());
        assert!(cm.record(0, 5).is_err());
        assert!(cm.record_batch(&[0], &[0, 1]).is_err());
        assert_eq!(cm.accuracy(), 0.0);
        assert!(cm.recall(1).is_none());
    }

    #[test]
    fn accuracy_from_rates() {
        let rates = Tensor::from_vec(vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        assert_eq!(accuracy(&rates, &[0, 1]).unwrap(), 1.0);
        assert_eq!(accuracy(&rates, &[1, 0]).unwrap(), 0.0);
        assert!((mean_firing_rate(&rates) - 0.5).abs() < 1e-6);
    }
}
