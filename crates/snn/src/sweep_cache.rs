//! Sweep-driver-owned caches shared across scenario workers.
//!
//! The figure sweeps (Fig 2 threshold cells, Fig 5 fault-rate sweeps, Fig 6/7
//! mitigation cells, Fig 8 strategy pairs) evaluate *many fault scenarios
//! against the same trained network and the same input batches*. Two
//! intermediates on that axis are recomputed identically by every worker:
//!
//! * the **stateless-prefix output** of a forward pass (the encoder
//!   convolution ahead of the first spiking layer) — identical across any two
//!   forward calls that agree on the input, the prefix parameters *and* the
//!   backend (a faulty systolic backend corrupts the prefix, so the fault map
//!   is part of the key via [`crate::MatmulBackend::fingerprint`]);
//! * the **im2col lowering** of a convolution input — a pure function of the
//!   input and the convolution geometry, shared by every fault scenario
//!   regardless of its fault map.
//!
//! A [`SweepCache`] is created by the sweep driver, installed on every
//! scenario view ([`crate::SpikingNetwork::set_sweep_cache`]) and dropped
//! when the sweep ends. Keys are 128-bit content fingerprints
//! ([`falvolt_tensor::Fingerprint`]); entries are `Arc`-shared tensors, so a
//! hit costs one clone of an `Arc`.
//!
//! Both stores **promote on second request**: the first sighting of a key
//! only records interest ([`SweepDecision::Skip`] — compute inline, store
//! nothing), and a second sighting proves the key is shared, so that caller
//! computes and fulfils the entry ([`SweepDecision::Compute`]). Retraining
//! cells generate an endless stream of one-shot keys (weights change every
//! epoch); without the policy those would flood the bounded stores with
//! batch-sized tensors that can never hit and lock out the genuinely shared
//! entries. Only one caller per key is told to compute; racers fall back to
//! inline computation. Tracked keys are bounded; once full, new keys are
//! never promoted (retention cannot change results, only hit rates).

use falvolt_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on tracked keys per store (pending and fulfilled).
const DEFAULT_CAPACITY: usize = 256;

/// What a store lookup tells the caller to do.
#[derive(Debug, Clone)]
pub enum SweepDecision {
    /// The value is cached — use it.
    Hit(Arc<Tensor>),
    /// Second sighting of a shared key: compute the value and hand it back
    /// via the matching `fulfill_*` call.
    Compute,
    /// First sighting (or the key is being computed / cannot be tracked):
    /// compute inline, store nothing.
    Skip,
}

/// Counters of one cache store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a fulfilled entry.
    pub hits: usize,
    /// Lookups that found no usable entry (first sightings, in-flight keys,
    /// capacity overflow).
    pub misses: usize,
    /// Lookups that asked the caller to compute-and-fulfill.
    pub promotions: usize,
}

enum Slot {
    /// Seen once; not yet worth materialising.
    Pending,
    /// A worker is computing the shared value.
    Computing,
    /// Computed and shared.
    Ready(Arc<Tensor>),
}

#[derive(Default)]
struct StoreInner {
    slots: HashMap<u128, Slot>,
    /// Keys promoted to `Computing`/`Ready` — the value-bearing entries the
    /// capacity bounds. Pending markers are 16-byte bookkeeping and get a
    /// separate, much larger bound, so a flood of one-shot keys (every
    /// retraining epoch mints new prefix keys) cannot lock genuinely shared
    /// keys out of promotion.
    promoted: usize,
}

#[derive(Default)]
struct Store {
    inner: Mutex<StoreInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    promotions: AtomicUsize,
}

/// Tracked-key bound as a multiple of the value capacity (Pending markers
/// are tiny; this only stops the map itself from growing without limit).
const TRACKED_PER_CAPACITY: usize = 16;

impl Store {
    fn lookup(&self, key: u128, capacity: usize, eager: bool) -> SweepDecision {
        let mut inner = self.inner.lock().expect("sweep cache poisoned");
        match inner.slots.get(&key) {
            Some(Slot::Ready(value)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                SweepDecision::Hit(Arc::clone(value))
            }
            Some(Slot::Pending) => {
                if inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing);
                    SweepDecision::Compute
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    SweepDecision::Skip
                }
            }
            Some(Slot::Computing) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                SweepDecision::Skip
            }
            None => {
                // Eager callers know their key is shared by construction
                // (e.g. a lowering of the scenario-invariant prefix input):
                // the value is being computed either way, so promote on
                // first sighting and let every later worker hit it.
                if eager && inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing);
                    return SweepDecision::Compute;
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                if inner.slots.len() < capacity * TRACKED_PER_CAPACITY {
                    inner.slots.insert(key, Slot::Pending);
                }
                SweepDecision::Skip
            }
        }
    }

    fn fulfill(&self, key: u128, value: Arc<Tensor>) {
        let mut inner = self.inner.lock().expect("sweep cache poisoned");
        inner.slots.insert(key, Slot::Ready(value));
    }

    fn abandon(&self, key: u128) {
        // The promoted computation failed: release the in-flight slot so a
        // later caller can promote the key again instead of skipping
        // forever.
        let mut inner = self.inner.lock().expect("sweep cache poisoned");
        if matches!(inner.slots.get(&key), Some(Slot::Computing)) {
            inner.promoted -= 1;
            inner.slots.insert(key, Slot::Pending);
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("sweep cache poisoned").slots.len()
    }
}

/// Keyed cross-call caches owned by a sweep driver (see the module docs).
pub struct SweepCache {
    prefix: Store,
    lowered: Store,
    capacity: usize,
}

impl SweepCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache tracking at most `capacity` keys per store.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            prefix: Store::default(),
            lowered: Store::default(),
            capacity,
        }
    }

    /// Looks up a stateless-prefix output.
    pub fn lookup_prefix(&self, key: u128) -> SweepDecision {
        self.prefix.lookup(key, self.capacity, false)
    }

    /// Stores a prefix output previously answered with
    /// [`SweepDecision::Compute`].
    pub fn fulfill_prefix(&self, key: u128, value: Arc<Tensor>) {
        self.prefix.fulfill(key, value);
    }

    /// Releases a prefix promotion whose computation failed (see
    /// [`SweepDecision::Compute`]); a later caller may promote the key
    /// again.
    pub fn abandon_prefix(&self, key: u128) {
        self.prefix.abandon(key);
    }

    /// Looks up an im2col lowering (or any other shared derivation in the
    /// lowering store, e.g. transposed weights).
    pub fn lookup_lowered(&self, key: u128) -> SweepDecision {
        self.lowered.lookup(key, self.capacity, false)
    }

    /// [`SweepCache::lookup_lowered`] with **promote-on-first-sighting**:
    /// for keys the caller knows are shared by construction (a lowering of
    /// the scenario-invariant prefix input, a transposed weight of the
    /// frozen baseline), waiting for a second sighting only delays sharing
    /// by one worker — the value is computed either way, fulfilment just
    /// keeps it. One-shot keys must keep using the non-eager lookup so they
    /// cannot crowd the bounded value store.
    pub fn lookup_lowered_eager(&self, key: u128) -> SweepDecision {
        self.lowered.lookup(key, self.capacity, true)
    }

    /// Stores an im2col lowering previously answered with
    /// [`SweepDecision::Compute`].
    pub fn fulfill_lowered(&self, key: u128, value: Arc<Tensor>) {
        self.lowered.fulfill(key, value);
    }

    /// Releases a lowering promotion whose computation failed.
    pub fn abandon_lowered(&self, key: u128) {
        self.lowered.abandon(key);
    }

    /// Counters of the prefix store.
    pub fn prefix_stats(&self) -> CacheStats {
        self.prefix.stats()
    }

    /// Counters of the im2col store.
    pub fn lowered_stats(&self) -> CacheStats {
        self.lowered.stats()
    }

    /// Total keys currently tracked (both stores, pending and fulfilled).
    pub fn len(&self) -> usize {
        self.prefix.len() + self.lowered.len()
    }

    /// Returns `true` when no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SweepCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepCache")
            .field("prefix_keys", &self.prefix.len())
            .field("prefix_stats", &self.prefix.stats())
            .field("lowered_keys", &self.lowered.len())
            .field("lowered_stats", &self.lowered.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotes_on_second_request_then_hits() {
        let cache = SweepCache::new();
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Skip));
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Compute));
        // While the promoted caller computes, racers skip.
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Skip));
        cache.fulfill_prefix(1, Arc::new(Tensor::ones(&[2])));
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Hit(_)));
        // The lowered store does not see prefix keys.
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Skip));
        let stats = cache.prefix_stats();
        assert_eq!((stats.hits, stats.misses, stats.promotions), (1, 2, 1));
    }

    #[test]
    fn value_capacity_bounds_promotions_not_pending_markers() {
        let cache = SweepCache::with_capacity(1);
        // Key 1 takes the single value slot.
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Skip));
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Compute));
        cache.fulfill_lowered(1, Arc::new(Tensor::zeros(&[1])));
        // Key 2 is tracked (cheap Pending marker) but can never promote
        // while the value capacity is used up — and key 1 still hits.
        assert!(matches!(cache.lookup_lowered(2), SweepDecision::Skip));
        assert!(matches!(cache.lookup_lowered(2), SweepDecision::Skip));
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Hit(_)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn abandon_releases_an_in_flight_promotion() {
        let cache = SweepCache::with_capacity(1);
        let _ = cache.lookup_prefix(5);
        assert!(matches!(cache.lookup_prefix(5), SweepDecision::Compute));
        // The promoted computation failed: the key returns to Pending and a
        // later caller promotes it again.
        cache.abandon_prefix(5);
        assert!(matches!(cache.lookup_prefix(5), SweepDecision::Compute));
        cache.fulfill_prefix(5, Arc::new(Tensor::zeros(&[1])));
        assert!(matches!(cache.lookup_prefix(5), SweepDecision::Hit(_)));
    }

    #[test]
    fn entries_are_arc_shared() {
        let cache = SweepCache::new();
        let tensor = Arc::new(Tensor::full(&[3], 2.5));
        let _ = cache.lookup_prefix(9);
        let _ = cache.lookup_prefix(9);
        cache.fulfill_prefix(9, Arc::clone(&tensor));
        match cache.lookup_prefix(9) {
            SweepDecision::Hit(hit) => assert!(Arc::ptr_eq(&tensor, &hit)),
            other => panic!("expected hit, got {other:?}"),
        }
    }
}
