//! Sweep-driver-owned caches shared across scenario workers.
//!
//! The figure sweeps (Fig 2 threshold cells, Fig 5 fault-rate sweeps, Fig 6/7
//! mitigation cells, Fig 8 strategy pairs) evaluate *many fault scenarios
//! against the same trained network and the same input batches*. Two
//! intermediates on that axis are recomputed identically by every worker:
//!
//! * the **stateless-prefix output** of a forward pass (the encoder
//!   convolution ahead of the first spiking layer) — identical across any two
//!   forward calls that agree on the input, the prefix parameters *and* the
//!   backend (a faulty systolic backend corrupts the prefix, so the fault map
//!   is part of the key via [`crate::MatmulBackend::fingerprint`]);
//! * the **im2col lowering** of a convolution input — a pure function of the
//!   input and the convolution geometry, shared by every fault scenario
//!   regardless of its fault map.
//!
//! A [`SweepCache`] is created by the sweep driver, installed on every
//! scenario view ([`crate::SpikingNetwork::set_sweep_cache`]) and dropped
//! when the sweep ends. Keys are 128-bit content fingerprints
//! ([`falvolt_tensor::Fingerprint`]); entries are `Arc`-shared tensors, so a
//! hit costs one clone of an `Arc`.
//!
//! Both stores **promote on second request**: the first sighting of a key
//! only records interest ([`SweepDecision::Skip`] — compute inline, store
//! nothing), and a second sighting proves the key is shared, so that caller
//! computes and fulfils the entry ([`SweepDecision::Compute`]). Retraining
//! cells generate an endless stream of one-shot keys (weights change every
//! epoch); without the policy those would flood the bounded stores with
//! batch-sized tensors that can never hit and lock out the genuinely shared
//! entries. Only one caller per key is told to compute; racers fall back to
//! inline computation. Tracked keys are bounded; once full, new keys are
//! never promoted (retention cannot change results, only hit rates).

//!
//! Like the systolic-side stores, the cache survives panicking workers:
//! locks recover from poison (conservatively quarantining in-flight
//! promotions the dead holder may have left half-done), promotions are
//! generation-tagged, and [`SweepCache::quarantine_in_flight`] lets a
//! scheduler that caught a worker panic revert every in-flight promotion so
//! a stale fulfilment is discarded, not served. Cached values are pure
//! functions of their keys, so discarding is always safe.

use falvolt_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default bound on tracked keys per store (pending and fulfilled).
const DEFAULT_CAPACITY: usize = 256;

/// What a store lookup tells the caller to do.
#[derive(Debug, Clone)]
pub enum SweepDecision {
    /// The value is cached — use it.
    Hit(Arc<Tensor>),
    /// Second sighting of a shared key: compute the value and hand it back
    /// via the matching `fulfill_*` call.
    Compute,
    /// First sighting (or the key is being computed / cannot be tracked):
    /// compute inline, store nothing.
    Skip,
}

/// Counters of one cache store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a fulfilled entry.
    pub hits: usize,
    /// Lookups that found no usable entry (first sightings, in-flight keys,
    /// capacity overflow).
    pub misses: usize,
    /// Lookups that asked the caller to compute-and-fulfill.
    pub promotions: usize,
}

enum Slot {
    /// Seen once; not yet worth materialising.
    Pending,
    /// A worker is computing the shared value; tagged with the store
    /// generation at promotion time so quarantines can be audited.
    Computing(u64),
    /// Computed and shared.
    Ready(Arc<Tensor>),
}

#[derive(Default)]
struct StoreInner {
    slots: HashMap<u128, Slot>,
    /// Keys promoted to `Computing`/`Ready` — the value-bearing entries the
    /// capacity bounds. Pending markers are 16-byte bookkeeping and get a
    /// separate, much larger bound, so a flood of one-shot keys (every
    /// retraining epoch mints new prefix keys) cannot lock genuinely shared
    /// keys out of promotion.
    promoted: usize,
    /// Bumped on every quarantine; promotions are tagged with it.
    generation: u64,
}

impl StoreInner {
    /// Reverts every in-flight `Computing` slot to `Pending` (releasing its
    /// capacity) and bumps the generation. Returns how many were reverted.
    fn quarantine(&mut self) -> usize {
        let mut reverted = 0usize;
        for slot in self.slots.values_mut() {
            if matches!(slot, Slot::Computing(_)) {
                *slot = Slot::Pending;
                reverted += 1;
            }
        }
        self.promoted -= reverted;
        self.generation += 1;
        reverted
    }
}

#[derive(Default)]
struct Store {
    inner: Mutex<StoreInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    promotions: AtomicUsize,
    quarantined: AtomicUsize,
    discarded_fulfills: AtomicUsize,
    poison_recoveries: AtomicUsize,
}

/// Tracked-key bound as a multiple of the value capacity (Pending markers
/// are tiny; this only stops the map itself from growing without limit).
const TRACKED_PER_CAPACITY: usize = 16;

impl Store {
    /// The poison-recovering lock accessor: a worker that dies holding the
    /// lock must not wedge every other worker. Recovery conservatively
    /// quarantines in-flight promotions (the dead holder may have left
    /// bookkeeping half-done); fulfilled values are kept — they were
    /// complete before the crash.
    fn guard(&self) -> MutexGuard<'_, StoreInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut guard = poisoned.into_inner();
                let reverted = guard.quarantine();
                self.quarantined.fetch_add(reverted, Ordering::Relaxed);
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    fn lookup(&self, key: u128, capacity: usize, eager: bool) -> SweepDecision {
        let mut inner = self.guard();
        let generation = inner.generation;
        match inner.slots.get(&key) {
            Some(Slot::Ready(value)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                SweepDecision::Hit(Arc::clone(value))
            }
            Some(Slot::Pending) => {
                if inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing(generation));
                    SweepDecision::Compute
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    SweepDecision::Skip
                }
            }
            Some(Slot::Computing(_)) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                SweepDecision::Skip
            }
            None => {
                // Eager callers know their key is shared by construction
                // (e.g. a lowering of the scenario-invariant prefix input):
                // the value is being computed either way, so promote on
                // first sighting and let every later worker hit it.
                if eager && inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing(generation));
                    return SweepDecision::Compute;
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                if inner.slots.len() < capacity * TRACKED_PER_CAPACITY {
                    inner.slots.insert(key, Slot::Pending);
                }
                SweepDecision::Skip
            }
        }
    }

    fn fulfill(&self, key: u128, value: Arc<Tensor>) {
        // The write only lands while the slot is still in flight: a
        // fulfilment whose promotion was quarantined is discarded, not
        // served (values are pure functions of keys — a later caller
        // re-promotes and recomputes).
        let mut inner = self.guard();
        if matches!(inner.slots.get(&key), Some(Slot::Computing(_))) {
            inner.slots.insert(key, Slot::Ready(value));
        } else {
            self.discarded_fulfills.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn abandon(&self, key: u128) {
        // The promoted computation failed: release the in-flight slot so a
        // later caller can promote the key again instead of skipping
        // forever.
        let mut inner = self.guard();
        if matches!(inner.slots.get(&key), Some(Slot::Computing(_))) {
            inner.promoted -= 1;
            inner.slots.insert(key, Slot::Pending);
        }
    }

    fn quarantine_in_flight(&self) -> usize {
        let mut inner = self.guard();
        let reverted = inner.quarantine();
        self.quarantined.fetch_add(reverted, Ordering::Relaxed);
        reverted
    }

    /// The oldest generation tag among in-flight promotions, if any — an
    /// audit hook: a tag older than the current generation would mean a
    /// pre-quarantine promotion survived, which quarantine forbids.
    fn oldest_in_flight_generation(&self) -> Option<u64> {
        self.guard()
            .slots
            .values()
            .filter_map(|slot| match slot {
                Slot::Computing(generation) => Some(*generation),
                _ => None,
            })
            .min()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }

    fn len(&self) -> usize {
        self.guard().slots.len()
    }
}

/// Keyed cross-call caches owned by a sweep driver (see the module docs).
pub struct SweepCache {
    prefix: Store,
    lowered: Store,
    capacity: usize,
}

impl SweepCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache tracking at most `capacity` keys per store.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            prefix: Store::default(),
            lowered: Store::default(),
            capacity,
        }
    }

    /// Looks up a stateless-prefix output.
    pub fn lookup_prefix(&self, key: u128) -> SweepDecision {
        self.prefix.lookup(key, self.capacity, false)
    }

    /// Stores a prefix output previously answered with
    /// [`SweepDecision::Compute`].
    pub fn fulfill_prefix(&self, key: u128, value: Arc<Tensor>) {
        // Under audit, a key fulfilled twice (first write quarantined, a
        // later worker recomputed) must carry byte-identical content.
        #[cfg(feature = "audit")]
        falvolt_tensor::audit::check_fulfill(
            "sweep-cache/prefix",
            key,
            falvolt_tensor::audit::fingerprint(value.data()),
        );
        self.prefix.fulfill(key, value);
    }

    /// Releases a prefix promotion whose computation failed (see
    /// [`SweepDecision::Compute`]); a later caller may promote the key
    /// again.
    pub fn abandon_prefix(&self, key: u128) {
        self.prefix.abandon(key);
    }

    /// Looks up an im2col lowering (or any other shared derivation in the
    /// lowering store, e.g. transposed weights).
    pub fn lookup_lowered(&self, key: u128) -> SweepDecision {
        self.lowered.lookup(key, self.capacity, false)
    }

    /// [`SweepCache::lookup_lowered`] with **promote-on-first-sighting**:
    /// for keys the caller knows are shared by construction (a lowering of
    /// the scenario-invariant prefix input, a transposed weight of the
    /// frozen baseline), waiting for a second sighting only delays sharing
    /// by one worker — the value is computed either way, fulfilment just
    /// keeps it. One-shot keys must keep using the non-eager lookup so they
    /// cannot crowd the bounded value store.
    pub fn lookup_lowered_eager(&self, key: u128) -> SweepDecision {
        self.lowered.lookup(key, self.capacity, true)
    }

    /// Stores an im2col lowering previously answered with
    /// [`SweepDecision::Compute`].
    pub fn fulfill_lowered(&self, key: u128, value: Arc<Tensor>) {
        #[cfg(feature = "audit")]
        falvolt_tensor::audit::check_fulfill(
            "sweep-cache/lowered",
            key,
            falvolt_tensor::audit::fingerprint(value.data()),
        );
        self.lowered.fulfill(key, value);
    }

    /// Releases a lowering promotion whose computation failed.
    pub fn abandon_lowered(&self, key: u128) {
        self.lowered.abandon(key);
    }

    /// Counters of the prefix store.
    pub fn prefix_stats(&self) -> CacheStats {
        self.prefix.stats()
    }

    /// Counters of the im2col store.
    pub fn lowered_stats(&self) -> CacheStats {
        self.lowered.stats()
    }

    /// Quarantines every in-flight promotion in both stores: reverts
    /// `Computing` slots to `Pending` (releasing their capacity) and bumps
    /// the store generations, so any stale fulfilment from the quarantined
    /// workers is discarded, not served. Schedulers call this after
    /// catching a scenario-worker panic — the dead worker may have been
    /// promoting any shared key. Returns the promotions reverted.
    pub fn quarantine_in_flight(&self) -> usize {
        self.prefix.quarantine_in_flight() + self.lowered.quarantine_in_flight()
    }

    /// In-flight promotions reverted by quarantines (explicit or on poison
    /// recovery), both stores.
    pub fn quarantined(&self) -> usize {
        self.prefix.quarantined.load(Ordering::Relaxed)
            + self.lowered.quarantined.load(Ordering::Relaxed)
    }

    /// Stale fulfilments discarded instead of served, both stores.
    pub fn discarded_fulfills(&self) -> usize {
        self.prefix.discarded_fulfills.load(Ordering::Relaxed)
            + self.lowered.discarded_fulfills.load(Ordering::Relaxed)
    }

    /// Poisoned-lock recoveries, both stores.
    pub fn poison_recoveries(&self) -> usize {
        self.prefix.poison_recoveries.load(Ordering::Relaxed)
            + self.lowered.poison_recoveries.load(Ordering::Relaxed)
    }

    /// The oldest generation tag among in-flight promotions across both
    /// stores, if any (audit hook — see the module docs).
    pub fn oldest_in_flight_generation(&self) -> Option<u64> {
        [
            self.prefix.oldest_in_flight_generation(),
            self.lowered.oldest_in_flight_generation(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Total keys currently tracked (both stores, pending and fulfilled).
    pub fn len(&self) -> usize {
        self.prefix.len() + self.lowered.len()
    }

    /// Returns `true` when no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SweepCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepCache")
            .field("prefix_keys", &self.prefix.len())
            .field("prefix_stats", &self.prefix.stats())
            .field("lowered_keys", &self.lowered.len())
            .field("lowered_stats", &self.lowered.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotes_on_second_request_then_hits() {
        let cache = SweepCache::new();
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Skip));
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Compute));
        // While the promoted caller computes, racers skip.
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Skip));
        cache.fulfill_prefix(1, Arc::new(Tensor::ones(&[2])));
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Hit(_)));
        // The lowered store does not see prefix keys.
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Skip));
        let stats = cache.prefix_stats();
        assert_eq!((stats.hits, stats.misses, stats.promotions), (1, 2, 1));
    }

    #[test]
    fn value_capacity_bounds_promotions_not_pending_markers() {
        let cache = SweepCache::with_capacity(1);
        // Key 1 takes the single value slot.
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Skip));
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Compute));
        cache.fulfill_lowered(1, Arc::new(Tensor::zeros(&[1])));
        // Key 2 is tracked (cheap Pending marker) but can never promote
        // while the value capacity is used up — and key 1 still hits.
        assert!(matches!(cache.lookup_lowered(2), SweepDecision::Skip));
        assert!(matches!(cache.lookup_lowered(2), SweepDecision::Skip));
        assert!(matches!(cache.lookup_lowered(1), SweepDecision::Hit(_)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn abandon_releases_an_in_flight_promotion() {
        let cache = SweepCache::with_capacity(1);
        let _ = cache.lookup_prefix(5);
        assert!(matches!(cache.lookup_prefix(5), SweepDecision::Compute));
        // The promoted computation failed: the key returns to Pending and a
        // later caller promotes it again.
        cache.abandon_prefix(5);
        assert!(matches!(cache.lookup_prefix(5), SweepDecision::Compute));
        cache.fulfill_prefix(5, Arc::new(Tensor::zeros(&[1])));
        assert!(matches!(cache.lookup_prefix(5), SweepDecision::Hit(_)));
    }

    #[test]
    fn quarantine_discards_stale_fulfills_but_keeps_ready_values() {
        let cache = SweepCache::new();
        // One fulfilled entry, one in-flight promotion.
        let _ = cache.lookup_prefix(1);
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Compute));
        cache.fulfill_prefix(1, Arc::new(Tensor::ones(&[2])));
        let _ = cache.lookup_lowered(2);
        assert!(matches!(cache.lookup_lowered(2), SweepDecision::Compute));
        // A scenario worker panicked: the in-flight promotion is reverted,
        // the complete value survives.
        assert_eq!(cache.quarantine_in_flight(), 1);
        assert_eq!(cache.quarantined(), 1);
        assert_eq!(cache.oldest_in_flight_generation(), None);
        assert!(matches!(cache.lookup_prefix(1), SweepDecision::Hit(_)));
        // The dead worker's write arrives late: discarded, not served.
        cache.fulfill_lowered(2, Arc::new(Tensor::zeros(&[9])));
        assert_eq!(cache.discarded_fulfills(), 1);
        assert!(matches!(cache.lookup_lowered(2), SweepDecision::Compute));
    }

    #[test]
    fn poisoned_lock_recovers_without_wedging_workers() {
        let cache = Arc::new(SweepCache::new());
        let _ = cache.lookup_prefix(3);
        assert!(matches!(cache.lookup_prefix(3), SweepDecision::Compute));
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.prefix.inner.lock();
            panic!("worker dies holding the sweep-cache lock");
        })
        .join();
        assert!(cache.prefix.inner.is_poisoned());
        // The next lock access recovers, quarantining the in-flight
        // promotion — the key promotes again instead of wedging.
        assert!(matches!(cache.lookup_prefix(3), SweepDecision::Compute));
        assert_eq!(cache.poison_recoveries(), 1);
        cache.fulfill_prefix(3, Arc::new(Tensor::ones(&[1])));
        assert!(matches!(cache.lookup_prefix(3), SweepDecision::Hit(_)));
    }

    #[test]
    fn entries_are_arc_shared() {
        let cache = SweepCache::new();
        let tensor = Arc::new(Tensor::full(&[3], 2.5));
        let _ = cache.lookup_prefix(9);
        let _ = cache.lookup_prefix(9);
        cache.fulfill_prefix(9, Arc::clone(&tensor));
        match cache.lookup_prefix(9) {
            SweepDecision::Hit(hit) => assert!(Arc::ptr_eq(&tensor, &hit)),
            other => panic!("expected hit, got {other:?}"),
        }
    }
}
