//! The paper's network architectures, parameterized and scaled.
//!
//! Section V-A of the paper describes the classifiers:
//!
//! * MNIST / N-MNIST: an encoding set of {convolution, spiking neurons}
//!   followed by **two** repeated sets of {convolution, batch norm, spiking
//!   neurons, pooling} and two sets of {dropout, fully connected, spiking
//!   neurons};
//! * DVS128 Gesture: the same structure with the convolutional set repeated
//!   **five** times.
//!
//! [`ArchitectureConfig`] captures that family. The `*_like` presets are
//! scaled down (16x16 inputs, 8 channels) so that CPU-only training remains
//! tractable; `paper_full_*` presets build the full-size networks for
//! completeness.

use crate::layers::{BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, SpikingLayer};
use crate::network::SpikingNetwork;
use crate::neuron::NeuronConfig;
use crate::{Result, SnnError};
use serde::{Deserialize, Serialize};

/// Configuration of a PLIF-SNN classifier in the paper's architecture family.
///
/// # Example
///
/// ```
/// use falvolt_snn::config::ArchitectureConfig;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let config = ArchitectureConfig::mnist_like();
/// let mut network = config.build(42)?;
/// assert_eq!(network.time_steps(), config.time_steps);
/// assert!(network.len() > 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureConfig {
    /// Human-readable name (also used in reports).
    pub name: String,
    /// Number of input channels (1 for static images, 2 for event polarity).
    pub input_channels: usize,
    /// Input height and width (square inputs).
    pub input_size: usize,
    /// Number of {conv, batch-norm, spike, pool} blocks after the encoder.
    pub conv_blocks: usize,
    /// How many of those blocks end with a 2x2 average pool.
    pub pool_blocks: usize,
    /// Channels of every convolutional layer.
    pub conv_channels: usize,
    /// Square kernel size of every convolution.
    pub kernel: usize,
    /// Hidden width of the first fully connected layer.
    pub fc_hidden: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Simulation time steps `T`.
    pub time_steps: usize,
    /// Dropout probability before each fully connected layer.
    pub dropout: f32,
    /// Neuron configuration shared by every spiking layer.
    pub neuron: NeuronConfig,
}

impl ArchitectureConfig {
    /// Scaled-down classifier for the synthetic MNIST-like dataset
    /// (1x16x16 inputs, 10 classes, 2 conv blocks as in the paper).
    pub fn mnist_like() -> Self {
        Self {
            name: "mnist-like".into(),
            input_channels: 1,
            input_size: 16,
            conv_blocks: 2,
            pool_blocks: 2,
            conv_channels: 8,
            kernel: 3,
            fc_hidden: 64,
            classes: 10,
            time_steps: 4,
            dropout: 0.25,
            neuron: NeuronConfig::paper_default(),
        }
    }

    /// Scaled-down classifier for the synthetic N-MNIST-like dataset
    /// (2-channel event frames, otherwise the MNIST architecture).
    pub fn nmnist_like() -> Self {
        Self {
            name: "nmnist-like".into(),
            input_channels: 2,
            ..Self::mnist_like()
        }
    }

    /// Scaled-down classifier for the synthetic DVS-Gesture-like dataset
    /// (2-channel event frames, 11 classes, 5 conv blocks as in the paper).
    pub fn dvs_gesture_like() -> Self {
        Self {
            name: "dvs-gesture-like".into(),
            input_channels: 2,
            input_size: 16,
            conv_blocks: 5,
            // Only the first two blocks pool: with 16x16 inputs, pooling in
            // every block would collapse the feature map to 1x1 before the
            // fully connected stage and destroy the spatial evidence the
            // motion classes depend on (the paper's full-size 128x128 inputs
            // can afford a pool per block).
            pool_blocks: 2,
            conv_channels: 8,
            kernel: 3,
            fc_hidden: 64,
            classes: 11,
            time_steps: 6,
            dropout: 0.25,
            neuron: NeuronConfig::paper_default(),
        }
    }

    /// The full-size MNIST classifier of the paper (28x28 inputs, 128
    /// channels, 2048 hidden units). Provided for completeness; training it
    /// on a CPU is slow.
    pub fn paper_full_mnist() -> Self {
        Self {
            name: "paper-mnist".into(),
            input_channels: 1,
            input_size: 28,
            conv_blocks: 2,
            pool_blocks: 2,
            conv_channels: 128,
            kernel: 3,
            fc_hidden: 2048,
            classes: 10,
            time_steps: 8,
            dropout: 0.5,
            neuron: NeuronConfig::paper_default(),
        }
    }

    /// A deliberately tiny configuration for fast unit and integration tests.
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".into(),
            input_channels: 1,
            input_size: 8,
            conv_blocks: 1,
            pool_blocks: 1,
            conv_channels: 4,
            kernel: 3,
            fc_hidden: 16,
            classes: 4,
            time_steps: 2,
            dropout: 0.0,
            neuron: NeuronConfig::paper_default(),
        }
    }

    /// Builder-style override of the neuron configuration.
    pub fn with_neuron(mut self, neuron: NeuronConfig) -> Self {
        self.neuron = neuron;
        self
    }

    /// Builder-style override of the time-step count.
    pub fn with_time_steps(mut self, time_steps: usize) -> Self {
        self.time_steps = time_steps;
        self
    }

    /// Spatial size of the feature map entering the fully connected stage.
    pub fn final_spatial_size(&self) -> usize {
        self.input_size >> self.pool_blocks
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when pooling would shrink the
    /// feature map below 1x1, when `pool_blocks > conv_blocks`, or when the
    /// input size is not divisible by the total pooling factor.
    pub fn validate(&self) -> Result<()> {
        if self.conv_blocks == 0 {
            return Err(SnnError::invalid_config(
                "at least one conv block is required",
            ));
        }
        if self.pool_blocks > self.conv_blocks {
            return Err(SnnError::invalid_config(format!(
                "pool_blocks ({}) cannot exceed conv_blocks ({})",
                self.pool_blocks, self.conv_blocks
            )));
        }
        let factor = 1usize << self.pool_blocks;
        if !self.input_size.is_multiple_of(factor) || self.input_size / factor == 0 {
            return Err(SnnError::invalid_config(format!(
                "input size {} is not divisible by the pooling factor {}",
                self.input_size, factor
            )));
        }
        if self.classes == 0 || self.time_steps == 0 || self.conv_channels == 0 {
            return Err(SnnError::invalid_config(
                "classes, time_steps and conv_channels must be non-zero",
            ));
        }
        Ok(())
    }

    /// Builds the network with weights seeded from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when [`ArchitectureConfig::validate`]
    /// fails.
    pub fn build(&self, seed: u64) -> Result<SpikingNetwork> {
        self.validate()?;
        let mut network = SpikingNetwork::new(self.time_steps);
        let pad = self.kernel / 2;
        let mut layer_seed = seed;
        let mut next_seed = || {
            layer_seed = layer_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            layer_seed
        };

        // Spike-encoding set: convolution + spiking neurons (Section V-A).
        network.push(Conv2d::new(
            "encode_conv",
            self.input_channels,
            self.conv_channels,
            self.kernel,
            1,
            pad,
            next_seed(),
        )?);
        network.push(SpikingLayer::new("encode_sn", self.neuron));

        // Repeated {conv, batch norm, spiking, pool} blocks.
        for block in 0..self.conv_blocks {
            let idx = block + 1;
            network.push(Conv2d::new(
                format!("conv{idx}"),
                self.conv_channels,
                self.conv_channels,
                self.kernel,
                1,
                pad,
                next_seed(),
            )?);
            network.push(BatchNorm2d::new(format!("bn{idx}"), self.conv_channels));
            network.push(SpikingLayer::new(format!("conv{idx}_sn"), self.neuron));
            if block < self.pool_blocks {
                // Max pooling (as in the PLIF reference implementation the
                // paper builds on): it preserves the binary amplitude of
                // spikes, which average pooling would attenuate.
                network.push(MaxPool2d::new(format!("pool{idx}"), 2));
            }
        }

        // Two {dropout, fully connected, spiking} sets.
        let spatial = self.final_spatial_size();
        let fc_in = self.conv_channels * spatial * spatial;
        network.push(Flatten::new("flatten"));
        if self.dropout > 0.0 {
            network.push(Dropout::new("dropout1", self.dropout, next_seed())?);
        }
        network.push(Linear::new("fc1", fc_in, self.fc_hidden, next_seed())?);
        network.push(SpikingLayer::new("fc1_sn", self.neuron));
        if self.dropout > 0.0 {
            network.push(Dropout::new("dropout2", self.dropout, next_seed())?);
        }
        network.push(Linear::new(
            "fc2",
            self.fc_hidden,
            self.classes,
            next_seed(),
        )?);
        network.push(SpikingLayer::new("fc2_sn", self.neuron));

        Ok(network)
    }

    /// Names of the hidden layers whose threshold voltages the paper reports
    /// in Figure 6 (the convolutional and fully connected spiking layers).
    pub fn hidden_layer_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (1..=self.conv_blocks).map(|i| format!("Conv{i}")).collect();
        names.push("FC1".to_string());
        names.push("FC2".to_string());
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Mode;
    use falvolt_tensor::Tensor;

    #[test]
    fn presets_validate_and_build() {
        for config in [
            ArchitectureConfig::mnist_like(),
            ArchitectureConfig::nmnist_like(),
            ArchitectureConfig::dvs_gesture_like(),
            ArchitectureConfig::tiny_test(),
        ] {
            config.validate().unwrap();
            let network = config.build(1).unwrap();
            assert!(!network.is_empty(), "{} built empty", config.name);
        }
        // The full-size config must at least validate (building it is cheap,
        // running it is not).
        ArchitectureConfig::paper_full_mnist().validate().unwrap();
    }

    #[test]
    fn paper_structure_counts_match_section_v() {
        // MNIST-like: 2 conv blocks -> thresholds for encode + 2 conv + 2 FC
        // spiking layers = 5 spiking layers in total.
        let config = ArchitectureConfig::mnist_like();
        let network = config.build(3).unwrap();
        let spiking = network.thresholds().len();
        assert_eq!(spiking, 1 + config.conv_blocks + 2);

        // DVS-like: 5 conv blocks -> 8 spiking layers.
        let config = ArchitectureConfig::dvs_gesture_like();
        let network = config.build(3).unwrap();
        assert_eq!(network.thresholds().len(), 1 + 5 + 2);
        assert_eq!(config.hidden_layer_names().len(), 7);
    }

    #[test]
    fn built_network_runs_forward_with_expected_shapes() {
        let config = ArchitectureConfig::tiny_test();
        let mut network = config.build(9).unwrap();
        let input = Tensor::zeros(&[
            3,
            config.input_channels,
            config.input_size,
            config.input_size,
        ]);
        let rates = network.forward(&input, Mode::Eval).unwrap();
        assert_eq!(rates.shape(), &[3, config.classes]);

        let config = ArchitectureConfig::nmnist_like();
        let mut network = config.build(9).unwrap();
        let temporal = Tensor::zeros(&[
            2,
            config.time_steps,
            config.input_channels,
            config.input_size,
            config.input_size,
        ]);
        let rates = network.forward(&temporal, Mode::Eval).unwrap();
        assert_eq!(rates.shape(), &[2, config.classes]);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ArchitectureConfig::mnist_like();
        config.pool_blocks = 5; // exceeds conv_blocks
        assert!(config.validate().is_err());

        let mut config = ArchitectureConfig::mnist_like();
        config.conv_blocks = 0;
        assert!(config.validate().is_err());

        let mut config = ArchitectureConfig::mnist_like();
        config.input_size = 10; // not divisible by 4
        assert!(config.validate().is_err());

        let mut config = ArchitectureConfig::mnist_like();
        config.classes = 0;
        assert!(config.build(0).is_err());
    }

    #[test]
    fn final_spatial_size_accounts_for_pooling() {
        assert_eq!(ArchitectureConfig::mnist_like().final_spatial_size(), 4);
        assert_eq!(
            ArchitectureConfig::dvs_gesture_like().final_spatial_size(),
            4
        );
        assert_eq!(ArchitectureConfig::tiny_test().final_spatial_size(), 4);
    }

    #[test]
    fn builders_override_fields() {
        let config = ArchitectureConfig::mnist_like()
            .with_time_steps(2)
            .with_neuron(NeuronConfig::falvolt_retraining());
        assert_eq!(config.time_steps, 2);
        assert!(config.neuron.learn_threshold);
    }
}
