//! Gradient-descent optimizers.

use crate::param::Param;
use serde::{Deserialize, Serialize};

/// An optimizer that updates [`Param`]s in place from their accumulated
/// gradients. Frozen parameters (see [`Param::set_trainable`]) are skipped.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step to the given parameters.
    fn step(&mut self, params: Vec<&mut Param>);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (e.g. for a decay schedule).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use falvolt_snn::optim::{Optimizer, Sgd};
/// use falvolt_snn::Param;
/// use falvolt_tensor::Tensor;
///
/// let mut sgd = Sgd::new(0.1, 0.0);
/// let mut p = Param::new("w", Tensor::scalar(1.0));
/// p.grad_mut().fill(2.0);
/// sgd.step(vec![&mut p]);
/// assert!((p.value().data()[0] - 0.8).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: Vec<&mut Param>) {
        for param in params {
            if !param.is_trainable() {
                continue;
            }
            let momentum = self.momentum;
            let lr = self.lr;
            if momentum > 0.0 {
                // buf = momentum * buf + grad; value -= lr * buf.
                let grad = param.grad().clone();
                let buf = param.momentum_mut();
                buf.scale_inplace(momentum);
                buf.add_assign(&grad).expect("grad shape matches value");
                let buf = buf.clone();
                param
                    .value_mut()
                    .add_scaled_assign(&buf, -lr)
                    .expect("buffer shape matches value");
            } else {
                let (value, grad) = param.value_and_grad_mut();
                let grad = grad.clone();
                value
                    .add_scaled_assign(&grad, -lr)
                    .expect("grad shape matches value");
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Creates Adam with the given learning rate and default moments
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: Vec<&mut Param>) {
        for param in params {
            if !param.is_trainable() {
                continue;
            }
            let grad = param.grad().clone();
            let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
            let (m, v, step) = param.adam_state_mut();
            *step += 1;
            let t = *step as i32;
            // m = beta1 m + (1 - beta1) g ; v = beta2 v + (1 - beta2) g^2.
            for ((m_i, v_i), &g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grad.data())
            {
                *m_i = beta1 * *m_i + (1.0 - beta1) * g;
                *v_i = beta2 * *v_i + (1.0 - beta2) * g * g;
            }
            let bias1 = 1.0 - beta1.powi(t);
            let bias2 = 1.0 - beta2.powi(t);
            let m_hat = m.mul_scalar(1.0 / bias1);
            let v_hat = v.mul_scalar(1.0 / bias2);
            let value = param.value_mut();
            for ((w, &mh), &vh) in value
                .data_mut()
                .iter_mut()
                .zip(m_hat.data())
                .zip(v_hat.data())
            {
                *w -= lr * mh / (vh.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_tensor::Tensor;

    fn param_with_grad(value: f32, grad: f32) -> Param {
        let mut p = Param::new("w", Tensor::scalar(value));
        p.grad_mut().fill(grad);
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut sgd = Sgd::new(0.5, 0.0);
        let mut p = param_with_grad(1.0, 1.0);
        sgd.step(vec![&mut p]);
        assert!((p.value().data()[0] - 0.5).abs() < 1e-6);
        assert_eq!(sgd.learning_rate(), 0.5);
        sgd.set_learning_rate(0.1);
        assert_eq!(sgd.learning_rate(), 0.1);
    }

    #[test]
    fn sgd_momentum_accelerates_repeated_gradients() {
        let mut plain = Sgd::new(0.1, 0.0);
        let mut momentum = Sgd::new(0.1, 0.9);
        let mut p1 = param_with_grad(0.0, 1.0);
        let mut p2 = param_with_grad(0.0, 1.0);
        for _ in 0..5 {
            plain.step(vec![&mut p1]);
            momentum.step(vec![&mut p2]);
        }
        assert!(
            p2.value().data()[0] < p1.value().data()[0],
            "momentum should have travelled further: {} vs {}",
            p2.value().data()[0],
            p1.value().data()[0]
        );
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let mut sgd = Sgd::new(0.5, 0.0);
        let mut p = param_with_grad(1.0, 1.0);
        p.set_trainable(false);
        sgd.step(vec![&mut p]);
        assert_eq!(p.value().data()[0], 1.0);

        let mut adam = Adam::new(0.5);
        adam.step(vec![&mut p]);
        assert_eq!(p.value().data()[0], 1.0);
    }

    #[test]
    fn adam_first_step_moves_by_about_lr() {
        let mut adam = Adam::new(0.01);
        let mut p = param_with_grad(1.0, 5.0);
        adam.step(vec![&mut p]);
        // After bias correction the first Adam step has magnitude ~lr.
        assert!((p.value().data()[0] - (1.0 - 0.01)).abs() < 1e-4);
        assert_eq!(adam.learning_rate(), 0.01);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(w) = (w - 3)^2 by feeding grad = 2 (w - 3).
        let mut adam = Adam::with_betas(0.1, 0.9, 0.999, 1e-8);
        let mut p = Param::new("w", Tensor::scalar(-2.0));
        for _ in 0..300 {
            let w = p.value().data()[0];
            p.zero_grad();
            p.grad_mut().fill(2.0 * (w - 3.0));
            adam.step(vec![&mut p]);
        }
        assert!((p.value().data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn adam_learning_rate_setter() {
        let mut adam = Adam::new(0.01);
        adam.set_learning_rate(0.2);
        assert_eq!(adam.learning_rate(), 0.2);
    }
}
