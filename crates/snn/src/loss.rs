//! Loss functions on firing rates.
//!
//! The paper (following the PLIF reference implementation) trains on the mean
//! square error between the output firing rates and the one-hot target —
//! described in the paper as "the cross entropy loss function defined by the
//! mean square error". Both the MSE-on-rate loss and a softmax cross-entropy
//! variant are provided; all experiments use [`MseRateLoss`].

use crate::{Result, SnnError};
use falvolt_tensor::Tensor;

/// A differentiable loss on `[N, classes]` rate/target pairs.
pub trait Loss: std::fmt::Debug {
    /// The scalar loss value.
    ///
    /// # Errors
    ///
    /// Returns an error when predictions and targets have different shapes.
    fn forward(&self, predictions: &Tensor, targets: &Tensor) -> Result<f32>;

    /// The gradient of the loss with respect to the predictions.
    ///
    /// # Errors
    ///
    /// Returns an error when predictions and targets have different shapes.
    fn backward(&self, predictions: &Tensor, targets: &Tensor) -> Result<Tensor>;

    /// Human-readable name.
    fn name(&self) -> &str;
}

fn check_shapes(predictions: &Tensor, targets: &Tensor) -> Result<()> {
    if predictions.shape() != targets.shape() || predictions.ndim() != 2 {
        return Err(SnnError::invalid_input(format!(
            "loss expects matching [N, classes] tensors, got {:?} and {:?}",
            predictions.shape(),
            targets.shape()
        )));
    }
    Ok(())
}

/// Mean square error between firing rates and one-hot targets.
///
/// # Example
///
/// ```
/// use falvolt_snn::loss::{Loss, MseRateLoss};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let loss = MseRateLoss::new();
/// let perfect = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0])?;
/// assert_eq!(loss.forward(&perfect, &perfect)?, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MseRateLoss;

impl MseRateLoss {
    /// Creates the MSE loss.
    pub fn new() -> Self {
        Self
    }
}

impl Loss for MseRateLoss {
    fn forward(&self, predictions: &Tensor, targets: &Tensor) -> Result<f32> {
        check_shapes(predictions, targets)?;
        let n = predictions.len() as f32;
        let sum: f32 = predictions
            .data()
            .iter()
            .zip(targets.data())
            .map(|(p, t)| (p - t) * (p - t))
            .sum();
        Ok(sum / n)
    }

    fn backward(&self, predictions: &Tensor, targets: &Tensor) -> Result<Tensor> {
        check_shapes(predictions, targets)?;
        let n = predictions.len() as f32;
        Ok(predictions.zip_map(targets, |p, t| 2.0 * (p - t) / n)?)
    }

    fn name(&self) -> &str {
        "mse-rate"
    }
}

/// Softmax cross-entropy on firing rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the cross-entropy loss.
    pub fn new() -> Self {
        Self
    }

    fn softmax_rows(predictions: &Tensor) -> Tensor {
        let (n, c) = (predictions.shape()[0], predictions.shape()[1]);
        let mut out = Tensor::zeros(&[n, c]);
        let src = predictions.data();
        let dst = out.data_mut();
        for i in 0..n {
            let row = &src[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for j in 0..c {
                dst[i * c + j] = exps[j] / sum;
            }
        }
        out
    }
}

impl Loss for CrossEntropyLoss {
    fn forward(&self, predictions: &Tensor, targets: &Tensor) -> Result<f32> {
        check_shapes(predictions, targets)?;
        let probs = Self::softmax_rows(predictions);
        let n = predictions.shape()[0] as f32;
        let loss: f32 = probs
            .data()
            .iter()
            .zip(targets.data())
            .map(|(p, t)| {
                if *t > 0.0 {
                    -t * p.max(1e-12).ln()
                } else {
                    0.0
                }
            })
            .sum();
        Ok(loss / n)
    }

    fn backward(&self, predictions: &Tensor, targets: &Tensor) -> Result<Tensor> {
        check_shapes(predictions, targets)?;
        let probs = Self::softmax_rows(predictions);
        let n = predictions.shape()[0] as f32;
        Ok(probs.zip_map(targets, |p, t| (p - t) / n)?)
    }

    fn name(&self) -> &str {
        "cross-entropy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_tensor::reduce;

    #[test]
    fn mse_is_zero_at_target_and_positive_elsewhere() {
        let loss = MseRateLoss::new();
        let target = reduce::one_hot(&[1, 0], 3).unwrap();
        assert_eq!(loss.forward(&target, &target).unwrap(), 0.0);
        let pred = Tensor::full(&[2, 3], 0.5);
        assert!(loss.forward(&pred, &target).unwrap() > 0.0);
        assert_eq!(loss.name(), "mse-rate");
    }

    #[test]
    fn mse_gradient_points_from_target_to_prediction() {
        let loss = MseRateLoss::new();
        let target = reduce::one_hot(&[0], 2).unwrap();
        let pred = Tensor::from_vec(vec![1, 2], vec![0.25, 0.75]).unwrap();
        let grad = loss.backward(&pred, &target).unwrap();
        // d/dp mean((p - t)^2) = 2 (p - t) / N.
        assert!((grad.get(&[0, 0]) - 2.0 * (0.25 - 1.0) / 2.0).abs() < 1e-6);
        assert!((grad.get(&[0, 1]) - 2.0 * 0.75 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let loss = MseRateLoss::new();
        let target = reduce::one_hot(&[1, 2], 3).unwrap();
        let pred = Tensor::from_fn(&[2, 3], |i| 0.1 * i as f32);
        let grad = loss.backward(&pred, &target).unwrap();
        let eps = 1e-3;
        for i in 0..pred.len() {
            let mut plus = pred.clone();
            plus.data_mut()[i] += eps;
            let mut minus = pred.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (loss.forward(&plus, &target).unwrap()
                - loss.forward(&minus, &target).unwrap())
                / (2.0 * eps);
            assert!((numeric - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let loss = CrossEntropyLoss::new();
        let target = reduce::one_hot(&[0], 2).unwrap();
        let good = Tensor::from_vec(vec![1, 2], vec![5.0, -5.0]).unwrap();
        let bad = Tensor::from_vec(vec![1, 2], vec![-5.0, 5.0]).unwrap();
        assert!(loss.forward(&good, &target).unwrap() < loss.forward(&bad, &target).unwrap());
        assert_eq!(loss.name(), "cross-entropy");
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let loss = CrossEntropyLoss::new();
        let target = reduce::one_hot(&[1], 3).unwrap();
        let pred = Tensor::from_vec(vec![1, 3], vec![0.2, 0.5, -0.1]).unwrap();
        let grad = loss.backward(&pred, &target).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = pred.clone();
            plus.data_mut()[i] += eps;
            let mut minus = pred.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (loss.forward(&plus, &target).unwrap()
                - loss.forward(&minus, &target).unwrap())
                / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "{numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let loss = MseRateLoss::new();
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(loss.forward(&a, &b).is_err());
        assert!(loss.backward(&a, &b).is_err());
        let ce = CrossEntropyLoss::new();
        assert!(ce.forward(&a, &b).is_err());
        assert!(ce
            .backward(&Tensor::zeros(&[3]), &Tensor::zeros(&[3]))
            .is_err());
    }
}
