//! Trainable parameters.

use crate::Result;
use falvolt_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A trainable parameter: a value tensor, its accumulated gradient and the
/// optimizer state attached to it.
///
/// Layers expose their parameters through [`crate::Layer::params_mut`]; the
/// optimizers in [`crate::optim`] update them in place. The `trainable` flag
/// lets FalVolt freeze or un-freeze individual parameters (e.g. the threshold
/// voltage is frozen during initial training and unfrozen during fault-aware
/// retraining).
///
/// # Copy-on-write sharing
///
/// Every tensor is held behind an [`Arc`] with copy-on-write semantics:
/// cloning a `Param` (and therefore cloning a whole network into scenario
/// workers) shares the underlying buffers, and the first *mutable* access —
/// an optimizer step, a gradient accumulation, a pruning mask — transparently
/// detaches a private copy ([`Arc::make_mut`]). Evaluation-only scenario
/// sweeps thus keep the memory footprint of the weight axis at O(weights)
/// regardless of worker count, while retraining cells that genuinely diverge
/// pay for their own copies exactly when they start diverging.
///
/// # Example
///
/// ```
/// use falvolt_snn::Param;
/// use falvolt_tensor::Tensor;
///
/// let mut p = Param::new("weight", Tensor::ones(&[2, 2]));
/// assert!(p.is_trainable());
/// p.grad_mut().fill(0.5);
/// p.zero_grad();
/// assert!(p.grad().data().iter().all(|&g| g == 0.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    name: String,
    value: Arc<Tensor>,
    grad: Arc<Tensor>,
    trainable: bool,
    // Adam state (lazily meaningful: zeros until the first Adam step).
    adam_m: Arc<Tensor>,
    adam_v: Arc<Tensor>,
    adam_step: u64,
    // SGD momentum buffer.
    momentum: Arc<Tensor>,
    // Bumped on every mutable access to `value`. Layers key derived tensors
    // (e.g. the transposed weight matrix) on it, so evaluation reuses them
    // across calls while any mutation — optimizer step, pruning, import —
    // invalidates exactly the derivations it staled.
    version: u64,
}

impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        // The version counter is an edit counter, not state: two params that
        // hold the same tensors are equal however they got there.
        self.name == other.name
            && self.value == other.value
            && self.grad == other.grad
            && self.trainable == other.trainable
            && self.adam_m == other.adam_m
            && self.adam_v == other.adam_v
            && self.adam_step == other.adam_step
            && self.momentum == other.momentum
    }
}

impl Param {
    /// Creates a trainable parameter with zeroed gradient and optimizer state.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let shape = value.shape().to_vec();
        Self {
            name: name.into(),
            grad: Arc::new(Tensor::zeros(&shape)),
            adam_m: Arc::new(Tensor::zeros(&shape)),
            adam_v: Arc::new(Tensor::zeros(&shape)),
            momentum: Arc::new(Tensor::zeros(&shape)),
            adam_step: 0,
            trainable: true,
            value: Arc::new(value),
            version: 0,
        }
    }

    /// Creates a parameter that optimizers will skip.
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.trainable = false;
        p
    }

    /// The parameter name (used in diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// The parameter value, mutably (detaches a private copy when the buffer
    /// is shared with scenario-worker clones).
    pub fn value_mut(&mut self) -> &mut Tensor {
        self.version += 1;
        Arc::make_mut(&mut self.value)
    }

    /// Replaces the parameter value without touching the old buffer (clones
    /// sharing it keep it; no copy-on-write round trip).
    pub fn assign_value(&mut self, value: Tensor) {
        self.version += 1;
        self.value = Arc::new(value);
    }

    /// Edit counter of the value tensor: any mutable access bumps it, so a
    /// derivation computed at version `v` is valid exactly while
    /// `version() == v`. Clones inherit the counter and diverge with their
    /// own edits, which is safe because derivations are cached next to the
    /// parameter they derive from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// The accumulated gradient, mutably (copy-on-write, see
    /// [`Param::value_mut`]).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        Arc::make_mut(&mut self.grad)
    }

    /// Accumulates `grad` into the parameter's gradient.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the gradient shape differs from the value.
    pub fn accumulate_grad(&mut self, grad: &Tensor) -> Result<()> {
        Arc::make_mut(&mut self.grad).add_assign(grad)?;
        Ok(())
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        // An already-zero gradient stays shared: scenario views that never
        // train keep borrowing the (zero) buffer of the network they were
        // carved from instead of materialising a private copy.
        if self.grad.data().iter().all(|&g| g == 0.0) {
            return;
        }
        Arc::make_mut(&mut self.grad).fill(0.0);
    }

    /// Whether optimizers should update this parameter.
    pub fn is_trainable(&self) -> bool {
        self.trainable
    }

    /// Freezes or unfreezes the parameter.
    pub fn set_trainable(&mut self, trainable: bool) {
        self.trainable = trainable;
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets all optimizer state (Adam moments, momentum buffer).
    pub fn reset_optimizer_state(&mut self) {
        self.adam_step = 0;
        for buffer in [&mut self.adam_m, &mut self.adam_v, &mut self.momentum] {
            // Same sharing-preserving fast path as `zero_grad`.
            if buffer.data().iter().all(|&x| x == 0.0) {
                continue;
            }
            Arc::make_mut(buffer).fill(0.0);
        }
    }

    /// Detaches private copies of every tensor, severing copy-on-write
    /// sharing with any clones. Used by benchmarks and equivalence tests that
    /// need the pre-CoW "deep clone" cost model; production code never needs
    /// this — mutation detaches on demand.
    pub fn unshare(&mut self) {
        for buffer in [
            &mut self.value,
            &mut self.grad,
            &mut self.adam_m,
            &mut self.adam_v,
            &mut self.momentum,
        ] {
            let _ = Arc::make_mut(buffer);
        }
    }

    /// `true` when this parameter's value buffer is shared with at least one
    /// other `Param` clone (diagnostics for the scenario-sharing tests).
    pub fn value_is_shared(&self) -> bool {
        Arc::strong_count(&self.value) > 1
    }

    pub(crate) fn adam_state_mut(&mut self) -> (&mut Tensor, &mut Tensor, &mut u64) {
        (
            Arc::make_mut(&mut self.adam_m),
            Arc::make_mut(&mut self.adam_v),
            &mut self.adam_step,
        )
    }

    pub(crate) fn momentum_mut(&mut self) -> &mut Tensor {
        Arc::make_mut(&mut self.momentum)
    }

    pub(crate) fn value_and_grad_mut(&mut self) -> (&mut Tensor, &Tensor) {
        self.version += 1;
        (Arc::make_mut(&mut self.value), &self.grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_state() {
        let p = Param::new("w", Tensor::ones(&[3]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.grad().data().iter().all(|&g| g == 0.0));
        assert!(p.is_trainable());
    }

    #[test]
    fn frozen_param_is_not_trainable() {
        let mut p = Param::frozen("vth", Tensor::scalar(1.0));
        assert!(!p.is_trainable());
        p.set_trainable(true);
        assert!(p.is_trainable());
    }

    #[test]
    fn accumulate_and_zero_grad() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        let g = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        p.accumulate_grad(&g).unwrap();
        p.accumulate_grad(&g).unwrap();
        assert_eq!(p.grad().data(), &[2.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
        assert!(p.accumulate_grad(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn reset_optimizer_state_clears_moments() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        {
            let (m, v, step) = p.adam_state_mut();
            m.fill(1.0);
            v.fill(1.0);
            *step = 10;
        }
        p.momentum_mut().fill(2.0);
        p.reset_optimizer_state();
        let (m, v, step) = p.adam_state_mut();
        assert!(m.data().iter().all(|&x| x == 0.0));
        assert!(v.data().iter().all(|&x| x == 0.0));
        assert_eq!(*step, 0);
    }

    #[test]
    fn clones_share_until_mutated() {
        let mut original = Param::new("w", Tensor::ones(&[4]));
        let clone = original.clone();
        assert!(original.value_is_shared());
        assert!(clone.value_is_shared());

        // Reads keep sharing; zeroing an already-zero gradient too.
        assert_eq!(original.value().data(), clone.value().data());
        original.zero_grad();
        assert!(original.value_is_shared());

        // First mutation detaches a private copy and leaves the clone intact.
        original.value_mut().fill(7.0);
        assert!(!original.value_is_shared());
        assert_eq!(clone.value().data(), &[1.0; 4]);
        assert_eq!(original.value().data(), &[7.0; 4]);
    }

    #[test]
    fn assign_value_and_unshare_detach() {
        let mut a = Param::new("w", Tensor::ones(&[2]));
        let b = a.clone();
        a.assign_value(Tensor::zeros(&[2]));
        assert_eq!(b.value().data(), &[1.0, 1.0]);
        assert_eq!(a.value().data(), &[0.0, 0.0]);

        let mut c = b.clone();
        assert!(c.value_is_shared());
        c.unshare();
        assert!(!c.value_is_shared());
        assert_eq!(c.value().data(), b.value().data());
    }
}
