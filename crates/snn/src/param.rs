//! Trainable parameters.

use crate::Result;
use falvolt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a value tensor, its accumulated gradient and the
/// optimizer state attached to it.
///
/// Layers expose their parameters through [`crate::Layer::params_mut`]; the
/// optimizers in [`crate::optim`] update them in place. The `trainable` flag
/// lets FalVolt freeze or un-freeze individual parameters (e.g. the threshold
/// voltage is frozen during initial training and unfrozen during fault-aware
/// retraining).
///
/// # Example
///
/// ```
/// use falvolt_snn::Param;
/// use falvolt_tensor::Tensor;
///
/// let mut p = Param::new("weight", Tensor::ones(&[2, 2]));
/// assert!(p.is_trainable());
/// p.grad_mut().fill(0.5);
/// p.zero_grad();
/// assert!(p.grad().data().iter().all(|&g| g == 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    trainable: bool,
    // Adam state (lazily meaningful: zeros until the first Adam step).
    adam_m: Tensor,
    adam_v: Tensor,
    adam_step: u64,
    // SGD momentum buffer.
    momentum: Tensor,
}

impl Param {
    /// Creates a trainable parameter with zeroed gradient and optimizer state.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let shape = value.shape().to_vec();
        Self {
            name: name.into(),
            grad: Tensor::zeros(&shape),
            adam_m: Tensor::zeros(&shape),
            adam_v: Tensor::zeros(&shape),
            momentum: Tensor::zeros(&shape),
            adam_step: 0,
            trainable: true,
            value,
        }
    }

    /// Creates a parameter that optimizers will skip.
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.trainable = false;
        p
    }

    /// The parameter name (used in diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// The parameter value, mutably.
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// The accumulated gradient, mutably.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Accumulates `grad` into the parameter's gradient.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the gradient shape differs from the value.
    pub fn accumulate_grad(&mut self, grad: &Tensor) -> Result<()> {
        self.grad.add_assign(grad)?;
        Ok(())
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Whether optimizers should update this parameter.
    pub fn is_trainable(&self) -> bool {
        self.trainable
    }

    /// Freezes or unfreezes the parameter.
    pub fn set_trainable(&mut self, trainable: bool) {
        self.trainable = trainable;
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets all optimizer state (Adam moments, momentum buffer).
    pub fn reset_optimizer_state(&mut self) {
        self.adam_m.fill(0.0);
        self.adam_v.fill(0.0);
        self.momentum.fill(0.0);
        self.adam_step = 0;
    }

    pub(crate) fn adam_state_mut(&mut self) -> (&mut Tensor, &mut Tensor, &mut u64) {
        (&mut self.adam_m, &mut self.adam_v, &mut self.adam_step)
    }

    pub(crate) fn momentum_mut(&mut self) -> &mut Tensor {
        &mut self.momentum
    }

    pub(crate) fn value_and_grad_mut(&mut self) -> (&mut Tensor, &Tensor) {
        (&mut self.value, &self.grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_state() {
        let p = Param::new("w", Tensor::ones(&[3]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.grad().data().iter().all(|&g| g == 0.0));
        assert!(p.is_trainable());
    }

    #[test]
    fn frozen_param_is_not_trainable() {
        let mut p = Param::frozen("vth", Tensor::scalar(1.0));
        assert!(!p.is_trainable());
        p.set_trainable(true);
        assert!(p.is_trainable());
    }

    #[test]
    fn accumulate_and_zero_grad() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        let g = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        p.accumulate_grad(&g).unwrap();
        p.accumulate_grad(&g).unwrap();
        assert_eq!(p.grad().data(), &[2.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
        assert!(p.accumulate_grad(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn reset_optimizer_state_clears_moments() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        {
            let (m, v, step) = p.adam_state_mut();
            m.fill(1.0);
            v.fill(1.0);
            *step = 10;
        }
        p.momentum_mut().fill(2.0);
        p.reset_optimizer_state();
        let (m, v, step) = p.adam_state_mut();
        assert!(m.data().iter().all(|&x| x == 0.0));
        assert!(v.data().iter().all(|&x| x == 0.0));
        assert_eq!(*step, 0);
    }
}
