//! Mini-batch training and evaluation loops.

use crate::layers::Mode;
use crate::loss::Loss;
use crate::metrics;
use crate::network::SpikingNetwork;
use crate::optim::Optimizer;
use crate::{Result, SnnError};
use falvolt_tensor::{reduce, Tensor};
use serde::{Deserialize, Serialize};

/// One mini-batch: an input tensor (static `[N, C, H, W]` or temporal
/// `[N, T, C, H, W]`) and its integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The batched network input.
    pub input: Tensor,
    /// One class label per sample.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch, validating that the label count matches the batch
    /// dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidInput`] on a count mismatch.
    pub fn new(input: Tensor, labels: Vec<usize>) -> Result<Self> {
        if input.ndim() == 0 || input.shape()[0] != labels.len() {
            return Err(SnnError::invalid_input(format!(
                "batch of {} samples got {} labels",
                if input.ndim() == 0 {
                    0
                } else {
                    input.shape()[0]
                },
                labels.len()
            )));
        }
        Ok(Self { input, labels })
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Loss and accuracy of one pass over the data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Mean loss over all batches.
    pub loss: f32,
    /// Classification accuracy over all samples.
    pub accuracy: f32,
}

/// Drives training of a [`SpikingNetwork`] with a given optimizer and loss.
///
/// # Example
///
/// ```
/// use falvolt_snn::config::ArchitectureConfig;
/// use falvolt_snn::loss::MseRateLoss;
/// use falvolt_snn::optim::Adam;
/// use falvolt_snn::trainer::{Batch, Trainer};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let config = ArchitectureConfig::tiny_test();
/// let mut network = config.build(3)?;
/// let mut trainer = Trainer::new(Adam::new(1e-3), MseRateLoss::new(), config.classes);
/// let batch = Batch::new(
///     Tensor::ones(&[2, config.input_channels, config.input_size, config.input_size]),
///     vec![0, 1],
/// )?;
/// let report = trainer.train_epoch(&mut network, &[batch])?;
/// assert!(report.loss.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Trainer<O, L> {
    optimizer: O,
    loss: L,
    classes: usize,
}

impl<O: Optimizer, L: Loss> Trainer<O, L> {
    /// Creates a trainer.
    pub fn new(optimizer: O, loss: L, classes: usize) -> Self {
        Self {
            optimizer,
            loss,
            classes,
        }
    }

    /// The number of output classes (used for one-hot targets).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Mutable access to the optimizer (e.g. to decay the learning rate).
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }

    /// Runs one optimization step on a single batch and returns `(loss,
    /// accuracy)` for that batch.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward errors.
    pub fn train_batch(
        &mut self,
        network: &mut SpikingNetwork,
        batch: &Batch,
    ) -> Result<(f32, f32)> {
        let targets = reduce::one_hot(&batch.labels, self.classes)?;
        network.zero_grads();
        let rates = network.forward(&batch.input, Mode::Train)?;
        let loss_value = self.loss.forward(&rates, &targets)?;
        let grad = self.loss.backward(&rates, &targets)?;
        network.backward(&grad)?;
        self.optimizer.step(network.params_mut());
        let accuracy = metrics::accuracy(&rates, &batch.labels)?;
        Ok((loss_value, accuracy))
    }

    /// Runs one pass over all batches, updating parameters after each batch.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidInput`] for an empty batch list and
    /// propagates training errors.
    pub fn train_epoch(
        &mut self,
        network: &mut SpikingNetwork,
        batches: &[Batch],
    ) -> Result<EpochReport> {
        if batches.is_empty() {
            return Err(SnnError::invalid_input(
                "no batches to train on".to_string(),
            ));
        }
        let mut total_loss = 0.0f64;
        let mut total_correct = 0.0f64;
        let mut total_samples = 0usize;
        for batch in batches {
            let (loss, acc) = self.train_batch(network, batch)?;
            total_loss += loss as f64;
            total_correct += acc as f64 * batch.len() as f64;
            total_samples += batch.len();
        }
        Ok(EpochReport {
            loss: (total_loss / batches.len() as f64) as f32,
            accuracy: (total_correct / total_samples as f64) as f32,
        })
    }

    /// Evaluates classification accuracy without updating parameters.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn evaluate(&self, network: &mut SpikingNetwork, batches: &[Batch]) -> Result<f32> {
        evaluate(network, batches)
    }
}

/// Evaluates classification accuracy of a network over batches (evaluation
/// mode, no parameter updates).
///
/// # Errors
///
/// Returns [`SnnError::InvalidInput`] for an empty batch list and propagates
/// forward-pass errors.
pub fn evaluate(network: &mut SpikingNetwork, batches: &[Batch]) -> Result<f32> {
    if batches.is_empty() {
        return Err(SnnError::invalid_input(
            "no batches to evaluate".to_string(),
        ));
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in batches {
        let predictions = network.predict(&batch.input)?;
        correct += predictions
            .iter()
            .zip(&batch.labels)
            .filter(|(p, l)| p == l)
            .count();
        total += batch.len();
    }
    Ok(correct as f32 / total as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchitectureConfig;
    use crate::loss::MseRateLoss;
    use crate::optim::Adam;
    use falvolt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batches(config: &ArchitectureConfig, n: usize, seed: u64) -> Vec<Batch> {
        // Two well-separated classes: class 0 = bright top half, class 1 =
        // bright bottom half.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batches = Vec::new();
        let half = config.input_size / 2;
        for _ in 0..n {
            let mut input = init::uniform(
                &[
                    2,
                    config.input_channels,
                    config.input_size,
                    config.input_size,
                ],
                0.0,
                0.1,
                &mut rng,
            );
            for x in 0..config.input_size {
                for y in 0..half {
                    input.set(&[0, 0, y, x], 1.0);
                    input.set(&[1, 0, y + half, x], 1.0);
                }
            }
            batches.push(Batch::new(input, vec![0, 1]).unwrap());
        }
        batches
    }

    #[test]
    fn batch_validates_label_count() {
        assert!(Batch::new(Tensor::zeros(&[2, 4]), vec![0]).is_err());
        assert!(Batch::new(Tensor::scalar(0.0), vec![]).is_err());
        let b = Batch::new(Tensor::zeros(&[2, 4]), vec![0, 1]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn training_reduces_loss_on_separable_toy_data() {
        let config = ArchitectureConfig::tiny_test();
        let mut network = config.build(11).unwrap();
        let mut trainer = Trainer::new(Adam::new(5e-3), MseRateLoss::new(), config.classes);
        let batches = toy_batches(&config, 4, 3);
        let first = trainer.train_epoch(&mut network, &batches).unwrap();
        let mut last = first;
        for _ in 0..8 {
            last = trainer.train_epoch(&mut network, &batches).unwrap();
        }
        assert!(
            last.loss < first.loss,
            "loss should decrease: first {} last {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy >= first.accuracy);
    }

    #[test]
    fn evaluate_matches_trainer_evaluate() {
        let config = ArchitectureConfig::tiny_test();
        let mut network = config.build(7).unwrap();
        let trainer = Trainer::new(Adam::new(1e-3), MseRateLoss::new(), config.classes);
        let batches = toy_batches(&config, 2, 9);
        let a = trainer.evaluate(&mut network, &batches).unwrap();
        let b = evaluate(&mut network, &batches).unwrap();
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let config = ArchitectureConfig::tiny_test();
        let mut network = config.build(7).unwrap();
        let mut trainer = Trainer::new(Adam::new(1e-3), MseRateLoss::new(), config.classes);
        assert!(trainer.train_epoch(&mut network, &[]).is_err());
        assert!(evaluate(&mut network, &[]).is_err());
        assert_eq!(trainer.classes(), config.classes);
        trainer.optimizer_mut().set_learning_rate(1e-4);
    }
}
