//! # falvolt-snn
//!
//! A from-scratch spiking-neural-network (SNN) library implementing the
//! training machinery the FalVolt paper relies on:
//!
//! * leaky integrate-and-fire (LIF) and *parametric* LIF (PLIF) neurons with
//!   learnable membrane time constants ([`neuron`]),
//! * the triangular surrogate gradient of the paper's Eq. (2)
//!   ([`surrogate`]),
//! * spiking layers with a **per-layer learnable threshold voltage** and the
//!   threshold gradient of Eq. (4) — the core mechanism behind FalVolt
//!   ([`layers::spiking`]),
//! * convolutional / batch-norm / pooling / dropout / fully-connected layers
//!   with full backpropagation-through-time ([`layers`]),
//! * a [`SpikingNetwork`] container driving multi-time-step forward and BPTT
//!   backward passes ([`network`]),
//! * rate-coded MSE loss ([`loss`]), SGD / Adam optimizers ([`optim`]), a
//!   [`Trainer`](trainer::Trainer) ([`trainer`]), metrics ([`metrics`]) and input encoders
//!   ([`encoding`]),
//! * the paper's network architectures, scaled for CPU-only experimentation
//!   ([`config`]).
//!
//! The matrix products of convolutional and fully connected layers go through
//! a pluggable [`MatmulBackend`]; the `falvolt` core crate installs the
//! systolic-array executor there to run *faulty* inference without this crate
//! depending on the hardware simulator.
//!
//! # Example
//!
//! ```
//! use falvolt_snn::config::ArchitectureConfig;
//! use falvolt_snn::{Mode, Tensor};
//!
//! # fn main() -> Result<(), falvolt_snn::SnnError> {
//! let config = ArchitectureConfig::tiny_test();
//! let mut network = config.build(7)?;
//! let input = Tensor::zeros(&[2, config.input_channels, config.input_size, config.input_size]);
//! let rates = network.forward(&input, Mode::Eval)?;
//! assert_eq!(rates.shape(), &[2, config.classes]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod backend;
pub mod config;
pub mod encoding;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod neuron;
pub mod optim;
pub mod param;
pub mod surrogate;
pub mod sweep_cache;
pub mod trainer;

pub use backend::{FloatBackend, MatmulBackend, MatmulOutput, MatmulRequest};
pub use error::SnnError;
pub use layers::{ForwardContext, Layer, Mode};
pub use network::{EnginePreset, SpikingNetwork};
pub use param::Param;
pub use sweep_cache::{SweepCache, SweepDecision};

// Re-export the tensor type (every public API in this crate speaks `Tensor`)
// and the operand-structure hint the backend trait takes.
pub use falvolt_tensor::{MatmulHint, Tensor};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SnnError>;
