//! Spiking-neuron models and their configuration.
//!
//! The paper trains PLIF-based SNNs (parametric leaky integrate-and-fire,
//! Fang et al., ICCV 2021): the membrane decay is a learnable parameter, which
//! makes the network less sensitive to initial values and speeds up learning.
//! The classic LIF neuron with a fixed time constant is also provided, both
//! for comparison and for the ablation benches.

use crate::surrogate::Surrogate;
use serde::{Deserialize, Serialize};

/// Which neuron dynamics a spiking layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeuronModel {
    /// Leaky integrate-and-fire with a fixed membrane time constant `tau`.
    Lif {
        /// Membrane time constant (in time steps); the decay factor is
        /// `1/tau`.
        tau: f32,
    },
    /// Parametric LIF: the decay factor is `sigmoid(w)` with `w` learnable;
    /// `init_tau` sets the initial value so that `sigmoid(w) = 1/init_tau`.
    Plif {
        /// Initial membrane time constant.
        init_tau: f32,
    },
}

impl NeuronModel {
    /// The paper's default neuron: PLIF initialised at `tau = 2`.
    pub fn paper_default() -> Self {
        NeuronModel::Plif { init_tau: 2.0 }
    }

    /// Returns the initial value of the internal decay parameter `w` such
    /// that `sigmoid(w) = 1 / tau`.
    pub fn initial_decay_logit(&self) -> f32 {
        let tau = match *self {
            NeuronModel::Lif { tau } => tau,
            NeuronModel::Plif { init_tau } => init_tau,
        };
        let alpha = (1.0 / tau).clamp(1e-4, 1.0 - 1e-4);
        (alpha / (1.0 - alpha)).ln()
    }

    /// Whether the decay parameter is trainable.
    pub fn learns_decay(&self) -> bool {
        matches!(self, NeuronModel::Plif { .. })
    }
}

impl Default for NeuronModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full configuration of a layer of spiking neurons.
///
/// # Example
///
/// ```
/// use falvolt_snn::neuron::{NeuronConfig, NeuronModel};
///
/// let config = NeuronConfig::paper_default();
/// assert_eq!(config.v_threshold, 1.0);
/// assert_eq!(config.v_reset, 0.0);
/// assert!(matches!(config.model, NeuronModel::Plif { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuronConfig {
    /// Neuron dynamics.
    pub model: NeuronModel,
    /// Threshold voltage `V` the membrane potential must exceed to fire.
    /// Initial training uses `1.0`; FalVolt learns a per-layer value during
    /// fault-aware retraining.
    pub v_threshold: f32,
    /// Resting / reset potential.
    pub v_reset: f32,
    /// Surrogate gradient used during backpropagation.
    pub surrogate: Surrogate,
    /// Whether the threshold voltage is a trainable parameter (FalVolt) or a
    /// fixed constant (initial training, FaP, FaPIT).
    pub learn_threshold: bool,
}

impl NeuronConfig {
    /// The configuration used for initial (fault-free) training in the paper:
    /// PLIF dynamics, threshold `1.0`, hard reset to `0.0`, triangular
    /// surrogate, threshold *not* trainable.
    pub fn paper_default() -> Self {
        Self {
            model: NeuronModel::paper_default(),
            v_threshold: 1.0,
            v_reset: 0.0,
            surrogate: Surrogate::paper_default(),
            learn_threshold: false,
        }
    }

    /// Same as [`NeuronConfig::paper_default`] but with the threshold voltage
    /// trainable — the retraining configuration FalVolt uses.
    pub fn falvolt_retraining() -> Self {
        Self {
            learn_threshold: true,
            ..Self::paper_default()
        }
    }

    /// Builder-style override of the threshold voltage.
    pub fn with_threshold(mut self, v_threshold: f32) -> Self {
        self.v_threshold = v_threshold;
        self
    }

    /// Builder-style override of the neuron model.
    pub fn with_model(mut self, model: NeuronModel) -> Self {
        self.model = model;
        self
    }

    /// Builder-style override of threshold trainability.
    pub fn with_learn_threshold(mut self, learn: bool) -> Self {
        self.learn_threshold = learn;
        self
    }
}

impl Default for NeuronConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::sigmoid;

    #[test]
    fn paper_default_matches_reference_implementation() {
        let c = NeuronConfig::paper_default();
        assert_eq!(c.v_threshold, 1.0);
        assert_eq!(c.v_reset, 0.0);
        assert!(!c.learn_threshold);
        assert!(c.model.learns_decay());
        assert_eq!(c, NeuronConfig::default());
    }

    #[test]
    fn falvolt_config_unlocks_threshold() {
        let c = NeuronConfig::falvolt_retraining();
        assert!(c.learn_threshold);
        assert_eq!(c.v_threshold, 1.0);
    }

    #[test]
    fn decay_logit_inverts_sigmoid() {
        for tau in [1.5f32, 2.0, 4.0, 10.0] {
            let model = NeuronModel::Plif { init_tau: tau };
            let w = model.initial_decay_logit();
            assert!((sigmoid(w) - 1.0 / tau).abs() < 1e-4, "tau {tau}");
        }
        let lif = NeuronModel::Lif { tau: 2.0 };
        assert!((sigmoid(lif.initial_decay_logit()) - 0.5).abs() < 1e-5);
        assert!(!lif.learns_decay());
    }

    #[test]
    fn builder_overrides() {
        let c = NeuronConfig::paper_default()
            .with_threshold(0.55)
            .with_model(NeuronModel::Lif { tau: 3.0 })
            .with_learn_threshold(true);
        assert_eq!(c.v_threshold, 0.55);
        assert!(c.learn_threshold);
        assert!(!c.model.learns_decay());
    }

    #[test]
    fn extreme_tau_is_clamped_to_finite_logit() {
        let model = NeuronModel::Plif { init_tau: 1.0 };
        assert!(model.initial_decay_logit().is_finite());
        let model = NeuronModel::Plif { init_tau: 1.0e9 };
        assert!(model.initial_decay_logit().is_finite());
    }
}
