//! Surrogate gradients for the non-differentiable spike function.
//!
//! The spike output `o = Heaviside(z)` (with `z = v / V - 1` the normalized
//! distance of the membrane potential from the threshold voltage) has a zero
//! gradient almost everywhere. During error backpropagation it is replaced by
//! a smooth surrogate; the paper uses the triangular surrogate of Eq. (2):
//! `∂o/∂z ≈ γ · max(0, 1 − |z|)`.

use serde::{Deserialize, Serialize};

/// Surrogate-gradient family used when backpropagating through the spike
/// non-linearity.
///
/// The paper's Eq. (2) describes the triangular window
/// `γ · max(0, 1 − |z|)` ([`Surrogate::Triangular`]). Its compact support
/// means neurons whose membrane sits far from the threshold (fully silent or
/// fully saturated) receive exactly zero gradient, which stalls training of
/// the small CPU-scale networks this reproduction uses. The PLIF reference
/// implementation the paper builds on (Fang et al., spikingjelly) defaults to
/// an arctangent surrogate with unbounded support, so [`Surrogate::Atan`] is
/// the default here; the triangular form remains available and is exercised
/// by the ablation benches.
///
/// # Example
///
/// ```
/// use falvolt_snn::surrogate::Surrogate;
///
/// let s = Surrogate::paper_eq2();         // triangular, γ = 1 (paper Eq. 2)
/// assert_eq!(s.grad(0.0), 1.0);           // maximal exactly at threshold
/// assert_eq!(s.grad(2.0), 0.0);           // zero far from threshold
///
/// let d = Surrogate::default();           // ATan (reference-implementation default)
/// assert!(d.grad(2.0) > 0.0);             // non-zero gradient everywhere
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Surrogate {
    /// The paper's triangular window `γ · max(0, 1 − |z|)`.
    Triangular {
        /// Peak value `γ` of the surrogate.
        gamma: f32,
    },
    /// Derivative of a scaled arctangent:
    /// `α / (2 (1 + (π α z / 2)²))` — the spikingjelly/PLIF default.
    Atan {
        /// Sharpness `α` of the arctangent.
        alpha: f32,
    },
    /// A rectangular window: `1/(2·width)` for `|z| < width`, else `0`.
    Rectangular {
        /// Half-width of the window.
        width: f32,
    },
    /// Derivative of a scaled sigmoid: `α·σ(αz)·(1−σ(αz))`.
    FastSigmoid {
        /// Sharpness `α` of the sigmoid.
        alpha: f32,
    },
}

impl Surrogate {
    /// The surrogate used by default in this reproduction: ATan with
    /// `α = 2`, matching the PLIF reference implementation.
    pub fn paper_default() -> Self {
        Surrogate::Atan { alpha: 2.0 }
    }

    /// The paper's Eq. (2): triangular with `γ = 1`.
    pub fn paper_eq2() -> Self {
        Surrogate::Triangular { gamma: 1.0 }
    }

    /// Evaluates the surrogate gradient `∂o/∂z` at `z`.
    pub fn grad(&self, z: f32) -> f32 {
        match *self {
            Surrogate::Triangular { gamma } => gamma * (1.0 - z.abs()).max(0.0),
            Surrogate::Atan { alpha } => {
                let s = std::f32::consts::FRAC_PI_2 * alpha * z;
                alpha / (2.0 * (1.0 + s * s))
            }
            Surrogate::Rectangular { width } => {
                if z.abs() < width {
                    1.0 / (2.0 * width)
                } else {
                    0.0
                }
            }
            Surrogate::FastSigmoid { alpha } => {
                let s = 1.0 / (1.0 + (-alpha * z).exp());
                alpha * s * (1.0 - s)
            }
        }
    }
}

impl Default for Surrogate {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The Heaviside step: `1.0` for `z > 0`, else `0.0` — the actual spike
/// function used in the forward pass (Eq. 1 of the paper).
pub fn heaviside(z: f32) -> f32 {
    if z > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid, used by the PLIF neuron to keep the learnable membrane
/// decay in `(0, 1)`.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heaviside_matches_paper_eq1() {
        assert_eq!(heaviside(0.5), 1.0);
        assert_eq!(heaviside(0.0), 0.0);
        assert_eq!(heaviside(-0.1), 0.0);
    }

    #[test]
    fn triangular_is_peaked_at_threshold_and_compactly_supported() {
        let s = Surrogate::Triangular { gamma: 2.0 };
        assert_eq!(s.grad(0.0), 2.0);
        assert_eq!(s.grad(0.5), 1.0);
        assert_eq!(s.grad(-0.5), 1.0);
        assert_eq!(s.grad(1.0), 0.0);
        assert_eq!(s.grad(-3.0), 0.0);
    }

    #[test]
    fn rectangular_window() {
        let s = Surrogate::Rectangular { width: 0.5 };
        assert_eq!(s.grad(0.0), 1.0);
        assert_eq!(s.grad(0.49), 1.0);
        assert_eq!(s.grad(0.51), 0.0);
    }

    #[test]
    fn fast_sigmoid_is_symmetric_and_positive() {
        let s = Surrogate::FastSigmoid { alpha: 4.0 };
        assert!((s.grad(0.3) - s.grad(-0.3)).abs() < 1e-6);
        assert!(s.grad(0.0) > s.grad(1.0));
        assert!(s.grad(2.0) > 0.0);
    }

    #[test]
    fn atan_has_unbounded_support_and_peaks_at_threshold() {
        let s = Surrogate::Atan { alpha: 2.0 };
        assert!((s.grad(0.0) - 1.0).abs() < 1e-6);
        assert!((s.grad(0.4) - s.grad(-0.4)).abs() < 1e-6);
        assert!(s.grad(0.0) > s.grad(1.0));
        assert!(s.grad(-1.0) > 0.05, "silent neurons still receive gradient");
        assert!(
            s.grad(5.0) > 0.0,
            "saturated neurons still receive gradient"
        );
    }

    #[test]
    fn default_is_reference_implementation_atan() {
        assert_eq!(Surrogate::default(), Surrogate::Atan { alpha: 2.0 });
        assert_eq!(Surrogate::default(), Surrogate::paper_default());
        assert_eq!(Surrogate::paper_eq2(), Surrogate::Triangular { gamma: 1.0 });
    }

    #[test]
    fn sigmoid_basic_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
