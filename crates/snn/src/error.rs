//! Error type for the SNN library.

use falvolt_tensor::TensorError;
use std::fmt;

/// Error returned by SNN construction, forward or backward passes.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnError {
    /// An underlying tensor operation failed (usually a shape mismatch).
    Tensor(TensorError),
    /// A layer or network was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// `backward` was called without a matching `forward` (or after the
    /// cached state was consumed).
    MissingForwardState {
        /// The layer reporting the problem.
        layer: String,
    },
    /// The network received an input of unexpected rank/shape.
    InvalidInput {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl SnnError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SnnError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for input errors.
    pub fn invalid_input(reason: impl Into<String>) -> Self {
        SnnError::InvalidInput {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            SnnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SnnError::MissingForwardState { layer } => {
                write!(
                    f,
                    "backward called on layer '{layer}' without cached forward state"
                )
            }
            SnnError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for SnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SnnError {
    fn from(e: TensorError) -> Self {
        SnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SnnError::invalid_config("negative learning rate");
        assert!(e.to_string().contains("negative learning rate"));
        let e: SnnError = TensorError::RankMismatch {
            expected: 4,
            actual: 2,
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
        let e = SnnError::MissingForwardState {
            layer: "conv1".into(),
        };
        assert!(e.to_string().contains("conv1"));
        assert!(SnnError::invalid_input("bad rank")
            .to_string()
            .contains("bad rank"));
    }
}
