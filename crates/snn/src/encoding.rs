//! Input encoders turning analog values into spike trains.
//!
//! The paper's architectures use *direct encoding*: the static image is fed
//! identically at every time step and the first convolution + spiking layer
//! learn the encoding (following Lee et al. and the PLIF reference
//! implementation). Poisson rate coding is provided as an alternative for
//! ablations and tests.

use crate::{Result, SnnError};
use falvolt_tensor::Tensor;
use rand::Rng;

/// Repeats a static input `[N, ...]` across `time_steps`, producing
/// `[N, T, ...]`.
///
/// # Errors
///
/// Returns an error when `time_steps == 0` or the input has no batch axis.
///
/// # Example
///
/// ```
/// use falvolt_snn::encoding::repeat_encode;
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let image = Tensor::ones(&[2, 1, 4, 4]);
/// let train = repeat_encode(&image, 3)?;
/// assert_eq!(train.shape(), &[2, 3, 1, 4, 4]);
/// # Ok(())
/// # }
/// ```
pub fn repeat_encode(input: &Tensor, time_steps: usize) -> Result<Tensor> {
    if time_steps == 0 {
        return Err(SnnError::invalid_input(
            "time_steps must be non-zero".to_string(),
        ));
    }
    if input.ndim() == 0 {
        return Err(SnnError::invalid_input(
            "input needs a batch axis".to_string(),
        ));
    }
    let n = input.shape()[0];
    let inner: usize = input.shape()[1..].iter().product();
    let mut out_shape = vec![n, time_steps];
    out_shape.extend_from_slice(&input.shape()[1..]);
    let mut out = Tensor::zeros(&out_shape);
    let src = input.data();
    let dst = out.data_mut();
    for b in 0..n {
        for t in 0..time_steps {
            let dst_base = (b * time_steps + t) * inner;
            dst[dst_base..dst_base + inner].copy_from_slice(&src[b * inner..(b + 1) * inner]);
        }
    }
    Ok(out)
}

/// Poisson (Bernoulli-per-step) rate coding: each input intensity in `[0, 1]`
/// becomes an independent spike with that probability at every time step.
///
/// # Errors
///
/// Returns an error when `time_steps == 0` or the input has no batch axis.
pub fn poisson_encode(input: &Tensor, time_steps: usize, rng: &mut impl Rng) -> Result<Tensor> {
    if time_steps == 0 {
        return Err(SnnError::invalid_input(
            "time_steps must be non-zero".to_string(),
        ));
    }
    if input.ndim() == 0 {
        return Err(SnnError::invalid_input(
            "input needs a batch axis".to_string(),
        ));
    }
    let n = input.shape()[0];
    let inner: usize = input.shape()[1..].iter().product();
    let mut out_shape = vec![n, time_steps];
    out_shape.extend_from_slice(&input.shape()[1..]);
    let mut out = Tensor::zeros(&out_shape);
    let src = input.data();
    let dst = out.data_mut();
    for b in 0..n {
        for t in 0..time_steps {
            let dst_base = (b * time_steps + t) * inner;
            for i in 0..inner {
                let p = src[b * inner + i].clamp(0.0, 1.0);
                dst[dst_base + i] = if rng.gen::<f32>() < p { 1.0 } else { 0.0 };
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repeat_encode_copies_every_frame() {
        let x = Tensor::from_fn(&[2, 3], |i| i as f32);
        let t = repeat_encode(&x, 4).unwrap();
        assert_eq!(t.shape(), &[2, 4, 3]);
        for b in 0..2 {
            for step in 0..4 {
                for f in 0..3 {
                    assert_eq!(t.get(&[b, step, f]), x.get(&[b, f]));
                }
            }
        }
        assert!(repeat_encode(&x, 0).is_err());
        assert!(repeat_encode(&Tensor::scalar(1.0), 2).is_err());
    }

    #[test]
    fn poisson_encode_rate_tracks_intensity() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_vec(vec![1, 2], vec![0.1, 0.9]).unwrap();
        let spikes = poisson_encode(&x, 2000, &mut rng).unwrap();
        assert_eq!(spikes.shape(), &[1, 2000, 2]);
        let mut counts = [0.0f32; 2];
        for t in 0..2000 {
            counts[0] += spikes.get(&[0, t, 0]);
            counts[1] += spikes.get(&[0, t, 1]);
        }
        assert!((counts[0] / 2000.0 - 0.1).abs() < 0.03);
        assert!((counts[1] / 2000.0 - 0.9).abs() < 0.03);
        assert!(spikes.data().iter().all(|&s| s == 0.0 || s == 1.0));
    }

    #[test]
    fn poisson_encode_validates_arguments() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::ones(&[1, 2]);
        assert!(poisson_encode(&x, 0, &mut rng).is_err());
        assert!(poisson_encode(&Tensor::scalar(0.5), 2, &mut rng).is_err());
    }
}
