//! Pluggable matrix-multiplication backend.
//!
//! Convolutional (after im2col lowering) and fully connected layers perform
//! all of their arithmetic through a [`MatmulBackend`]. Training always uses
//! the plain floating-point [`FloatBackend`]; for fault-vulnerability
//! analysis the `falvolt` crate installs an adapter around the systolic-array
//! executor so that inference runs through the (possibly faulty) accelerator
//! model without this crate depending on it.

use falvolt_tensor::{ops, Fingerprint, MatmulHint, Tensor};
use std::fmt;
use std::sync::Arc;

/// One matrix-product request: the operands plus everything the caller knows
/// about them.
///
/// Layers build a request per product and hand it to
/// [`MatmulBackend::matmul_request`] — the trait's single required entry
/// point. Both knowledge channels are optimisation hints, never correctness
/// requirements: a backend that ignores them must still produce the same
/// bits.
///
/// * [`MatmulRequest::with_hint`] carries the operand-structure hint (binary
///   spikes, forced-dense for the engine-off baseline) so backends can pick
///   specialised kernels.
/// * [`MatmulRequest::scenario_shared`] marks a product whose operands are
///   **scenario invariant**: in a sweep, every worker will issue this exact
///   product (same operand contents) against its own fault scenario, so
///   sweep-batched backends may evaluate all scenarios in one pass on the
///   first request.
///
/// # Example
///
/// ```
/// use falvolt_snn::{FloatBackend, MatmulBackend, MatmulRequest};
/// use falvolt_tensor::{MatmulHint, Tensor};
///
/// # fn main() -> Result<(), falvolt_tensor::TensorError> {
/// let backend = FloatBackend::new();
/// let a = Tensor::ones(&[2, 3]);
/// let b = Tensor::ones(&[3, 4]);
/// let request = MatmulRequest::new(&a, &b).with_hint(MatmulHint::Spikes);
/// let out = backend.matmul_request(request)?.into_tensor();
/// assert_eq!(out.get(&[0, 0]), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatmulRequest<'a> {
    a: &'a Tensor,
    b: &'a Tensor,
    hint: MatmulHint,
    scenario_shared: bool,
}

impl<'a> MatmulRequest<'a> {
    /// A plain `a @ b` request with no hint ([`MatmulHint::Auto`]) and no
    /// scenario-sharing claim.
    pub fn new(a: &'a Tensor, b: &'a Tensor) -> Self {
        Self {
            a,
            b,
            hint: MatmulHint::Auto,
            scenario_shared: false,
        }
    }

    /// Attaches an operand-structure hint for the left operand.
    pub fn with_hint(mut self, hint: MatmulHint) -> Self {
        self.hint = hint;
        self
    }

    /// Declares (or retracts) the scenario-invariance claim: every sweep
    /// worker will issue this exact product against its own fault scenario.
    pub fn scenario_shared(mut self, shared: bool) -> Self {
        self.scenario_shared = shared;
        self
    }

    /// The left operand.
    pub fn a(&self) -> &'a Tensor {
        self.a
    }

    /// The right operand.
    pub fn b(&self) -> &'a Tensor {
        self.b
    }

    /// The operand-structure hint.
    pub fn hint(&self) -> MatmulHint {
        self.hint
    }

    /// Whether the caller certified the operands scenario-invariant.
    pub fn is_scenario_shared(&self) -> bool {
        self.scenario_shared
    }
}

/// The result of one [`MatmulRequest`]: the product tensor.
///
/// A dedicated wrapper (rather than a bare [`Tensor`]) keeps the single-entry
/// contract extensible — backends can grow result metadata without another
/// trait method.
#[derive(Debug, Clone)]
pub struct MatmulOutput {
    output: Tensor,
}

impl MatmulOutput {
    /// Wraps a computed product.
    pub fn new(output: Tensor) -> Self {
        Self { output }
    }

    /// Borrows the product tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.output
    }

    /// Unwraps the product tensor.
    pub fn into_tensor(self) -> Tensor {
        self.output
    }
}

impl From<Tensor> for MatmulOutput {
    fn from(output: Tensor) -> Self {
        Self::new(output)
    }
}

/// Abstraction over "how matrix products are executed".
///
/// Implementations must be deterministic for a fixed input (the fault model
/// is a deterministic corruption, not a stochastic one), and define exactly
/// one required method: [`MatmulBackend::matmul_request`]. The historical
/// `matmul` / `matmul_hinted` / `matmul_scenario_shared` entry points are
/// provided conveniences that build a [`MatmulRequest`] and delegate, so call
/// sites stay terse while backends implement a single entry.
pub trait MatmulBackend: fmt::Debug + Send + Sync {
    /// Computes `req.a() @ req.b()` for rank-2 tensors — the single required
    /// entry point. The request's hint and scenario-sharing claim are
    /// optimisation channels; ignoring them is always correct.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul_request(&self, req: MatmulRequest<'_>) -> falvolt_tensor::Result<MatmulOutput>;

    /// Convenience: computes `a @ b` with no hint.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> falvolt_tensor::Result<Tensor> {
        Ok(self.matmul_request(MatmulRequest::new(a, b))?.into_tensor())
    }

    /// Convenience: computes `a @ b` with an operand-structure hint for the
    /// left operand.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul_hinted(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        Ok(self
            .matmul_request(MatmulRequest::new(a, b).with_hint(hint))?
            .into_tensor())
    }

    /// Convenience: computes `a @ b` for a product the caller knows is
    /// scenario invariant (see [`MatmulRequest::scenario_shared`]).
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul_scenario_shared(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        Ok(self
            .matmul_request(
                MatmulRequest::new(a, b)
                    .with_hint(hint)
                    .scenario_shared(true),
            )?
            .into_tensor())
    }

    /// Human-readable backend name for diagnostics.
    fn name(&self) -> &str {
        "backend"
    }

    /// Content fingerprint of everything that makes this backend's products
    /// differ from another backend's — the cross-call prefix cache keys
    /// cached outputs on it. The default hashes the backend name, which is
    /// correct for stateless backends like [`FloatBackend`]; backends with
    /// result-changing configuration (the systolic model's array geometry,
    /// fault map and bypass policy) must fold that state in too.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(self.name());
        fp.finish() as u64
    }
}

/// The default floating-point backend (exact `f32` accumulation).
///
/// Products execute on the shared blocked-parallel kernel layer
/// ([`falvolt_tensor::kernels`], via [`ops::matmul`]), the same layer the
/// systolic executor uses for its clean folds.
///
/// # Example
///
/// ```
/// use falvolt_snn::{FloatBackend, MatmulBackend};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_tensor::TensorError> {
/// let backend = FloatBackend::new();
/// let a = Tensor::ones(&[2, 3]);
/// let b = Tensor::ones(&[3, 4]);
/// assert_eq!(backend.matmul(&a, &b)?.get(&[0, 0]), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FloatBackend;

impl FloatBackend {
    /// Creates the floating-point backend.
    pub fn new() -> Self {
        Self
    }

    /// Convenience constructor returning the backend behind an [`Arc`], the
    /// form the network container stores.
    pub fn shared() -> Arc<dyn MatmulBackend> {
        Arc::new(Self)
    }
}

impl MatmulBackend for FloatBackend {
    fn matmul_request(&self, req: MatmulRequest<'_>) -> falvolt_tensor::Result<MatmulOutput> {
        ops::matmul_hinted(req.a(), req.b(), req.hint()).map(MatmulOutput::new)
    }

    fn name(&self) -> &str {
        "float"
    }
}

impl<B: MatmulBackend + ?Sized> MatmulBackend for Arc<B> {
    fn matmul_request(&self, req: MatmulRequest<'_>) -> falvolt_tensor::Result<MatmulOutput> {
        (**self).matmul_request(req)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_backend_matches_ops_matmul() {
        let backend = FloatBackend::new();
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let via_backend = backend.matmul(&a, &b).unwrap();
        let via_ops = ops::matmul(&a, &b).unwrap();
        assert_eq!(via_backend, via_ops);
        assert_eq!(backend.name(), "float");
    }

    #[test]
    fn arc_backend_delegates() {
        let backend: Arc<dyn MatmulBackend> = FloatBackend::shared();
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::ones(&[2, 1]);
        assert_eq!(backend.matmul(&a, &b).unwrap().get(&[0, 0]), 2.0);
        assert_eq!(backend.name(), "float");
    }

    #[test]
    fn errors_propagate() {
        let backend = FloatBackend::new();
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 1]);
        assert!(backend.matmul(&a, &b).is_err());
    }

    #[test]
    fn convenience_methods_route_through_the_single_entry() {
        /// A backend that only implements the required entry point and
        /// records what each request claimed.
        #[derive(Debug, Default)]
        struct Probe {
            seen: std::sync::Mutex<Vec<(MatmulHint, bool)>>,
        }
        impl MatmulBackend for Probe {
            fn matmul_request(
                &self,
                req: MatmulRequest<'_>,
            ) -> falvolt_tensor::Result<MatmulOutput> {
                self.seen
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((req.hint(), req.is_scenario_shared()));
                ops::matmul(req.a(), req.b()).map(MatmulOutput::new)
            }
        }
        let probe = Probe::default();
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::ones(&[2, 1]);
        assert_eq!(probe.matmul(&a, &b).unwrap().get(&[0, 0]), 2.0);
        probe.matmul_hinted(&a, &b, MatmulHint::Spikes).unwrap();
        probe
            .matmul_scenario_shared(&a, &b, MatmulHint::Dense)
            .unwrap();
        let seen = probe
            .seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        assert_eq!(
            seen,
            vec![
                (MatmulHint::Auto, false),
                (MatmulHint::Spikes, false),
                (MatmulHint::Dense, true),
            ]
        );
        assert_eq!(probe.name(), "backend");
    }

    #[test]
    fn request_builder_accessors_round_trip() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let req = MatmulRequest::new(&a, &b);
        assert_eq!(req.hint(), MatmulHint::Auto);
        assert!(!req.is_scenario_shared());
        let req = req.with_hint(MatmulHint::Spikes).scenario_shared(true);
        assert_eq!(req.hint(), MatmulHint::Spikes);
        assert!(req.is_scenario_shared());
        assert_eq!(req.a().shape(), &[2, 2]);
        assert_eq!(req.b().shape(), &[2, 2]);
        let out = MatmulOutput::from(Tensor::ones(&[1, 1]));
        assert_eq!(out.tensor().get(&[0, 0]), 1.0);
        assert_eq!(out.into_tensor().get(&[0, 0]), 1.0);
    }
}
