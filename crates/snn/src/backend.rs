//! Pluggable matrix-multiplication backend.
//!
//! Convolutional (after im2col lowering) and fully connected layers perform
//! all of their arithmetic through a [`MatmulBackend`]. Training always uses
//! the plain floating-point [`FloatBackend`]; for fault-vulnerability
//! analysis the `falvolt` crate installs an adapter around the systolic-array
//! executor so that inference runs through the (possibly faulty) accelerator
//! model without this crate depending on it.

use falvolt_tensor::{ops, Fingerprint, MatmulHint, Tensor};
use std::fmt;
use std::sync::Arc;

/// Abstraction over "how matrix products are executed".
///
/// Implementations must be deterministic for a fixed input (the fault model
/// is a deterministic corruption, not a stochastic one).
pub trait MatmulBackend: fmt::Debug + Send + Sync {
    /// Computes `a @ b` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> falvolt_tensor::Result<Tensor>;

    /// Computes `a @ b` with an operand-structure hint for the left operand.
    ///
    /// Layers pass what they know about their activations (binary spikes,
    /// forced-dense for the engine-off baseline) so backends can pick
    /// specialised kernels. The default implementation ignores the hint and
    /// delegates to [`MatmulBackend::matmul`], so the hint is purely an
    /// optimisation channel — never a correctness requirement.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul_hinted(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        let _ = hint;
        self.matmul(a, b)
    }

    /// Computes `a @ b` for a product the caller knows is **scenario
    /// invariant**: in a sweep, every worker will issue this exact product
    /// (same operand contents) against its own fault scenario. Sweep-batched
    /// backends use the claim to evaluate all scenarios in one pass on the
    /// first request instead of waiting for a second worker to prove
    /// sharing; the default simply delegates, so the claim is an
    /// optimisation channel — never a correctness requirement.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for rank or inner-dimension mismatches.
    fn matmul_scenario_shared(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        self.matmul_hinted(a, b, hint)
    }

    /// Human-readable backend name for diagnostics.
    fn name(&self) -> &str {
        "backend"
    }

    /// Content fingerprint of everything that makes this backend's products
    /// differ from another backend's — the cross-call prefix cache keys
    /// cached outputs on it. The default hashes the backend name, which is
    /// correct for stateless backends like [`FloatBackend`]; backends with
    /// result-changing configuration (the systolic model's array geometry,
    /// fault map and bypass policy) must fold that state in too.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(self.name());
        fp.finish() as u64
    }
}

/// The default floating-point backend (exact `f32` accumulation).
///
/// Products execute on the shared blocked-parallel kernel layer
/// ([`falvolt_tensor::kernels`], via [`ops::matmul`]), the same layer the
/// systolic executor uses for its clean folds.
///
/// # Example
///
/// ```
/// use falvolt_snn::{FloatBackend, MatmulBackend};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_tensor::TensorError> {
/// let backend = FloatBackend::new();
/// let a = Tensor::ones(&[2, 3]);
/// let b = Tensor::ones(&[3, 4]);
/// assert_eq!(backend.matmul(&a, &b)?.get(&[0, 0]), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FloatBackend;

impl FloatBackend {
    /// Creates the floating-point backend.
    pub fn new() -> Self {
        Self
    }

    /// Convenience constructor returning the backend behind an [`Arc`], the
    /// form the network container stores.
    pub fn shared() -> Arc<dyn MatmulBackend> {
        Arc::new(Self)
    }
}

impl MatmulBackend for FloatBackend {
    fn matmul(&self, a: &Tensor, b: &Tensor) -> falvolt_tensor::Result<Tensor> {
        ops::matmul(a, b)
    }

    fn matmul_hinted(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        ops::matmul_hinted(a, b, hint)
    }

    fn name(&self) -> &str {
        "float"
    }
}

impl<B: MatmulBackend + ?Sized> MatmulBackend for Arc<B> {
    fn matmul(&self, a: &Tensor, b: &Tensor) -> falvolt_tensor::Result<Tensor> {
        (**self).matmul(a, b)
    }

    fn matmul_hinted(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        (**self).matmul_hinted(a, b, hint)
    }

    fn matmul_scenario_shared(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        (**self).matmul_scenario_shared(a, b, hint)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_backend_matches_ops_matmul() {
        let backend = FloatBackend::new();
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let via_backend = backend.matmul(&a, &b).unwrap();
        let via_ops = ops::matmul(&a, &b).unwrap();
        assert_eq!(via_backend, via_ops);
        assert_eq!(backend.name(), "float");
    }

    #[test]
    fn arc_backend_delegates() {
        let backend: Arc<dyn MatmulBackend> = FloatBackend::shared();
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::ones(&[2, 1]);
        assert_eq!(backend.matmul(&a, &b).unwrap().get(&[0, 0]), 2.0);
        assert_eq!(backend.name(), "float");
    }

    #[test]
    fn errors_propagate() {
        let backend = FloatBackend::new();
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 1]);
        assert!(backend.matmul(&a, &b).is_err());
    }
}
