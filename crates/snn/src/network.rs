//! The multi-time-step spiking network container.

use crate::backend::{FloatBackend, MatmulBackend};
use crate::layers::{ForwardContext, Layer, Mode};
use crate::param::Param;
use crate::{Result, SnnError};
use falvolt_tensor::{reduce, Tensor};
use std::sync::Arc;

/// A feed-forward spiking neural network executed over `T` discrete time
/// steps.
///
/// * Static inputs (`[N, C, H, W]` or `[N, features]`) are presented
///   identically at every time step — the "direct encoding" the paper's
///   architectures use, where the first convolution acts as the spike
///   encoder.
/// * Neuromorphic inputs (`[N, T, C, H, W]`) provide one frame per time step.
///
/// The network output is the **firing rate** of the last (spiking) layer:
/// the per-class spike count divided by `T`. Classification takes the argmax
/// of the rates; the loss is computed on the rates as well.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{Flatten, Linear, SpikingLayer};
/// use falvolt_snn::neuron::NeuronConfig;
/// use falvolt_snn::{Mode, SpikingNetwork, Tensor};
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut network = SpikingNetwork::new(4);
/// network.push(Flatten::new("flatten"));
/// network.push(Linear::new("fc", 16, 3, 1)?);
/// network.push(SpikingLayer::new("sn", NeuronConfig::paper_default()));
/// let rates = network.forward(&Tensor::ones(&[2, 1, 4, 4]), Mode::Eval)?;
/// assert_eq!(rates.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
/// Cloning deep-copies every layer (weights, caches, temporal state) and
/// shares the backend `Arc`; experiment code clones trained networks into
/// worker threads to evaluate fault scenarios in parallel.
#[derive(Debug, Clone)]
pub struct SpikingNetwork {
    layers: Vec<Box<dyn Layer>>,
    time_steps: usize,
    backend: Arc<dyn MatmulBackend>,
}

impl SpikingNetwork {
    /// Creates an empty network executed over `time_steps` steps with the
    /// floating-point backend.
    ///
    /// # Panics
    ///
    /// Panics if `time_steps == 0`.
    pub fn new(time_steps: usize) -> Self {
        assert!(
            time_steps > 0,
            "a spiking network needs at least one time step"
        );
        Self {
            layers: Vec::new(),
            time_steps,
            backend: FloatBackend::shared(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of simulation time steps.
    pub fn time_steps(&self) -> usize {
        self.time_steps
    }

    /// Changes the number of simulation time steps.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for zero.
    pub fn set_time_steps(&mut self, time_steps: usize) -> Result<()> {
        if time_steps == 0 {
            return Err(SnnError::invalid_config("time_steps must be non-zero"));
        }
        self.time_steps = time_steps;
        Ok(())
    }

    /// The backend executing matrix products.
    pub fn backend(&self) -> &Arc<dyn MatmulBackend> {
        &self.backend
    }

    /// Installs a different matmul backend (e.g. the systolic-array model).
    pub fn set_backend(&mut self, backend: Arc<dyn MatmulBackend>) {
        self.backend = backend;
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// All trainable parameters of all layers.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Clears every parameter gradient.
    pub fn zero_grads(&mut self) {
        for param in self.params_mut() {
            param.zero_grad();
        }
    }

    /// Exports the values of all parameters (a "state dict"), in the same
    /// order [`SpikingNetwork::params_mut`] yields them.
    pub fn export_parameters(&mut self) -> Vec<Tensor> {
        self.params_mut()
            .iter()
            .map(|p| p.value().clone())
            .collect()
    }

    /// Imports parameter values previously produced by
    /// [`SpikingNetwork::export_parameters`] into a network with the same
    /// architecture, and resets all optimizer state.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when the number or shapes of the
    /// parameters do not match.
    pub fn import_parameters(&mut self, values: &[Tensor]) -> Result<()> {
        let mut params = self.params_mut();
        if params.len() != values.len() {
            return Err(SnnError::invalid_config(format!(
                "cannot import {} parameter tensors into a network with {} parameters",
                values.len(),
                params.len()
            )));
        }
        for (param, value) in params.iter_mut().zip(values) {
            if param.value().shape() != value.shape() {
                return Err(SnnError::invalid_config(format!(
                    "parameter '{}' has shape {:?} but the imported tensor has shape {:?}",
                    param.name(),
                    param.value().shape(),
                    value.shape()
                )));
            }
            *param.value_mut() = value.clone();
            param.zero_grad();
            param.reset_optimizer_state();
        }
        Ok(())
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// The prunable weight matrices (convolutional and fully connected
    /// layers), paired with their layer names, in network order.
    pub fn prunable_weights_mut(&mut self) -> Vec<(String, &mut Param)> {
        self.layers
            .iter_mut()
            .filter_map(|l| {
                let name = l.name().to_string();
                l.weight_mut().map(|w| (name, w))
            })
            .collect()
    }

    /// The threshold voltages of all spiking layers, paired with their layer
    /// names, in network order.
    pub fn thresholds(&self) -> Vec<(String, f32)> {
        self.layers
            .iter()
            .filter_map(|l| l.threshold().map(|v| (l.name().to_string(), v)))
            .collect()
    }

    /// The threshold parameters of all spiking layers.
    pub fn threshold_params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .filter_map(|l| l.threshold_mut())
            .collect()
    }

    /// Enables or disables threshold-voltage learning on every spiking layer
    /// (the switch between FaPIT and FalVolt retraining).
    pub fn set_thresholds_trainable(&mut self, trainable: bool) {
        for layer in &mut self.layers {
            layer.set_threshold_trainable(trainable);
        }
    }

    /// Overwrites the threshold voltage of every spiking layer with `v`
    /// (used by the fixed-threshold sweep of Figure 2).
    pub fn set_all_thresholds(&mut self, v: f32) {
        for layer in &mut self.layers {
            if let Some(param) = layer.threshold_mut() {
                param.value_mut().fill(v);
            }
        }
    }

    /// Resets the temporal state (membrane potentials, caches) of all layers.
    pub fn reset_state(&mut self) {
        for layer in &mut self.layers {
            layer.reset_state();
        }
    }

    /// Runs the network over all time steps and returns the firing-rate
    /// tensor `[N, classes]`.
    ///
    /// # Errors
    ///
    /// Returns an error for inputs of unsupported rank or for layer shape
    /// mismatches.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(SnnError::invalid_config("network has no layers"));
        }
        self.reset_state();
        let time_steps = self.time_steps;
        let backend = Arc::clone(&self.backend);
        let ctx = ForwardContext::new(mode, backend.as_ref());

        let mut rate_sum: Option<Tensor> = None;
        for t in 0..time_steps {
            let mut x = step_input(input, t, time_steps)?;
            for layer in &mut self.layers {
                x = layer.forward(&x, &ctx)?;
            }
            if x.ndim() != 2 {
                return Err(SnnError::invalid_config(format!(
                    "network output must be [N, classes], got shape {:?}",
                    x.shape()
                )));
            }
            match &mut rate_sum {
                Some(sum) => sum.add_assign(&x)?,
                None => rate_sum = Some(x),
            }
        }
        let mut rates = rate_sum.expect("time_steps > 0 guarantees at least one step");
        rates.scale_inplace(1.0 / time_steps as f32);
        Ok(rates)
    }

    /// Backpropagates a gradient with respect to the firing rates through all
    /// time steps (BPTT). Must follow a `forward` call in [`Mode::Train`].
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::MissingForwardState`] when no training forward
    /// pass preceded this call.
    pub fn backward(&mut self, grad_rates: &Tensor) -> Result<()> {
        let per_step = grad_rates.mul_scalar(1.0 / self.time_steps as f32);
        for _ in 0..self.time_steps {
            let mut grad = per_step.clone();
            for layer in self.layers.iter_mut().rev() {
                grad = layer.backward(&grad)?;
            }
        }
        Ok(())
    }

    /// Convenience: forward pass in evaluation mode followed by per-sample
    /// argmax.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let rates = self.forward(input, Mode::Eval)?;
        Ok(reduce::argmax_rows(&rates)?)
    }
}

/// Extracts the input for time step `t`: temporal inputs (`[N, T, ...]`) are
/// sliced, static inputs are replicated.
fn step_input(input: &Tensor, t: usize, time_steps: usize) -> Result<Tensor> {
    match input.ndim() {
        2 | 4 => Ok(input.clone()),
        5 => {
            if input.shape()[1] != time_steps {
                return Err(SnnError::invalid_input(format!(
                    "temporal input has {} frames but the network runs {} time steps",
                    input.shape()[1],
                    time_steps
                )));
            }
            let (n, _t, c, h, w) = (
                input.shape()[0],
                input.shape()[1],
                input.shape()[2],
                input.shape()[3],
                input.shape()[4],
            );
            let mut frame = Tensor::zeros(&[n, c, h, w]);
            let chw = c * h * w;
            let src = input.data();
            let dst = frame.data_mut();
            for b in 0..n {
                let src_base = (b * time_steps + t) * chw;
                let dst_base = b * chw;
                dst[dst_base..dst_base + chw].copy_from_slice(&src[src_base..src_base + chw]);
            }
            Ok(frame)
        }
        other => Err(SnnError::invalid_input(format!(
            "unsupported input rank {other}: expected [N, F], [N, C, H, W] or [N, T, C, H, W]"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, SpikingLayer};
    use crate::neuron::NeuronConfig;

    fn tiny_network() -> SpikingNetwork {
        let mut network = SpikingNetwork::new(4);
        network.push(Flatten::new("flatten"));
        network.push(Linear::new("fc1", 8, 6, 1).unwrap());
        network.push(SpikingLayer::new("sn1", NeuronConfig::paper_default()));
        network.push(Linear::new("fc2", 6, 3, 2).unwrap());
        network.push(SpikingLayer::new("sn2", NeuronConfig::paper_default()));
        network
    }

    #[test]
    fn forward_produces_rates_in_unit_interval() {
        let mut network = tiny_network();
        let input = Tensor::from_fn(&[5, 1, 2, 4], |i| (i % 7) as f32 * 0.3);
        let rates = network.forward(&input, Mode::Eval).unwrap();
        assert_eq!(rates.shape(), &[5, 3]);
        assert!(rates.data().iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn temporal_input_is_sliced_per_time_step() {
        let mut network = tiny_network();
        let temporal = Tensor::from_fn(&[2, 4, 1, 2, 4], |i| (i % 5) as f32 * 0.4);
        let rates = network.forward(&temporal, Mode::Eval).unwrap();
        assert_eq!(rates.shape(), &[2, 3]);
        // Mismatched frame count is rejected.
        let wrong = Tensor::zeros(&[2, 3, 1, 2, 4]);
        assert!(network.forward(&wrong, Mode::Eval).is_err());
        // Unsupported rank is rejected.
        assert!(network
            .forward(&Tensor::zeros(&[2, 1, 2]), Mode::Eval)
            .is_err());
    }

    #[test]
    fn backward_requires_training_forward() {
        let mut network = tiny_network();
        let input = Tensor::ones(&[2, 1, 2, 4]);
        network.forward(&input, Mode::Eval).unwrap();
        assert!(network.backward(&Tensor::ones(&[2, 3])).is_err());
        network.forward(&input, Mode::Train).unwrap();
        assert!(network.backward(&Tensor::ones(&[2, 3])).is_ok());
    }

    #[test]
    fn training_pass_produces_nonzero_gradients() {
        let mut network = tiny_network();
        let input = Tensor::from_fn(&[3, 1, 2, 4], |i| (i % 3) as f32);
        network.zero_grads();
        network.forward(&input, Mode::Train).unwrap();
        network.backward(&Tensor::ones(&[3, 3])).unwrap();
        let grads_nonzero = network
            .params_mut()
            .iter()
            .any(|p| p.grad().data().iter().any(|&g| g != 0.0));
        assert!(
            grads_nonzero,
            "at least one parameter should receive gradient"
        );
        network.zero_grads();
        assert!(network
            .params_mut()
            .iter()
            .all(|p| p.grad().data().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn threshold_management_touches_only_spiking_layers() {
        let mut network = tiny_network();
        assert_eq!(network.thresholds().len(), 2);
        assert_eq!(network.threshold_params_mut().len(), 2);
        network.set_all_thresholds(0.55);
        assert!(network
            .thresholds()
            .iter()
            .all(|(_, v)| (*v - 0.55).abs() < 1e-6));
        network.set_thresholds_trainable(true);
        assert!(network
            .threshold_params_mut()
            .iter()
            .all(|p| p.is_trainable()));
        assert_eq!(network.prunable_weights_mut().len(), 2);
    }

    #[test]
    fn export_import_roundtrips_and_validates() {
        let mut a = tiny_network();
        let mut b = tiny_network();
        // Perturb `a` so the two networks differ.
        for p in a.params_mut() {
            p.value_mut().map_inplace(|v| v + 0.25);
        }
        let state = a.export_parameters();
        b.import_parameters(&state).unwrap();
        assert_eq!(a.export_parameters(), b.export_parameters());

        // Mismatched architectures are rejected.
        let mut small = SpikingNetwork::new(2);
        small.push(Flatten::new("flatten"));
        small.push(Linear::new("fc", 8, 3, 1).unwrap());
        assert!(small.import_parameters(&state).is_err());
        // Mismatched shapes are rejected.
        let mut wrong = state.clone();
        wrong[0] = Tensor::zeros(&[1]);
        assert!(b.import_parameters(&wrong).is_err());
    }

    #[test]
    fn predict_returns_one_label_per_sample() {
        let mut network = tiny_network();
        let input = Tensor::ones(&[4, 1, 2, 4]);
        let labels = network.predict(&input).unwrap();
        assert_eq!(labels.len(), 4);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn accessors_and_configuration() {
        let mut network = tiny_network();
        assert_eq!(network.len(), 5);
        assert!(!network.is_empty());
        assert_eq!(network.time_steps(), 4);
        assert!(network.set_time_steps(0).is_err());
        network.set_time_steps(2).unwrap();
        assert_eq!(network.time_steps(), 2);
        assert!(network.parameter_count() > 0);
        assert_eq!(network.backend().name(), "float");
        let empty = SpikingNetwork::new(1);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one time step")]
    fn zero_time_steps_panics() {
        let _ = SpikingNetwork::new(0);
    }

    #[test]
    fn forward_on_empty_network_errors() {
        let mut network = SpikingNetwork::new(2);
        assert!(network.forward(&Tensor::ones(&[1, 4]), Mode::Eval).is_err());
    }
}
