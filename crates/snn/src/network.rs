//! The multi-time-step spiking network container.

use crate::backend::{FloatBackend, MatmulBackend};
use crate::layers::{ForwardContext, Layer, Mode};
use crate::param::Param;
use crate::sweep_cache::SweepCache;
use crate::{Result, SnnError};
use falvolt_tensor::{reduce, Fingerprint, Tensor};
use std::borrow::Cow;
use std::sync::Arc;

/// One named execution-engine configuration, threaded uniformly through the
/// network container, the systolic backends and the campaign scheduler.
///
/// The preset replaces the former grab-bag of independent booleans
/// (`EngineConfig { prefix_cache, spike_kernels, csr_spikes }`,
/// `set_event_driven`, `SystolicExecutor::set_composed_mask_chains`) with one
/// builder-style value: pick a named preset, then override individual
/// switches with the `with_*` builders when an experiment needs a hybrid.
/// Every switch is an execution strategy, never result state — all presets
/// produce bit-identical outputs for the same inputs and fault maps.
///
/// # Example
///
/// ```
/// use falvolt_snn::EnginePreset;
///
/// // The PR 2 engine: event-driven kernels, but mask chains fully replayed.
/// let preset = EnginePreset::event_driven();
/// assert!(preset.spike_kernels() && !preset.composed_mask_chains());
/// // A hybrid for an ablation: full engine minus the prefix cache.
/// let ablation = EnginePreset::full().with_prefix_cache(false);
/// assert!(!ablation.prefix_cache() && ablation.scenario_batching());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnginePreset {
    prefix_cache: bool,
    spike_kernels: bool,
    csr_spikes: bool,
    composed_mask_chains: bool,
    scenario_batching: bool,
    simd_kernels: bool,
}

impl Default for EnginePreset {
    fn default() -> Self {
        Self::full()
    }
}

impl EnginePreset {
    /// Everything off: dense kernels, no caching, fully replayed mask
    /// chains, no sweep batching — the seed's behaviour, kept for baselines
    /// and equivalence tests.
    pub fn seed_equivalent() -> Self {
        Self {
            prefix_cache: false,
            spike_kernels: false,
            csr_spikes: false,
            composed_mask_chains: false,
            scenario_batching: false,
            // The lane engines are a property of the kernel layer, not of
            // the engine generation being reproduced: every preset keeps
            // them on (each lifted kernel's `Isa::Scalar` branch runs the
            // exact pre-SIMD code, so forcing scalar recovers old timings).
            simd_kernels: true,
        }
    }

    /// The event-driven single-network engine: temporal prefix cache,
    /// spike-sparsity kernels and CSR spike tensors on; the scenario-axis
    /// machinery (composed mask chains, multi-map batching) off.
    pub fn event_driven() -> Self {
        Self {
            prefix_cache: true,
            spike_kernels: true,
            csr_spikes: true,
            composed_mask_chains: false,
            scenario_batching: false,
            simd_kernels: true,
        }
    }

    /// Everything on (the default): the event-driven engine plus composed
    /// mask chains and multi-map scenario batching.
    pub fn full() -> Self {
        Self {
            prefix_cache: true,
            spike_kernels: true,
            csr_spikes: true,
            composed_mask_chains: true,
            scenario_batching: true,
            simd_kernels: true,
        }
    }

    /// Overrides the temporal prefix cache: for static inputs in evaluation
    /// mode, the stateless layer prefix ahead of the first spiking layer is
    /// computed once and reused for all `T` time steps.
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.prefix_cache = enabled;
        self
    }

    /// Overrides the spike-sparsity kernels: layers probe their activations
    /// and pass operand-structure hints to the backend so binary/sparse
    /// products take the event-driven gather-accumulate kernel.
    pub fn with_spike_kernels(mut self, enabled: bool) -> Self {
        self.spike_kernels = enabled;
        self
    }

    /// Overrides CSR spike tensors: evaluation-mode spiking layers attach a
    /// compressed event index ([`falvolt_tensor::SpikeIndex`]) to their
    /// outputs, which flows through flatten/pool/im2col as an index
    /// transform and lets the kernels and the systolic executor walk events
    /// instead of probing. Off reproduces the probe-based engine
    /// bit-for-bit.
    pub fn with_csr_spikes(mut self, enabled: bool) -> Self {
        self.csr_spikes = enabled;
        self
    }

    /// Overrides composed mask chains in the systolic executor: faulty
    /// columns walk merged nonzero/masked events on composed stuck-at masks
    /// instead of replaying the full per-element chain. Off is the replay
    /// reference engine.
    pub fn with_composed_mask_chains(mut self, enabled: bool) -> Self {
        self.composed_mask_chains = enabled;
        self
    }

    /// Overrides multi-map scenario batching: sweep workers sharing a
    /// scenario set evaluate products against scenario-invariant operands
    /// for every fault map in one event walk.
    pub fn with_scenario_batching(mut self, enabled: bool) -> Self {
        self.scenario_batching = enabled;
        self
    }

    /// Overrides the runtime-dispatched SIMD kernel layer
    /// ([`falvolt_tensor::simd`]): off forces [`SpikingNetwork::forward`]
    /// onto the scalar engines (the exact pre-SIMD loops) for the duration
    /// of the call — the ablation/baseline switch. Results are equivalent
    /// either way: integer fault chains are bit-identical across ISAs, and
    /// float kernels stay within the documented 1e-5 tolerance.
    pub fn with_simd_kernels(mut self, enabled: bool) -> Self {
        self.simd_kernels = enabled;
        self
    }

    /// Whether the temporal prefix cache is enabled.
    pub fn prefix_cache(&self) -> bool {
        self.prefix_cache
    }

    /// Whether spike-sparsity kernels are enabled.
    pub fn spike_kernels(&self) -> bool {
        self.spike_kernels
    }

    /// Whether CSR spike tensors are enabled.
    pub fn csr_spikes(&self) -> bool {
        self.csr_spikes
    }

    /// Whether systolic mask chains are composed (vs fully replayed).
    pub fn composed_mask_chains(&self) -> bool {
        self.composed_mask_chains
    }

    /// Whether multi-map scenario batching is enabled.
    pub fn scenario_batching(&self) -> bool {
        self.scenario_batching
    }

    /// Whether the runtime-dispatched SIMD kernel layer is enabled.
    pub fn simd_kernels(&self) -> bool {
        self.simd_kernels
    }
}

/// A feed-forward spiking neural network executed over `T` discrete time
/// steps.
///
/// * Static inputs (`[N, C, H, W]` or `[N, features]`) are presented
///   identically at every time step — the "direct encoding" the paper's
///   architectures use, where the first convolution acts as the spike
///   encoder.
/// * Neuromorphic inputs (`[N, T, C, H, W]`) provide one frame per time step.
///
/// The network output is the **firing rate** of the last (spiking) layer:
/// the per-class spike count divided by `T`. Classification takes the argmax
/// of the rates; the loss is computed on the rates as well.
///
/// # Example
///
/// ```
/// use falvolt_snn::layers::{Flatten, Linear, SpikingLayer};
/// use falvolt_snn::neuron::NeuronConfig;
/// use falvolt_snn::{Mode, SpikingNetwork, Tensor};
///
/// # fn main() -> Result<(), falvolt_snn::SnnError> {
/// let mut network = SpikingNetwork::new(4);
/// network.push(Flatten::new("flatten"));
/// network.push(Linear::new("fc", 16, 3, 1)?);
/// network.push(SpikingLayer::new("sn", NeuronConfig::paper_default()));
/// let rates = network.forward(&Tensor::ones(&[2, 1, 4, 4]), Mode::Eval)?;
/// assert_eq!(rates.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
/// Cloning copies the layer structure but *shares* every parameter tensor
/// copy-on-write (see [`Param`]): experiment code carves scenario views off a
/// trained network ([`SpikingNetwork::scenario_view`]) into worker threads,
/// and the weight axis stays O(weights) in memory no matter how many workers
/// evaluate fault scenarios in parallel. The backend `Arc` and any installed
/// [`SweepCache`] are shared too.
#[derive(Debug, Clone)]
pub struct SpikingNetwork {
    layers: Vec<Box<dyn Layer>>,
    time_steps: usize,
    backend: Arc<dyn MatmulBackend>,
    engine: EnginePreset,
    sweep_cache: Option<Arc<SweepCache>>,
}

impl SpikingNetwork {
    /// Creates an empty network executed over `time_steps` steps with the
    /// floating-point backend.
    ///
    /// # Panics
    ///
    /// Panics if `time_steps == 0`.
    pub fn new(time_steps: usize) -> Self {
        assert!(
            time_steps > 0,
            "a spiking network needs at least one time step"
        );
        Self {
            layers: Vec::new(),
            time_steps,
            backend: FloatBackend::shared(),
            engine: EnginePreset::default(),
            sweep_cache: None,
        }
    }

    /// Appends a layer (builder style).
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of simulation time steps.
    pub fn time_steps(&self) -> usize {
        self.time_steps
    }

    /// Changes the number of simulation time steps.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for zero.
    pub fn set_time_steps(&mut self, time_steps: usize) -> Result<()> {
        if time_steps == 0 {
            return Err(SnnError::invalid_config("time_steps must be non-zero"));
        }
        self.time_steps = time_steps;
        Ok(())
    }

    /// The backend executing matrix products.
    pub fn backend(&self) -> &Arc<dyn MatmulBackend> {
        &self.backend
    }

    /// Installs a different matmul backend (e.g. the systolic-array model).
    pub fn set_backend(&mut self, backend: Arc<dyn MatmulBackend>) {
        self.backend = backend;
    }

    /// The engine preset this network executes under.
    pub fn engine_preset(&self) -> EnginePreset {
        self.engine
    }

    /// Installs an engine preset. Only the network-level switches (prefix
    /// cache, spike kernels, CSR spikes) act here; the systolic switches
    /// (composed mask chains, scenario batching) ride along for backend
    /// builders and the campaign scheduler to read.
    pub fn set_engine_preset(&mut self, preset: EnginePreset) {
        self.engine = preset;
    }

    /// Convenience switch: turns the whole event-driven engine on or off.
    #[deprecated(note = "use set_engine_preset(EnginePreset::full() / ::seed_equivalent())")]
    pub fn set_event_driven(&mut self, enabled: bool) {
        self.engine = if enabled {
            EnginePreset::full()
        } else {
            EnginePreset::seed_equivalent()
        };
    }

    /// Installs (or removes) a sweep-driver-owned cross-call cache. While
    /// installed, evaluation-mode forward passes share stateless-prefix
    /// outputs across calls — and, through the scenario views holding the
    /// same `Arc`, across sweep workers — keyed by input content, prefix
    /// parameters and backend fingerprint, so a hit is bit-identical to a
    /// recompute. Training passes never touch the cache.
    pub fn set_sweep_cache(&mut self, cache: Option<Arc<SweepCache>>) {
        self.sweep_cache = cache;
    }

    /// The installed sweep cache, if any.
    pub fn sweep_cache(&self) -> Option<&Arc<SweepCache>> {
        self.sweep_cache.as_ref()
    }

    /// Carves a scenario view off this network: a clone whose parameter
    /// tensors are shared copy-on-write with the original (O(layer structs)
    /// memory, not O(weights)) and whose temporal state is reset. This is
    /// what the sweep drivers hand to each scenario worker in place of the
    /// former whole-network deep clone; a worker that only evaluates never
    /// materialises its own weights, while a worker that retrains detaches
    /// private copies on its first optimizer step.
    pub fn scenario_view(&self) -> SpikingNetwork {
        let mut view = self.clone();
        view.reset_state();
        view
    }

    /// Clones the network with every parameter buffer deep-copied up front —
    /// the pre-copy-on-write clone semantics. Benchmarks and equivalence
    /// tests use this as the "per-clone baseline"; sweep code should use
    /// [`SpikingNetwork::scenario_view`] instead.
    pub fn unshared_clone(&self) -> SpikingNetwork {
        let mut clone = self.clone();
        for param in clone.params_mut() {
            param.unshare();
        }
        clone
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// All trainable parameters of all layers.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Clears every parameter gradient.
    pub fn zero_grads(&mut self) {
        for param in self.params_mut() {
            param.zero_grad();
        }
    }

    /// Exports the values of all parameters (a "state dict"), in the same
    /// order [`SpikingNetwork::params_mut`] yields them.
    pub fn export_parameters(&mut self) -> Vec<Tensor> {
        self.params_mut()
            .iter()
            .map(|p| p.value().clone())
            .collect()
    }

    /// Imports parameter values previously produced by
    /// [`SpikingNetwork::export_parameters`] into a network with the same
    /// architecture, and resets all optimizer state.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when the number or shapes of the
    /// parameters do not match.
    pub fn import_parameters(&mut self, values: &[Tensor]) -> Result<()> {
        let mut params = self.params_mut();
        if params.len() != values.len() {
            return Err(SnnError::invalid_config(format!(
                "cannot import {} parameter tensors into a network with {} parameters",
                values.len(),
                params.len()
            )));
        }
        for (param, value) in params.iter_mut().zip(values) {
            if param.value().shape() != value.shape() {
                return Err(SnnError::invalid_config(format!(
                    "parameter '{}' has shape {:?} but the imported tensor has shape {:?}",
                    param.name(),
                    param.value().shape(),
                    value.shape()
                )));
            }
            // Re-importing an unchanged value is a no-op assignment: skip it
            // so the parameter keeps its content id (and version), and the
            // cached derivations / cross-figure cache entries keyed on it
            // stay warm. Figure drivers restore the baseline between every
            // experiment, which would otherwise re-mint every id.
            #[cfg(feature = "audit")]
            let id_before = param.value().content_id();
            let changed = param.value() != value;
            if changed {
                param.assign_value(value.clone());
            }
            // Audit both directions of the skip's soundness: a changed
            // value must re-mint (the old id would poison every cache
            // keyed on it), an unchanged value must keep its id (that is
            // the entire point of the skip).
            #[cfg(feature = "audit")]
            {
                let id_after = param.value().content_id();
                if changed {
                    assert_ne!(
                        id_after,
                        id_before,
                        "import audit: parameter '{}' changed bytes but kept its content id",
                        param.name()
                    );
                } else {
                    assert_eq!(
                        id_after,
                        id_before,
                        "import audit: parameter '{}' kept its bytes but re-minted its id",
                        param.name()
                    );
                }
            }
            param.zero_grad();
            param.reset_optimizer_state();
        }
        Ok(())
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// The prunable weight matrices (convolutional and fully connected
    /// layers), paired with their layer names, in network order.
    pub fn prunable_weights_mut(&mut self) -> Vec<(String, &mut Param)> {
        self.layers
            .iter_mut()
            .filter_map(|l| {
                let name = l.name().to_string();
                l.weight_mut().map(|w| (name, w))
            })
            .collect()
    }

    /// The threshold voltages of all spiking layers, paired with their layer
    /// names, in network order.
    pub fn thresholds(&self) -> Vec<(String, f32)> {
        self.layers
            .iter()
            .filter_map(|l| l.threshold().map(|v| (l.name().to_string(), v)))
            .collect()
    }

    /// The threshold parameters of all spiking layers.
    pub fn threshold_params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .filter_map(|l| l.threshold_mut())
            .collect()
    }

    /// Enables or disables threshold-voltage learning on every spiking layer
    /// (the switch between FaPIT and FalVolt retraining).
    pub fn set_thresholds_trainable(&mut self, trainable: bool) {
        for layer in &mut self.layers {
            layer.set_threshold_trainable(trainable);
        }
    }

    /// Overwrites the threshold voltage of every spiking layer with `v`
    /// (used by the fixed-threshold sweep of Figure 2).
    pub fn set_all_thresholds(&mut self, v: f32) {
        for layer in &mut self.layers {
            if let Some(param) = layer.threshold_mut() {
                param.value_mut().fill(v);
            }
        }
    }

    /// Resets the temporal state (membrane potentials, caches) of all layers.
    pub fn reset_state(&mut self) {
        for layer in &mut self.layers {
            layer.reset_state();
        }
    }

    /// Runs the network over all time steps and returns the firing-rate
    /// tensor `[N, classes]`.
    ///
    /// For static (direct-encoded) inputs in evaluation mode, the temporal
    /// prefix cache runs the stateless layer prefix ahead of the first
    /// stateful (spiking) layer once and reuses its output for all `T` time
    /// steps — the replicated input would flow through the identical
    /// computation at every step. With a [`SweepCache`] installed
    /// ([`SpikingNetwork::set_sweep_cache`]) the prefix output is additionally
    /// shared *across* forward calls and scenario workers, keyed on input
    /// content, prefix parameters and backend fingerprint. Temporal inputs
    /// and training passes are never cached (each step sees a different frame
    /// / must push its own BPTT caches), and every cached path produces
    /// bit-identical outputs.
    ///
    /// # Errors
    ///
    /// Returns an error for inputs of unsupported rank or for layer shape
    /// mismatches.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(SnnError::invalid_config("network has no layers"));
        }
        // Scoped, not set at preset time: a global override installed in
        // `set_engine_preset` would leak into unrelated work on this
        // process (e.g. a bench's SIMD leg timed after a scalar ablation).
        let _simd_scope = (!self.engine.simd_kernels())
            .then(|| falvolt_tensor::simd::force(Some(falvolt_tensor::simd::Isa::Scalar)));
        self.reset_state();
        let time_steps = self.time_steps;
        let backend = Arc::clone(&self.backend);
        let sweep_cache = self.sweep_cache.clone();
        // Every layer sees the sweep cache in evaluation mode. Prefix
        // lowerings are the shareable jackpot (scenario-invariant input);
        // suffix products still profit from the shared weight transposes,
        // and since cache keys are O(1) content ids a suffix miss costs a
        // hash lookup, not an operand hash.
        let ctx = ForwardContext::new(mode, backend.as_ref())
            .with_spike_hints(self.engine.spike_kernels())
            .with_csr_spikes(self.engine.csr_spikes())
            .with_cache(sweep_cache.as_deref());
        // The prefix sees the raw batch input — scenario-invariant across
        // sweep workers by construction — so its layers may promote their
        // input-derived cache keys on first sighting.
        let prefix_ctx = ForwardContext::new(mode, backend.as_ref())
            .with_spike_hints(self.engine.spike_kernels())
            .with_csr_spikes(self.engine.csr_spikes())
            .with_cache(sweep_cache.as_deref())
            .with_shareable_input(true);

        let static_input = matches!(input.ndim(), 2 | 4);
        let prefix_len = if self.engine.prefix_cache() && static_input && !mode.is_train() {
            self.layers
                .iter()
                .position(|l| l.is_stateful(mode))
                .unwrap_or(self.layers.len())
        } else {
            0
        };
        // Cross-call key of the prefix output: what goes in (the input
        // batch), what transforms it (every prefix layer's parameters) and
        // what executes it (the backend, including any fault map). Anything
        // else — thresholds of downstream spiking layers, suffix weights —
        // cannot change the prefix output, so sweeps sharing a cache get
        // hits exactly when a recompute would be bit-identical.
        let prefix_key = match (&sweep_cache, prefix_len) {
            (Some(_), n) if n > 0 => {
                let mut fp = Fingerprint::new();
                fp.write_str("prefix");
                fp.write_usize(n);
                // The spike-kernel switch is part of the key: sparse and
                // dense kernels agree only to within re-association, so an
                // engine-off network must never be served an engine-on
                // prefix (or vice versa). The CSR switch is keyed too,
                // defensively — its outputs are bit-identical by contract,
                // but cached index-carrying tensors stay with CSR runs.
                fp.write_u64(
                    u64::from(self.engine.spike_kernels())
                        | (u64::from(self.engine.csr_spikes()) << 1),
                );
                fp.write_u64(backend.fingerprint());
                for layer in &self.layers[..n] {
                    layer.cache_fingerprint(&mut fp);
                }
                // The input is identified by its generation-tagged content
                // id: O(1) per forward call instead of hashing the batch,
                // and sweep drivers evaluate the same batch tensors
                // throughout, so ids are stable exactly when contents are.
                fp.write_dims(input.shape());
                fp.write_u64(input.content_id());
                Some(fp.finish())
            }
            _ => None,
        };

        let mut prefix_out: Option<Arc<Tensor>> = None;
        let mut rate_sum: Option<Tensor> = None;
        for t in 0..time_steps {
            let x = if prefix_len == 0 {
                let step = step_input(input, t, time_steps)?;
                run_layers(&mut self.layers, step.as_ref(), &ctx)?
            } else {
                let mut fulfill = false;
                if prefix_out.is_none() {
                    if let (Some(cache), Some(key)) = (&sweep_cache, prefix_key) {
                        match cache.lookup_prefix(key) {
                            crate::sweep_cache::SweepDecision::Hit(hit) => prefix_out = Some(hit),
                            crate::sweep_cache::SweepDecision::Compute => fulfill = true,
                            crate::sweep_cache::SweepDecision::Skip => {}
                        }
                    }
                }
                if prefix_out.is_none() {
                    let step = step_input(input, t, time_steps)?;
                    let computed =
                        run_layers(&mut self.layers[..prefix_len], step.as_ref(), &prefix_ctx);
                    let computed = match computed {
                        Ok(out) => Arc::new(out),
                        Err(e) => {
                            // Release the in-flight slot so the key is not
                            // dead for the rest of the sweep.
                            if fulfill {
                                if let (Some(cache), Some(key)) = (&sweep_cache, prefix_key) {
                                    cache.abandon_prefix(key);
                                }
                            }
                            return Err(e);
                        }
                    };
                    if fulfill {
                        if let (Some(cache), Some(key)) = (&sweep_cache, prefix_key) {
                            cache.fulfill_prefix(key, Arc::clone(&computed));
                        }
                    }
                    prefix_out = Some(computed);
                }
                let cached = prefix_out.as_deref().expect("prefix computed above");
                if prefix_len == self.layers.len() {
                    // Entirely stateless network: every step yields the same
                    // tensor; the rate average below still runs T times so
                    // the result is bit-identical to the uncached loop.
                    cached.clone()
                } else {
                    run_layers(&mut self.layers[prefix_len..], cached, &ctx)?
                }
            };
            if x.ndim() != 2 {
                return Err(SnnError::invalid_config(format!(
                    "network output must be [N, classes], got shape {:?}",
                    x.shape()
                )));
            }
            match &mut rate_sum {
                Some(sum) => sum.add_assign(&x)?,
                None => rate_sum = Some(x),
            }
        }
        let mut rates = rate_sum.expect("time_steps > 0 guarantees at least one step");
        rates.scale_inplace(1.0 / time_steps as f32);
        Ok(rates)
    }

    /// Backpropagates a gradient with respect to the firing rates through all
    /// time steps (BPTT). Must follow a `forward` call in [`Mode::Train`].
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::MissingForwardState`] when no training forward
    /// pass preceded this call.
    pub fn backward(&mut self, grad_rates: &Tensor) -> Result<()> {
        // The per-step seed gradient is loop-invariant (the rate output is
        // the mean over T steps, so every step receives grad_rates / T);
        // compute it once and hand it to the last layer by reference instead
        // of cloning it at the top of every iteration.
        let per_step = grad_rates.mul_scalar(1.0 / self.time_steps as f32);
        // The T iterations themselves cannot be hoisted or deduplicated:
        // each one pops a different cached forward step from every layer's
        // BPTT stack, and the spiking layers carry the membrane-potential
        // gradient across iterations, so identical seeds still produce
        // different per-layer work each time.
        for _ in 0..self.time_steps {
            let mut grad: Option<Tensor> = None;
            for layer in self.layers.iter_mut().rev() {
                let next = layer.backward(grad.as_ref().unwrap_or(&per_step))?;
                grad = Some(next);
            }
        }
        Ok(())
    }

    /// Convenience: forward pass in evaluation mode followed by per-sample
    /// argmax.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let rates = self.forward(input, Mode::Eval)?;
        Ok(reduce::argmax_rows(&rates)?)
    }
}

/// Runs `input` through `layers` in order, borrowing the initial tensor (the
/// first layer reads it in place; only layer outputs are allocated).
fn run_layers(
    layers: &mut [Box<dyn Layer>],
    input: &Tensor,
    ctx: &ForwardContext<'_>,
) -> Result<Tensor> {
    let mut x: Option<Tensor> = None;
    for layer in layers {
        let next = layer.forward(x.as_ref().unwrap_or(input), ctx)?;
        x = Some(next);
    }
    Ok(x.unwrap_or_else(|| input.clone()))
}

/// Extracts the input for time step `t`: temporal inputs (`[N, T, ...]`) are
/// sliced into an owned frame, static inputs are replicated for free as a
/// borrowed view (`Cow::Borrowed`) — the seed cloned the full tensor here on
/// every step.
fn step_input<'a>(input: &'a Tensor, t: usize, time_steps: usize) -> Result<Cow<'a, Tensor>> {
    match input.ndim() {
        2 | 4 => Ok(Cow::Borrowed(input)),
        5 => {
            if input.shape()[1] != time_steps {
                return Err(SnnError::invalid_input(format!(
                    "temporal input has {} frames but the network runs {} time steps",
                    input.shape()[1],
                    time_steps
                )));
            }
            let (n, _t, c, h, w) = (
                input.shape()[0],
                input.shape()[1],
                input.shape()[2],
                input.shape()[3],
                input.shape()[4],
            );
            let mut frame = Tensor::zeros(&[n, c, h, w]);
            let chw = c * h * w;
            let src = input.data();
            let dst = frame.data_mut();
            for b in 0..n {
                let src_base = (b * time_steps + t) * chw;
                let dst_base = b * chw;
                dst[dst_base..dst_base + chw].copy_from_slice(&src[src_base..src_base + chw]);
            }
            Ok(Cow::Owned(frame))
        }
        other => Err(SnnError::invalid_input(format!(
            "unsupported input rank {other}: expected [N, F], [N, C, H, W] or [N, T, C, H, W]"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, SpikingLayer};
    use crate::neuron::NeuronConfig;

    fn tiny_network() -> SpikingNetwork {
        let mut network = SpikingNetwork::new(4);
        network.push(Flatten::new("flatten"));
        network.push(Linear::new("fc1", 8, 6, 1).unwrap());
        network.push(SpikingLayer::new("sn1", NeuronConfig::paper_default()));
        network.push(Linear::new("fc2", 6, 3, 2).unwrap());
        network.push(SpikingLayer::new("sn2", NeuronConfig::paper_default()));
        network
    }

    #[test]
    fn forward_produces_rates_in_unit_interval() {
        let mut network = tiny_network();
        let input = Tensor::from_fn(&[5, 1, 2, 4], |i| (i % 7) as f32 * 0.3);
        let rates = network.forward(&input, Mode::Eval).unwrap();
        assert_eq!(rates.shape(), &[5, 3]);
        assert!(rates.data().iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn temporal_input_is_sliced_per_time_step() {
        let mut network = tiny_network();
        let temporal = Tensor::from_fn(&[2, 4, 1, 2, 4], |i| (i % 5) as f32 * 0.4);
        let rates = network.forward(&temporal, Mode::Eval).unwrap();
        assert_eq!(rates.shape(), &[2, 3]);
        // Mismatched frame count is rejected.
        let wrong = Tensor::zeros(&[2, 3, 1, 2, 4]);
        assert!(network.forward(&wrong, Mode::Eval).is_err());
        // Unsupported rank is rejected.
        assert!(network
            .forward(&Tensor::zeros(&[2, 1, 2]), Mode::Eval)
            .is_err());
    }

    #[test]
    fn backward_requires_training_forward() {
        let mut network = tiny_network();
        let input = Tensor::ones(&[2, 1, 2, 4]);
        network.forward(&input, Mode::Eval).unwrap();
        assert!(network.backward(&Tensor::ones(&[2, 3])).is_err());
        network.forward(&input, Mode::Train).unwrap();
        assert!(network.backward(&Tensor::ones(&[2, 3])).is_ok());
    }

    #[test]
    fn training_pass_produces_nonzero_gradients() {
        let mut network = tiny_network();
        let input = Tensor::from_fn(&[3, 1, 2, 4], |i| (i % 3) as f32);
        network.zero_grads();
        network.forward(&input, Mode::Train).unwrap();
        network.backward(&Tensor::ones(&[3, 3])).unwrap();
        let grads_nonzero = network
            .params_mut()
            .iter()
            .any(|p| p.grad().data().iter().any(|&g| g != 0.0));
        assert!(
            grads_nonzero,
            "at least one parameter should receive gradient"
        );
        network.zero_grads();
        assert!(network
            .params_mut()
            .iter()
            .all(|p| p.grad().data().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn threshold_management_touches_only_spiking_layers() {
        let mut network = tiny_network();
        assert_eq!(network.thresholds().len(), 2);
        assert_eq!(network.threshold_params_mut().len(), 2);
        network.set_all_thresholds(0.55);
        assert!(network
            .thresholds()
            .iter()
            .all(|(_, v)| (*v - 0.55).abs() < 1e-6));
        network.set_thresholds_trainable(true);
        assert!(network
            .threshold_params_mut()
            .iter()
            .all(|p| p.is_trainable()));
        assert_eq!(network.prunable_weights_mut().len(), 2);
    }

    #[test]
    fn export_import_roundtrips_and_validates() {
        let mut a = tiny_network();
        let mut b = tiny_network();
        // Perturb `a` so the two networks differ.
        for p in a.params_mut() {
            p.value_mut().map_inplace(|v| v + 0.25);
        }
        let state = a.export_parameters();
        b.import_parameters(&state).unwrap();
        assert_eq!(a.export_parameters(), b.export_parameters());

        // Mismatched architectures are rejected.
        let mut small = SpikingNetwork::new(2);
        small.push(Flatten::new("flatten"));
        small.push(Linear::new("fc", 8, 3, 1).unwrap());
        assert!(small.import_parameters(&state).is_err());
        // Mismatched shapes are rejected.
        let mut wrong = state.clone();
        wrong[0] = Tensor::zeros(&[1]);
        assert!(b.import_parameters(&wrong).is_err());
    }

    #[test]
    fn predict_returns_one_label_per_sample() {
        let mut network = tiny_network();
        let input = Tensor::ones(&[4, 1, 2, 4]);
        let labels = network.predict(&input).unwrap();
        assert_eq!(labels.len(), 4);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn accessors_and_configuration() {
        let mut network = tiny_network();
        assert_eq!(network.len(), 5);
        assert!(!network.is_empty());
        assert_eq!(network.time_steps(), 4);
        assert!(network.set_time_steps(0).is_err());
        network.set_time_steps(2).unwrap();
        assert_eq!(network.time_steps(), 2);
        assert!(network.parameter_count() > 0);
        assert_eq!(network.backend().name(), "float");
        let empty = SpikingNetwork::new(1);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one time step")]
    fn zero_time_steps_panics() {
        let _ = SpikingNetwork::new(0);
    }

    #[test]
    fn forward_on_empty_network_errors() {
        let mut network = SpikingNetwork::new(2);
        assert!(network.forward(&Tensor::ones(&[1, 4]), Mode::Eval).is_err());
    }

    #[test]
    fn engine_preset_defaults_on_and_toggles() {
        let mut network = tiny_network();
        assert_eq!(network.engine_preset(), EnginePreset::full());
        assert!(network.engine_preset().prefix_cache() && network.engine_preset().spike_kernels());
        network.set_engine_preset(EnginePreset::seed_equivalent());
        assert_eq!(network.engine_preset(), EnginePreset::seed_equivalent());
        network.set_engine_preset(
            EnginePreset::seed_equivalent()
                .with_prefix_cache(true)
                .with_spike_kernels(false),
        );
        assert!(network.engine_preset().prefix_cache());
        assert!(!network.engine_preset().spike_kernels());
        // The named presets order their capabilities.
        assert!(!EnginePreset::event_driven().composed_mask_chains());
        assert!(!EnginePreset::event_driven().scenario_batching());
        assert!(EnginePreset::full().composed_mask_chains());
        assert!(EnginePreset::full().scenario_batching());
        assert!(!EnginePreset::seed_equivalent().csr_spikes());
        assert!(EnginePreset::event_driven().csr_spikes());
        // The SIMD kernel layer is a kernel-layer property, on everywhere.
        assert!(EnginePreset::seed_equivalent().simd_kernels());
        assert!(EnginePreset::event_driven().simd_kernels());
        assert!(EnginePreset::full().simd_kernels());
        assert!(!EnginePreset::full().with_simd_kernels(false).simd_kernels());
    }

    #[test]
    fn scalar_forced_forward_matches_simd_and_restores_dispatch() {
        use falvolt_tensor::simd;
        // Serialise against anything else touching the process-global
        // dispatch override.
        let _lock = simd::test_override_lock();
        let input = Tensor::from_fn(&[3, 8], |i| ((i % 7) as f32 - 2.0) * 0.5);
        let mut network = tiny_network();
        let simd_out = network.forward(&input, Mode::Eval).unwrap();
        let prev = simd::active();
        let mut scalar_network = tiny_network();
        scalar_network.set_engine_preset(EnginePreset::full().with_simd_kernels(false));
        let scalar_out = scalar_network.forward(&input, Mode::Eval).unwrap();
        // The forced-scalar scope must not leak past forward().
        assert_eq!(simd::active(), prev, "forward leaked its scalar override");
        assert_eq!(simd_out.shape(), scalar_out.shape());
        for (a, b) in simd_out.data().iter().zip(scalar_out.data()) {
            assert!(
                (a - b).abs() <= 1e-5,
                "scalar ablation diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn prefix_cached_forward_is_bit_identical_to_uncached() {
        // Dispatch-sensitive: float outputs are compared bit-for-bit, so
        // hold off any concurrent test forcing a different dispatch ISA.
        let _lock = falvolt_tensor::simd::test_override_lock();
        use crate::layers::Conv2d;
        // Conv -> spiking -> flatten -> linear -> spiking: the conv is the
        // stateless prefix that the engine computes once per forward.
        let build = || {
            let mut network = SpikingNetwork::new(6);
            network.push(Conv2d::new("conv", 1, 3, 3, 1, 1, 5).unwrap());
            network.push(SpikingLayer::new("sn1", NeuronConfig::paper_default()));
            network.push(Flatten::new("flatten"));
            network.push(Linear::new("fc", 3 * 6 * 6, 4, 6).unwrap());
            network.push(SpikingLayer::new("sn2", NeuronConfig::paper_default()));
            network
        };
        let input = Tensor::from_fn(&[3, 1, 6, 6], |i| ((i % 11) as f32 - 3.0) * 0.4);
        let mut cached = build();
        let mut uncached = build();
        uncached.set_engine_preset(EnginePreset::full().with_prefix_cache(false));
        let a = cached.forward(&input, Mode::Eval).unwrap();
        let b = uncached.forward(&input, Mode::Eval).unwrap();
        assert_eq!(a.data(), b.data(), "prefix cache must not change outputs");
    }

    #[test]
    fn prefix_cache_covers_fully_stateless_networks() {
        // Dispatch-sensitive: float outputs are compared bit-for-bit, so
        // hold off any concurrent test forcing a different dispatch ISA.
        let _lock = falvolt_tensor::simd::test_override_lock();
        // No spiking layer at all: the whole network is the prefix.
        let build = || {
            let mut network = SpikingNetwork::new(4);
            network.push(Flatten::new("flatten"));
            network.push(Linear::new("fc", 8, 3, 2).unwrap());
            network
        };
        let input = Tensor::from_fn(&[2, 1, 2, 4], |i| (i % 5) as f32 * 0.3);
        let mut cached = build();
        let mut uncached = build();
        uncached.set_engine_preset(EnginePreset::seed_equivalent());
        let a = cached.forward(&input, Mode::Eval).unwrap();
        let b = uncached.forward(&input, Mode::Eval).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn training_pass_is_unaffected_by_prefix_cache() {
        // Train mode must never take the cached path: every step has to push
        // its own BPTT caches. With the engine on, backward still works and
        // gradients flow.
        let mut network = tiny_network();
        assert_eq!(network.engine_preset(), EnginePreset::full());
        let input = Tensor::from_fn(&[2, 1, 2, 4], |i| (i % 3) as f32);
        network.forward(&input, Mode::Train).unwrap();
        assert!(network.backward(&Tensor::ones(&[2, 3])).is_ok());
    }

    #[test]
    fn scenario_views_share_weights_copy_on_write() {
        // Dispatch-sensitive: float outputs are compared bit-for-bit, so
        // hold off any concurrent test forcing a different dispatch ISA.
        let _lock = falvolt_tensor::simd::test_override_lock();
        let mut base = tiny_network();
        let mut view = base.scenario_view();
        // Every parameter buffer is shared, not copied.
        assert!(view.params_mut().iter().all(|p| p.value_is_shared()));
        // Evaluation does not detach anything.
        let input = Tensor::from_fn(&[2, 1, 2, 4], |i| (i % 5) as f32 * 0.3);
        let a = view.forward(&input, Mode::Eval).unwrap();
        let b = base.forward(&input, Mode::Eval).unwrap();
        assert_eq!(a.data(), b.data(), "a view computes what the base does");
        assert!(view.params_mut().iter().all(|p| p.value_is_shared()));
        // Mutating the view's weights leaves the base untouched.
        view.params_mut()[0].value_mut().fill(9.0);
        assert!(!view.params_mut()[0].value_is_shared());
        assert!(base.params_mut()[0]
            .value()
            .data()
            .iter()
            .all(|&v| v != 9.0));

        // An unshared clone starts detached.
        let mut deep = base.unshared_clone();
        assert!(deep.params_mut().iter().all(|p| !p.value_is_shared()));
    }

    #[test]
    fn sweep_cache_hits_across_calls_and_stays_bit_identical() {
        // Dispatch-sensitive: float outputs are compared bit-for-bit, so
        // hold off any concurrent test forcing a different dispatch ISA.
        let _lock = falvolt_tensor::simd::test_override_lock();
        use crate::layers::Conv2d;
        use crate::sweep_cache::SweepCache;
        let build = || {
            let mut network = SpikingNetwork::new(3);
            network.push(Conv2d::new("conv", 1, 2, 3, 1, 1, 4).unwrap());
            network.push(SpikingLayer::new("sn", NeuronConfig::paper_default()));
            network.push(Flatten::new("flatten"));
            network.push(Linear::new("fc", 2 * 4 * 4, 3, 5).unwrap());
            network.push(SpikingLayer::new("sn2", NeuronConfig::paper_default()));
            network
        };
        let input = Tensor::from_fn(&[2, 1, 4, 4], |i| ((i % 7) as f32 - 2.0) * 0.5);
        let mut plain = build();
        let reference = plain.forward(&input, Mode::Eval).unwrap();

        let cache = Arc::new(SweepCache::new());
        let mut cached = build();
        cached.set_sweep_cache(Some(Arc::clone(&cache)));
        assert!(cached.sweep_cache().is_some());
        // Promote-on-second-request: the first call records interest
        // (nothing stored), the second fulfils the shared entry, the third
        // — and any scenario view sharing the cache Arc — hits it.
        let first = cached.forward(&input, Mode::Eval).unwrap();
        assert_eq!(first.data(), reference.data());
        assert_eq!(cache.prefix_stats().misses, 1);
        let second = cached.forward(&input, Mode::Eval).unwrap();
        assert_eq!(second.data(), reference.data());
        assert_eq!(cache.prefix_stats().promotions, 1);
        let third = cached.forward(&input, Mode::Eval).unwrap();
        assert_eq!(third.data(), reference.data());
        assert!(cache.prefix_stats().hits >= 1);
        let mut view = cached.scenario_view();
        let viewed = view.forward(&input, Mode::Eval).unwrap();
        assert_eq!(viewed.data(), reference.data());
        assert!(cache.prefix_stats().hits >= 2);

        // Changing a prefix parameter changes the key: the cache misses
        // (no stale hit) and the output equals a cache-free recompute.
        let misses_before = cache.prefix_stats().misses;
        cached.params_mut()[0].value_mut().map_inplace(|v| v + 0.1);
        let perturbed = cached.forward(&input, Mode::Eval).unwrap();
        assert_eq!(cache.prefix_stats().misses, misses_before + 1);
        plain.params_mut()[0].value_mut().map_inplace(|v| v + 0.1);
        let recomputed = plain.forward(&input, Mode::Eval).unwrap();
        assert_eq!(perturbed.data(), recomputed.data());
    }

    #[test]
    fn stateful_layers_report_correctly() {
        let spiking = SpikingLayer::new("sn", NeuronConfig::paper_default());
        assert!(spiking.is_stateful(Mode::Eval));
        assert!(spiking.is_stateful(Mode::Train));
        let linear = Linear::new("fc", 2, 2, 0).unwrap();
        assert!(!linear.is_stateful(Mode::Eval));
        assert!(linear.is_stateful(Mode::Train), "BPTT caches are state");
    }
}
