//! Property-based tests on the SNN library's core invariants.

use falvolt_snn::config::ArchitectureConfig;
use falvolt_snn::layers::{ForwardContext, Layer, Mode, SpikingLayer};
use falvolt_snn::loss::{Loss, MseRateLoss};
use falvolt_snn::neuron::{NeuronConfig, NeuronModel};
use falvolt_snn::{FloatBackend, Tensor};
use falvolt_tensor::reduce;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spikes_are_always_binary(seed in 0u64..200, amplitude in 0.1f32..5.0, threshold in 0.2f32..2.0) {
        let backend = FloatBackend::new();
        let mut layer = SpikingLayer::new(
            "sn",
            NeuronConfig::paper_default().with_threshold(threshold),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        for _ in 0..3 {
            let input = falvolt_tensor::init::uniform(&[2, 8], -amplitude, amplitude, &mut rng);
            let spikes = layer.forward(&input, &ctx).unwrap();
            prop_assert!(spikes.data().iter().all(|&s| s == 0.0 || s == 1.0));
        }
    }

    #[test]
    fn membrane_never_exceeds_threshold_after_reset(seed in 0u64..200, amplitude in 0.1f32..3.0) {
        // With hard reset, the stored membrane potential after a step is
        // either below threshold (no spike) or exactly v_reset (spiked).
        let backend = FloatBackend::new();
        let config = NeuronConfig::paper_default();
        let mut layer = SpikingLayer::new("sn", config);
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        for _ in 0..4 {
            let input = falvolt_tensor::init::uniform(&[1, 16], 0.0, amplitude, &mut rng);
            layer.forward(&input, &ctx).unwrap();
            let v = layer.membrane_potential().unwrap();
            for &vi in v.data() {
                prop_assert!(
                    vi <= config.v_threshold + 1e-5 || (vi - config.v_reset).abs() < 1e-6,
                    "membrane {} escaped both cases", vi
                );
            }
        }
    }

    #[test]
    fn lif_and_plif_agree_at_matching_decay(seed in 0u64..100, amplitude in 0.1f32..2.0) {
        // A PLIF neuron initialised at tau and an LIF neuron with the same tau
        // produce identical spike trains before any training step.
        let backend = FloatBackend::new();
        let mut plif = SpikingLayer::new(
            "p",
            NeuronConfig::paper_default().with_model(NeuronModel::Plif { init_tau: 3.0 }),
        );
        let mut lif = SpikingLayer::new(
            "l",
            NeuronConfig::paper_default().with_model(NeuronModel::Lif { tau: 3.0 }),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = ForwardContext::new(Mode::Eval, &backend);
        for _ in 0..3 {
            let input = falvolt_tensor::init::uniform(&[1, 8], 0.0, amplitude, &mut rng);
            let a = plif.forward(&input, &ctx).unwrap();
            let b = lif.forward(&input, &ctx).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn mse_loss_is_nonnegative_and_zero_only_at_target(labels in proptest::collection::vec(0usize..4, 1..6)) {
        let loss = MseRateLoss::new();
        let targets = reduce::one_hot(&labels, 4).unwrap();
        prop_assert_eq!(loss.forward(&targets, &targets).unwrap(), 0.0);
        let off = targets.add_scalar(0.25);
        prop_assert!(loss.forward(&off, &targets).unwrap() > 0.0);
    }

    #[test]
    fn architecture_scales_parameter_count_with_channels(channels in 2usize..12) {
        let mut small = ArchitectureConfig::tiny_test();
        small.conv_channels = channels;
        let mut network = small.build(1).unwrap();
        let count = network.parameter_count();
        let mut bigger = small.clone();
        bigger.conv_channels = channels + 2;
        let mut network2 = bigger.build(1).unwrap();
        prop_assert!(network2.parameter_count() > count);
    }

    #[test]
    fn forward_is_invariant_to_batch_packing(seed in 0u64..50) {
        // Evaluating two samples in one batch equals evaluating them
        // separately (no cross-sample leakage in eval mode).
        let config = ArchitectureConfig::tiny_test();
        let mut network = config.build(9).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = falvolt_tensor::init::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let together = network.forward(&batch, Mode::Eval).unwrap();
        let first = network
            .forward(&batch.slice_axis0(0, 1).unwrap(), Mode::Eval)
            .unwrap();
        let second = network
            .forward(&batch.slice_axis0(1, 2).unwrap(), Mode::Eval)
            .unwrap();
        let recombined = Tensor::concat_axis0(&[first, second]).unwrap();
        for (a, b) in together.data().iter().zip(recombined.data()) {
            prop_assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
        }
    }

    #[test]
    fn prefix_cached_forward_equals_uncached_exactly(
        seed in 0u64..100,
        amplitude in 0.1f32..2.0,
        time_steps in 1usize..7,
    ) {
        // The temporal prefix cache reuses the stateless conv prefix across
        // time steps; the result must be bit-identical to running the full
        // stack every step, for any input statistics and step count.
        let config = ArchitectureConfig::tiny_test().with_time_steps(time_steps);
        let mut cached = config.build(13).unwrap();
        let mut uncached = config.build(13).unwrap();
        uncached.set_engine_preset(cached.engine_preset().with_prefix_cache(false));
        let mut rng = StdRng::seed_from_u64(seed);
        let input = falvolt_tensor::init::uniform(&[2, 1, 8, 8], 0.0, amplitude, &mut rng);
        let a = cached.forward(&input, Mode::Eval).unwrap();
        let b = uncached.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn temporal_inputs_bypass_the_prefix_cache(seed in 0u64..50) {
        // Rank-5 neuromorphic inputs change every step, so cached and
        // uncached execution are the same code path — outputs must agree.
        let config = ArchitectureConfig::tiny_test().with_time_steps(3);
        let mut cached = config.build(17).unwrap();
        let mut uncached = config.build(17).unwrap();
        uncached.set_engine_preset(falvolt_snn::EnginePreset::seed_equivalent());
        let mut rng = StdRng::seed_from_u64(seed);
        let input = falvolt_tensor::init::uniform(&[2, 3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let a = cached.forward(&input, Mode::Eval).unwrap();
        let b = uncached.forward(&input, Mode::Eval).unwrap();
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
    }
}
