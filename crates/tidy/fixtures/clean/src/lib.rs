//! Clean fixture crate root.

#![forbid(unsafe_code)]

/// Nothing to see here: the tree must exit 0.
pub fn fine(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
