//! Clean file whose `[no-panic]` baseline entry is deliberately stale.

pub fn fine() -> u32 {
    7
}
