//! Fixture crate root deliberately missing `#![forbid(unsafe_code)]`.

pub fn fine() -> u32 {
    7
}
