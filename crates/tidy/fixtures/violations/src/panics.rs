//! No-panic fixtures: three library sites, a waived site, and test code.

pub fn hot(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("fixture");
    if a + b == 3 {
        panic!("fixture");
    }
    a + b
}

pub fn justified(x: Option<u32>) -> u32 {
    // tidy:allow(no-panic): fixture proving a justified waiver excludes the site
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(Some(3u32).unwrap(), 3);
    }
}
