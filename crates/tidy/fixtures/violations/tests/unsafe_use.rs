//! Unsafe fixtures: one site with no SAFETY comment, uninventoried.

pub fn poke() {
    unsafe { core::ptr::null::<u32>().read() };
}
