//! Raw-lock fixtures: single- and multi-line hits, waivers both ways.

use std::sync::Mutex;

pub fn raw(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn raw_multiline(m: &Mutex<u32>) -> u32 {
    *m.lock()
        .expect("poisoned")
}

pub fn waived(m: &Mutex<u32>) -> u32 {
    // tidy:allow(raw-lock): fixture proving a justified waiver suppresses
    *m.lock().unwrap()
}

pub fn bare(m: &Mutex<u32>) -> u32 {
    // tidy:allow(raw-lock)
    *m.lock().unwrap()
}
