//! Attribute-confinement fixtures (each attribute is outside its allowed file).

#[target_feature(enable = "avx2")]
fn outside_simd() {}

#[allow(unsafe_code)]
fn allows_unsafe() {}

#[allow(deprecated)]
fn allows_deprecated() {}
