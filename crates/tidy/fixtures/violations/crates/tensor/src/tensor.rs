//! Tensor fixture missing the serde skip on `spike_index`.

pub struct Tensor {
    #[serde(skip)]
    content_id: u64,
    spike_index: Option<()>,
}
