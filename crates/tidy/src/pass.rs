//! The pass driver: workspace walk → lints → ratchet → diagnostics.
//!
//! [`run`] is the whole pass as a library function so the `falvolt-tidy`
//! binary, the fixture integration tests, and `bench_gate --schema-only`
//! all execute the same code. Diagnostics are plain `file:line: [lint] …`
//! strings, sorted, so output is deterministic across filesystems.

use crate::baseline::{self, Baseline};
use crate::lints::{self, SourceFile};
use crate::schema;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo-relative location of the committed ratchet baseline.
pub const BASELINE_PATH: &str = "crates/tidy/baseline.toml";

/// Repo-relative location of the bench-smoke JSON the schema lint covers.
pub const BENCH_JSON_PATH: &str = "BENCH_kernels.json";

/// Outcome of one pass over a tree.
#[derive(Debug)]
pub struct PassResult {
    /// Sorted `file:line: [lint] message` diagnostics; empty means clean.
    pub diagnostics: Vec<String>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
}

impl PassResult {
    /// `true` when the tree passed every lint and both ratchets.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs the full pass rooted at `root` (a workspace checkout, or a fixture
/// tree shaped like one). `Err` means the pass itself could not run —
/// unreadable baseline or filesystem error — which callers map to a
/// distinct exit code from "violations found".
pub fn run(root: &Path) -> Result<PassResult, String> {
    let baseline_file = root.join(BASELINE_PATH);
    let baseline_text = fs::read_to_string(&baseline_file)
        .map_err(|e| format!("cannot read {}: {e}", baseline_file.display()))?;
    let baseline =
        Baseline::parse(&baseline_text).map_err(|e| format!("{}: {e}", baseline_file.display()))?;

    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut diagnostics = Vec::new();
    let mut unsafe_census: BTreeMap<String, usize> = BTreeMap::new();
    let mut panic_census: BTreeMap<String, usize> = BTreeMap::new();
    let mut unsafe_sites: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    let mut panic_sites: BTreeMap<String, Vec<(u32, String)>> = BTreeMap::new();

    for path in &files {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let report = lints::check_file(&SourceFile::new(rel.clone(), &text));
        for v in &report.violations {
            diagnostics.push(v.to_string());
        }
        if !report.unsafe_sites.is_empty() {
            unsafe_census.insert(rel.clone(), report.unsafe_sites.len());
            unsafe_sites.insert(rel.clone(), report.unsafe_sites);
        }
        if !report.panic_sites.is_empty() {
            panic_census.insert(rel.clone(), report.panic_sites.len());
            panic_sites.insert(rel.clone(), report.panic_sites);
        }
    }

    // Ratchet the two censuses. Files over baseline report every site so
    // the new one is visible; stale entries fail too ("ratchet down").
    let unsafe_report = baseline::ratchet(&baseline, "unsafe", &unsafe_census);
    for (file, actual, allowed) in &unsafe_report.over {
        for line in unsafe_sites.get(file).into_iter().flatten() {
            diagnostics.push(format!(
                "{file}:{line}: [unsafe-sites] unsafe site — file has {actual}, the [unsafe] \
                 baseline allows {allowed}"
            ));
        }
    }
    let panic_report = baseline::ratchet(&baseline, "no-panic", &panic_census);
    for (file, actual, allowed) in &panic_report.over {
        for (line, what) in panic_sites.get(file).into_iter().flatten() {
            diagnostics.push(format!(
                "{file}:{line}: [no-panic] {what} in library code — file has {actual}, the \
                 [no-panic] baseline allows {allowed}"
            ));
        }
    }
    for (section, report) in [("unsafe", &unsafe_report), ("no-panic", &panic_report)] {
        for (file, actual, allowed) in &report.stale {
            diagnostics.push(format!(
                "{BASELINE_PATH}:1: [ratchet] stale [{section}] entry: {file:?} counts {actual} \
                 but the baseline allows {allowed} — ratchet it down"
            ));
        }
    }

    // Bench JSON schema.
    let bench_json = root.join(BENCH_JSON_PATH);
    if bench_json.exists() {
        let text = fs::read_to_string(&bench_json)
            .map_err(|e| format!("cannot read {}: {e}", bench_json.display()))?;
        for v in schema::check_bench_schema(&text) {
            diagnostics.push(format!(
                "{BENCH_JSON_PATH}:{}: [bench-schema] {}{}",
                v.line,
                if v.path.is_empty() {
                    String::new()
                } else {
                    format!("{}: ", v.path)
                },
                v.message
            ));
        }
    }

    diagnostics.sort();
    Ok(PassResult {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files under `dir`, skipping build output,
/// VCS metadata, and the tidy fixtures (they contain deliberate
/// violations exercised by the fixture tests, not real debt).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if rel_path(root, &path) == "crates/tidy/fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative `/`-separated path, so diagnostics and baselines are
/// portable across platforms.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pass is clean on the real workspace — the same property CI
    /// enforces via `cargo run -p falvolt-tidy`, kept here so plain
    /// `cargo test` catches violations before the binary does.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let result = run(root).expect("pass runs");
        assert!(
            result.is_clean(),
            "tidy violations:\n{}",
            result.diagnostics.join("\n")
        );
        assert!(result.files_scanned > 30, "walker found too few files");
    }
}
