//! `falvolt-tidy` binary: run the pass, print diagnostics, exit typed.
//!
//! ```text
//! falvolt-tidy [ROOT]    # default: nearest ancestor with crates/tidy/baseline.toml
//! falvolt-tidy --list    # print the lint catalog
//! ```

#![forbid(unsafe_code)]

use falvolt_tidy::{lints, pass};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => {
                for lint in lints::LINTS {
                    println!("{:<18} {}", lint.name, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: falvolt-tidy [--list] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            other => {
                eprintln!("falvolt-tidy: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "falvolt-tidy: no {} found in the current directory or its ancestors; \
                 pass the workspace root explicitly",
                pass::BASELINE_PATH
            );
            return ExitCode::from(2);
        }
    };
    match pass::run(&root) {
        Ok(result) if result.is_clean() => {
            println!(
                "tidy: {} files clean ({} lints, baselines exact)",
                result.files_scanned,
                lints::LINTS.len()
            );
            ExitCode::SUCCESS
        }
        Ok(result) => {
            for d in &result.diagnostics {
                eprintln!("{d}");
            }
            eprintln!(
                "tidy: {} violation(s) across {} files — see crates/tidy/src/lints.rs for the \
                 catalog and README \"Correctness tooling\" for how to fix or ratchet",
                result.diagnostics.len(),
                result.files_scanned
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("falvolt-tidy: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first ancestor holding the
/// committed baseline — that ancestor is the workspace root.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join(pass::BASELINE_PATH).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
