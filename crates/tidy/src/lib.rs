//! `falvolt-tidy` — the workspace's in-tree static-analysis pass.
//!
//! Modeled on rustc's `tidy`: a dependency-free scanner that enforces the
//! repo-specific contracts clippy cannot see — the `unsafe`/SIMD
//! confinement around `simd::dispatch`, the poison-recovering `guard()`
//! discipline on shared caches, the no-panic rule for library code, and
//! the serde/mint invariants the content-id caches rest on. See
//! [`lints`] for the catalog, [`baseline`] for the ratchet semantics, and
//! [`schema`] for the `BENCH_kernels.json` check shared with
//! `bench_gate --schema-only`.
//!
//! Run it as `cargo run -p falvolt-tidy` from the workspace root (CI does,
//! before the build matrix). Exit codes: `0` clean, `1` violations found,
//! `2` the pass itself could not run.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod pass;
pub mod schema;
