//! A comment/string/raw-string/char-literal-aware Rust token scanner.
//!
//! The lints in this crate are substring-shaped ("no `.lock().unwrap()`",
//! "every `unsafe` carries a `// SAFETY:` comment"), so the one thing the
//! scanner must get right is **where code stops and literal/comment content
//! begins**: a violation spelled inside a string, a raw string, a char
//! literal or a comment is not a violation. The scanner produces a flat
//! token stream with line numbers; it does not parse — lints match token
//! sequences, which is exactly the granularity rustc's own `tidy` operates
//! at.
//!
//! Handled Rust surface:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** … */`);
//! * string literals with escapes (`"a \" b"`, trailing `\` line
//!   continuations) and byte strings (`b"…"`);
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//!   including embedded quotes;
//! * char and byte-char literals (`'x'`, `'\n'`, `'"'`, `b'\''`)
//!   disambiguated from lifetimes and loop labels (`'a`, `'static`,
//!   `'outer: loop`);
//! * numeric literals (so `1.0` does not produce a `.` punct token).

/// What a token is. Literal tokens carry no content — the lints only need
/// to know the region is *not* code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `lock`, `fn`, …).
    Ident,
    /// A single punctuation character (`.`, `#`, `!`, `(`, …).
    Punct(char),
    /// A string, byte-string, raw-string, char or byte-char literal.
    Literal,
    /// A numeric literal (`1`, `0xFF`, `1.0e-5`, `3usize`).
    Number,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A `//…` or `/*…*/` comment (doc comments included). Carries its text
    /// so the `SAFETY:`-comment and waiver lints can read it.
    Comment,
}

/// One scanned token: kind, text (empty for literals) and 1-based line of
/// its first character.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// Identifier/keyword or comment text; empty for other kinds.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// `true` when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Scans `src` into a token stream. Never fails: unterminated literals and
/// comments are tolerated by treating the rest of the file as their content
/// (a file that does not even parse will be caught by the compiler, not by
/// tidy).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(line);
                }
                '\'' => self.char_or_lifetime(line),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    /// Scans a string body after the opening `"` was consumed.
    fn string_body(&mut self, line: u32) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Any escape (including `\"` and `\\`); a trailing `\`
                    // before the newline is a line continuation and the
                    // newline is literal content either way.
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    /// Scans a raw-string body after the `r`/`br` prefix; consumes the
    /// hashes and the opening quote. Returns `false` when what follows is
    /// not actually a raw string (e.g. the ident `r#foo` raw identifier).
    fn raw_string_body(&mut self, line: u32) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        // Content runs until `"` followed by exactly `hashes` hashes.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut n = 0usize;
                while n < hashes && self.peek(n) == Some('#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push(TokKind::Literal, String::new(), line);
        true
    }

    /// `'` starts either a char literal or a lifetime/label.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            // `'\n'`, `'\''`, `'\u{1F600}'` — escaped char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped character (enough for ', n, u…)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, String::new(), line);
            }
            // `'x'` (any single char, including `'"'` and `' '`) — the
            // char after next closes it. A lifetime is never followed by a
            // `'` at that position (`'a'` is a char, `'a ` is a lifetime).
            Some(c) if self.peek(1) == Some('\'') && c != '\'' => {
                self.bump();
                self.bump();
                self.push(TokKind::Literal, String::new(), line);
            }
            // `'a`, `'static`, `'outer:` — lifetime or label.
            Some(c) if is_ident_start(c) => {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
            // Stray quote (macro land); treat as punctuation.
            _ => self.push(TokKind::Punct('\''), String::new(), line),
        }
    }

    /// An identifier — unless it is the `r`/`b`/`br`/`rb` prefix of a raw
    /// or byte literal, in which case the literal is scanned instead.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (text.as_str(), self.peek(0)) {
            // Raw string `r"…"` / `r#"…"#` / byte-raw `br#"…"#`.
            ("r" | "br", Some('"' | '#')) if self.raw_string_body(line) => {}
            // Byte string `b"…"`.
            ("b", Some('"')) => {
                self.bump();
                self.string_body(line);
            }
            // Byte char `b'x'`.
            ("b", Some('\'')) => self.char_or_lifetime(line),
            _ => self.push(TokKind::Ident, text, line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut seen_dot = false;
        let mut prev = ' ';
        while let Some(c) = self.peek(0) {
            let take = match c {
                '0'..='9' | '_' => true,
                'a'..='z' | 'A'..='Z' => true, // 0xFF, 1e5, suffixes (usize)
                '.' if !seen_dot => {
                    // Only a digit may follow the dot, otherwise it is a
                    // method call (`1.0.sqrt()`) or a range (`0..n`).
                    if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                        seen_dot = true;
                        true
                    } else {
                        false
                    }
                }
                '+' | '-' if prev == 'e' || prev == 'E' => true, // 1e-5
                _ => false,
            };
            if !take {
                break;
            }
            prev = c;
            self.bump();
        }
        self.push(TokKind::Number, String::new(), line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_content_from_the_token_stream() {
        let toks = lex(r#"let s = "a.lock().unwrap()"; s.len()"#);
        assert!(toks.iter().all(|t| !t.is_ident("lock")));
        assert!(toks.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn escaped_quotes_do_not_end_a_string() {
        let toks = lex(r#"let s = "he said \"unsafe\" loudly"; x"#);
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_strings_with_hashes_and_embedded_quotes() {
        let toks = lex(r###"let s = r#"a "quoted" .unwrap() inside"#; done"###);
        assert!(toks.iter().all(|t| !t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn byte_and_byte_raw_strings_are_literals() {
        let toks = lex(r##"let a = b"panic!"; let c = br#"panic!"#; end"##);
        assert!(toks.iter().all(|t| !t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.is_ident("end")));
    }

    #[test]
    fn nested_block_comments_close_at_the_outer_level() {
        let toks = lex("/* outer /* inner */ still comment */ code_after");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            1
        );
        assert!(toks.iter().any(|t| t.is_ident("code_after")));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        // '"' and '\'' are chars; 'a in a generic is a lifetime.
        let toks = lex(r#"fn f<'a>(x: &'a str) { let q = '"'; let e = '\''; }"#);
        let lifetimes: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn labels_and_static_lifetimes_are_not_literals() {
        let toks = lex("'outer: loop { break 'outer; } let s: &'static str = x;");
        assert!(toks.iter().all(|t| t.kind != TokKind::Literal));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["'outer", "'outer", "'static"]
        );
    }

    #[test]
    fn char_literal_containing_a_quote_does_not_open_a_string() {
        // If '"' were mis-lexed as opening a string, `hidden` would vanish.
        let toks = lex(r#"let q = '"'; hidden"#);
        assert!(toks.iter().any(|t| t.is_ident("hidden")));
    }

    #[test]
    fn numbers_swallow_their_dots_and_exponents() {
        let toks = lex("let x = 1.0e-5; let y = 0xFF_usize; let r = 0..n; 1.0.sqrt()");
        // `0..n` keeps both range dots as puncts; `1.0` and `1.0e-5` none.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3); // two range dots + the method-call dot
        assert!(toks.iter().any(|t| t.is_ident("sqrt")));
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_tokens() {
        let src = "line1()\n/* spans\nthree\nlines */\nafter()";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after");
        assert_eq!(after.line, 5);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokKind::Comment)
            .expect("comment");
        assert_eq!(comment.line, 2);
    }

    #[test]
    fn doc_comments_carry_their_text() {
        let toks = lex("/// SAFETY: documented\nunsafe { x }");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::Comment)
            .expect("comment");
        assert!(c.text.contains("SAFETY:"));
        assert!(toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn unterminated_string_consumes_the_rest_of_the_file() {
        let toks = lex("let s = \"never closed .unwrap()");
        assert!(toks.iter().all(|t| !t.is_ident("unwrap")));
    }

    #[test]
    fn idents_split_correctly() {
        assert_eq!(
            idents("pub unsafe fn lock_free()"),
            vec!["pub", "unsafe", "fn", "lock_free"]
        );
    }
}
