//! `BENCH_kernels.json` schema check.
//!
//! The bench-smoke JSON is machine-written and machine-gated (`bench_gate`
//! regresses on its `"speedup"` values and skips cross-ISA comparisons via
//! its `"isa"` strings), so a malformed file must fail fast with a precise
//! diagnostic instead of silently weakening the gate. The rules:
//!
//! * the file parses as a JSON object;
//! * every **entry** — an object recording at least one timing field
//!   (`"speedup"` or a key ending in `_ms`), at top level or as an element
//!   of a top-level array — carries an `"isa"` string naming a known SIMD
//!   level ([`KNOWN_ISAS`]);
//! * every `"speedup"` value parses as a finite number `> 0` (a speedup of
//!   `inf`, `NaN` or `-1` is a broken measurement, not a slow kernel);
//! * every `*_ms` value parses as a finite number `>= 0`.
//!
//! The check is exposed as a library function so `bench_gate --schema-only`
//! and the `falvolt-tidy` pass enforce the **same** schema: the gate fails
//! fast at bench time, tidy fails the committed baseline at lint time.
//!
//! The parser is a minimal recursive-descent JSON reader (the workspace has
//! no external dependencies) that tracks the 1-based line of every value so
//! violations point at `file:line` like every other tidy diagnostic.

use std::fmt;

/// The SIMD levels `falvolt_tensor::simd` can report. A new ISA must be
/// added here in the same PR that teaches the dispatcher about it — a typo
/// in a hand-edited baseline must not silently disable ISA matching.
pub const KNOWN_ISAS: &[&str] = &["scalar", "avx2", "avx512", "neon"];

/// One schema violation: the `/`-joined entry path, the 1-based line in the
/// JSON file, and what is wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaViolation {
    /// `/`-joined path of object keys / array indices (e.g.
    /// `sparse_matmul_1024x512x64/[2]/speedup`).
    pub path: String,
    /// 1-based line in the JSON file.
    pub line: u32,
    /// Human-oriented description of the violation.
    pub message: String,
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {}): {}", self.path, self.line, self.message)
    }
}

/// A parsed JSON value with the line its first character sits on.
#[derive(Debug, Clone)]
pub struct Value {
    /// 1-based source line.
    pub line: u32,
    /// The value's payload.
    pub node: Node,
}

/// JSON value payloads. Scalars that are not strings keep their raw token
/// so the schema check can distinguish "parses as a finite number" from
/// garbage like `inf` or `NaN` (which `f64::from_str` happily accepts).
#[derive(Debug, Clone)]
pub enum Node {
    /// `{…}` with members in file order.
    Object(Vec<(String, Value)>),
    /// `[…]`.
    Array(Vec<Value>),
    /// `"…"` with escapes resolved enough for comparisons.
    Str(String),
    /// A number / `true` / `false` / `null` token, verbatim.
    Raw(String),
}

impl Node {
    /// The member of an object by key, if this is an object that has it.
    fn member(&self, key: &str) -> Option<&Value> {
        match self {
            Node::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Checks `text` (the contents of a `BENCH_kernels.json`) against the bench
/// schema. Returns every violation found; an empty vector means the file
/// conforms.
pub fn check_bench_schema(text: &str) -> Vec<SchemaViolation> {
    let mut violations = Vec::new();
    let root = match parse(text) {
        Ok(v) => v,
        Err(e) => {
            violations.push(SchemaViolation {
                path: String::new(),
                line: e.line,
                message: format!("not valid JSON: {}", e.message),
            });
            return violations;
        }
    };
    let Node::Object(members) = &root.node else {
        violations.push(SchemaViolation {
            path: String::new(),
            line: root.line,
            message: "top level must be a JSON object".into(),
        });
        return violations;
    };
    for (key, value) in members {
        match &value.node {
            Node::Object(_) => check_entry(key, value, &mut violations),
            Node::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    check_entry(&format!("{key}/[{i}]"), item, &mut violations);
                }
            }
            // Scalar members (bench name, command line, thread count) are
            // metadata, not entries.
            _ => {}
        }
    }
    violations
}

/// Checks one entry object: `isa` present and known whenever the object
/// records a timing field, numeric fields finite and in range. Recurses
/// into nested objects/arrays (e.g. the `simd_kernels` section groups
/// entries one level down).
fn check_entry(path: &str, value: &Value, violations: &mut Vec<SchemaViolation>) {
    let Node::Object(members) = &value.node else {
        return;
    };
    let records_timing = members
        .iter()
        .any(|(k, _)| k == "speedup" || k.ends_with("_ms"));
    if records_timing {
        match value.node.member("isa") {
            None => violations.push(SchemaViolation {
                path: path.to_string(),
                line: value.line,
                message: "entry records timing fields but has no \"isa\" string".into(),
            }),
            Some(isa) => match &isa.node {
                Node::Str(name) if KNOWN_ISAS.contains(&name.as_str()) => {}
                Node::Str(name) => violations.push(SchemaViolation {
                    path: format!("{path}/isa"),
                    line: isa.line,
                    message: format!("unknown ISA {name:?} (known: {KNOWN_ISAS:?})"),
                }),
                _ => violations.push(SchemaViolation {
                    path: format!("{path}/isa"),
                    line: isa.line,
                    message: "\"isa\" must be a string".into(),
                }),
            },
        }
    }
    for (key, member) in members {
        let member_path = format!("{path}/{key}");
        match &member.node {
            Node::Object(_) => check_entry(&member_path, member, violations),
            Node::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    check_entry(&format!("{member_path}/[{i}]"), item, violations);
                }
            }
            Node::Raw(token) if key == "speedup" => match token.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => {}
                _ => violations.push(SchemaViolation {
                    path: member_path,
                    line: member.line,
                    message: format!("\"speedup\" value {token:?} is not a finite number > 0"),
                }),
            },
            Node::Raw(token) if key.ends_with("_ms") => match token.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= 0.0 => {}
                _ => violations.push(SchemaViolation {
                    path: member_path,
                    line: member.line,
                    message: format!("{key:?} value {token:?} is not a finite number >= 0"),
                }),
            },
            Node::Str(_) if key == "speedup" || key.ends_with("_ms") => {
                violations.push(SchemaViolation {
                    path: member_path,
                    line: member.line,
                    message: format!("{key:?} must be a number, not a string"),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------------

/// A parse failure with the line it happened on.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line of the offending character.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

/// Parses a JSON document. Numbers, booleans and `null` are kept as raw
/// tokens (see [`Node::Raw`]).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.error("trailing content after the top-level value"));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            line: self.line,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(self.error(&format!("expected {want:?}, found {other:?}"))),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        let line = self.line;
        match self.peek() {
            Some('{') => {
                self.bump();
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(Value {
                        line,
                        node: Node::Object(members),
                    });
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect_char(':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => {}
                        Some('}') => break,
                        other => {
                            return Err(
                                self.error(&format!("expected ',' or '}}', found {other:?}"))
                            )
                        }
                    }
                }
                Ok(Value {
                    line,
                    node: Node::Object(members),
                })
            }
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.bump();
                    return Ok(Value {
                        line,
                        node: Node::Array(items),
                    });
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => {}
                        Some(']') => break,
                        other => {
                            return Err(self.error(&format!("expected ',' or ']', found {other:?}")))
                        }
                    }
                }
                Ok(Value {
                    line,
                    node: Node::Array(items),
                })
            }
            Some('"') => {
                let s = self.string()?;
                Ok(Value {
                    line,
                    node: Node::Str(s),
                })
            }
            Some(_) => {
                let mut token = String::new();
                while let Some(c) = self.peek() {
                    if c.is_whitespace() || matches!(c, ',' | '}' | ']') {
                        break;
                    }
                    token.push(c);
                    self.bump();
                }
                if token.is_empty() {
                    return Err(self.error("expected a value"));
                }
                Ok(Value {
                    line,
                    node: Node::Raw(token),
                })
            }
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            code.push(self.bump().ok_or_else(|| {
                                self.error("unexpected end of input in \\u escape")
                            })?);
                        }
                        let c = u32::from_str_radix(&code, 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| self.error("invalid \\u escape"))?;
                        out.push(c);
                    }
                    Some(c) => out.push(c),
                    None => return Err(self.error("unexpected end of input in string")),
                },
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_file_passes() {
        let json = r#"{
            "bench": "kernels",
            "threads": 1,
            "a": { "isa": "avx512", "naive_ms": 2.0, "speedup": 1.4 },
            "b": [ { "isa": "scalar", "dense_ms": 0.5, "speedup": 2.0 },
                   { "isa": "scalar", "dense_ms": 0.5 } ]
        }"#;
        assert_eq!(check_bench_schema(json), Vec::new());
    }

    #[test]
    fn missing_isa_on_a_timing_entry_fails_with_line() {
        let json = "{\n  \"a\": { \"speedup\": 1.2 }\n}";
        let v = check_bench_schema(json);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].path, "a");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("isa"));
    }

    #[test]
    fn unknown_isa_is_rejected() {
        let json = r#"{ "a": { "isa": "avx1024", "speedup": 1.2 } }"#;
        let v = check_bench_schema(json);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("avx1024"));
    }

    #[test]
    fn unparseable_and_nonpositive_speedups_fail() {
        let json = r#"{
            "a": { "isa": "avx2", "speedup": inf },
            "b": { "isa": "avx2", "speedup": -1.0 },
            "c": { "isa": "avx2", "speedup": "fast" }
        }"#;
        let v = check_bench_schema(json);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.path.ends_with("speedup")));
    }

    #[test]
    fn negative_ms_fields_fail() {
        let json = r#"{ "a": { "isa": "neon", "naive_ms": -3.0, "speedup": 1.0 } }"#;
        let v = check_bench_schema(json);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].path, "a/naive_ms");
    }

    #[test]
    fn entries_nested_one_level_down_are_checked() {
        let json = r#"{ "section": { "inner": { "dense_ms": 1.0 } } }"#;
        let v = check_bench_schema(json);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].path, "section/inner");
    }

    #[test]
    fn array_elements_without_timing_fields_need_no_isa() {
        let json = r#"{ "choices": [ { "layer": "fc1", "event_fraction": 1.0 } ] }"#;
        assert_eq!(check_bench_schema(json), Vec::new());
    }

    #[test]
    fn invalid_json_is_one_violation() {
        let v = check_bench_schema("{ \"a\": ");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("JSON"));
    }

    #[test]
    fn committed_bench_file_conforms() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_kernels.json");
        assert_eq!(check_bench_schema(&text), Vec::new());
    }
}
