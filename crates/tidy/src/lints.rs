//! The lint registry: every repo-specific invariant the pass enforces.
//!
//! Each lint matches **token sequences** from [`crate::lexer`] — never raw
//! text — so nothing fires inside strings, raw strings, char literals or
//! comments. Violations carry `file:line` and the lint name; two lints
//! (`unsafe-sites`, `no-panic`) additionally report a per-file census that
//! `main` ratchets against `baseline.toml` (see [`crate::baseline`]).
//!
//! # Lint catalog
//!
//! | lint | scope | rule |
//! |------|-------|------|
//! | `unsafe-safety` | all files | every `unsafe` token carries a `SAFETY:` comment on the same or one of the 3 preceding lines |
//! | `unsafe-sites` | all files (census) | `unsafe` tokens per file, ratcheted: only files in the `[unsafe]` baseline may contain `unsafe`, at most the recorded count |
//! | `target-feature` | all files | `#[target_feature]` fns are confined to `crates/tensor/src/simd.rs` and must stay private (reachable only via `simd::dispatch`) |
//! | `raw-lock` | all files | no `.lock().unwrap()` / `.lock().expect(…)` — use the type's poison-recovering `guard()` accessor (plain test mutexes: `unwrap_or_else(PoisonError::into_inner)`) |
//! | `no-panic` | library code, census | no `.unwrap()` / `.expect(…)` / `panic!` outside `#[cfg(test)]` regions, ratcheted per file via the `[no-panic]` baseline |
//! | `unsafe-header` | crate roots | every falvolt crate's `lib.rs` opens with `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]` |
//! | `allow-unsafe` | all files | `#[allow(unsafe_code)]` (or `#![…]`) only in `crates/tensor/src/simd.rs` |
//! | `allow-deprecated` | all files | `allow(deprecated)` only in `tests/campaign_equivalence.rs` (the pre-redesign equivalence suite) |
//! | `serde-skip` | `tensor.rs` | `Tensor`'s `content_id` and `spike_index` fields carry `#[serde(skip…)]` — ids must never bypass the mint |
//! | `bench-schema` | `BENCH_kernels.json` | every timing entry has a known `isa`; `speedup`/`*_ms` values are finite and in range (see [`crate::schema`]) |
//!
//! # Waivers
//!
//! A justified exception is written at the site, not in a central list: a
//! comment containing `tidy:allow(<lint-name>): <reason>` waives that lint
//! on its own line and the next. The reason is mandatory — a bare waiver
//! is itself a violation — so every exception documents *why* in the diff
//! that introduces it.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The lint that fired (catalog name).
    pub lint: &'static str,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A scanned source file: repo-relative `/`-separated path plus its token
/// stream.
pub struct SourceFile {
    /// Repo-relative path (`crates/tensor/src/simd.rs`).
    pub path: String,
    /// Token stream from [`crate::lexer::lex`].
    pub toks: Vec<Tok>,
}

impl SourceFile {
    /// Lexes `text` under `path`.
    pub fn new(path: impl Into<String>, text: &str) -> Self {
        Self {
            path: path.into(),
            toks: crate::lexer::lex(text),
        }
    }
}

/// Everything one file contributes to the pass: direct violations plus the
/// two ratcheted censuses.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that fail the pass outright.
    pub violations: Vec<Violation>,
    /// Lines of `unsafe` tokens in the file (the census for the `[unsafe]`
    /// baseline is `unsafe_sites.len()`).
    pub unsafe_sites: Vec<u32>,
    /// Sites of panic-capable calls in non-test library code, for the
    /// `[no-panic]` ratchet (the census is `sites.len()`; the sites are
    /// reported individually when a file exceeds its baseline).
    pub panic_sites: Vec<(u32, String)>,
}

/// The sole file allowed to contain `unsafe` / `#[target_feature]` /
/// `allow(unsafe_code)`: the runtime-dispatched SIMD trampoline layer.
pub const SIMD_FILE: &str = "crates/tensor/src/simd.rs";

/// The sole file allowed to `allow(deprecated)`: the suite proving the
/// deprecated PR 5 driver wrappers bit-identical to their plans.
pub const DEPRECATED_ALLOWED_FILE: &str = "tests/campaign_equivalence.rs";

/// Descriptive registry entry, for `--list` and the README catalog.
pub struct LintInfo {
    /// Catalog name (used in diagnostics and `tidy:allow(…)` waivers).
    pub name: &'static str,
    /// One-line rule statement.
    pub summary: &'static str,
}

/// The registry: one entry per lint, in catalog order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: "unsafe-safety",
        summary: "every `unsafe` carries a `SAFETY:` comment within the 3 preceding lines",
    },
    LintInfo {
        name: "unsafe-sites",
        summary: "unsafe sites are inventoried in baseline.toml and ratcheted per file",
    },
    LintInfo {
        name: "target-feature",
        summary: "#[target_feature] fns live only in tensor/src/simd.rs and stay private",
    },
    LintInfo {
        name: "raw-lock",
        summary: "no .lock().unwrap()/.lock().expect() — use guard() accessors",
    },
    LintInfo {
        name: "no-panic",
        summary: "no unwrap()/expect()/panic! in non-test library code (ratcheted)",
    },
    LintInfo {
        name: "unsafe-header",
        summary: "crate roots open with #![forbid(unsafe_code)] or #![deny(unsafe_code)]",
    },
    LintInfo {
        name: "allow-unsafe",
        summary: "allow(unsafe_code) is confined to tensor/src/simd.rs",
    },
    LintInfo {
        name: "allow-deprecated",
        summary: "allow(deprecated) is confined to tests/campaign_equivalence.rs",
    },
    LintInfo {
        name: "serde-skip",
        summary: "Tensor's content_id/spike_index fields carry #[serde(skip…)]",
    },
    LintInfo {
        name: "bench-schema",
        summary: "BENCH_kernels.json entries carry a known isa; timings are finite",
    },
];

/// `true` when `path` is non-test library code subject to the `no-panic`
/// lint: falvolt crate sources and the umbrella `src/` — not `tests/`,
/// `examples/`, `benches/` or the API-shim stand-ins under `shims/`.
pub fn is_library_code(path: &str) -> bool {
    if path.starts_with("shims/") {
        return false;
    }
    (path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/")))
        && path.ends_with(".rs")
}

/// Runs every file-scoped lint on one file.
pub fn check_file(file: &SourceFile) -> FileReport {
    let mut report = FileReport::default();
    let waivers = collect_waivers(file, &mut report.violations);
    let in_test = test_region_mask(&file.toks);

    unsafe_safety(file, &waivers, &mut report);
    target_feature(file, &waivers, &mut report.violations);
    raw_lock(file, &waivers, &mut report.violations);
    no_panic(file, &waivers, &in_test, &mut report);
    allow_confinement(file, &waivers, &mut report.violations);
    if file.path.ends_with("/lib.rs") || file.path == "src/lib.rs" {
        unsafe_header(file, &mut report.violations);
    }
    if file.path == "crates/tensor/src/tensor.rs" {
        serde_skip(file, &mut report.violations);
    }
    report
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// Per-line waivers: line → lint names waived on that line and the next.
type Waivers = BTreeMap<u32, Vec<String>>;

fn collect_waivers(file: &SourceFile, violations: &mut Vec<Violation>) -> Waivers {
    let mut waivers: Waivers = BTreeMap::new();
    for tok in &file.toks {
        if tok.kind != TokKind::Comment {
            continue;
        }
        let Some(rest) = tok.text.split("tidy:allow(").nth(1) else {
            continue;
        };
        let Some((name, after)) = rest.split_once(')') else {
            continue;
        };
        let reason = after.trim_start_matches([':', ' ', '—', '-']);
        if reason.trim().is_empty() {
            violations.push(Violation {
                lint: "waiver",
                file: file.path.clone(),
                line: tok.line,
                message: format!(
                    "tidy:allow({name}) needs a justification: `tidy:allow({name}): <reason>`"
                ),
            });
            continue;
        }
        waivers.entry(tok.line).or_default().push(name.to_string());
    }
    waivers
}

/// `true` when `lint` is waived on `line` (a waiver covers its own line and
/// the following one, so it can sit above the site).
fn waived(waivers: &Waivers, lint: &str, line: u32) -> bool {
    [line.saturating_sub(1), line].iter().any(|l| {
        waivers
            .get(l)
            .is_some_and(|names| names.iter().any(|n| n == lint))
    })
}

// ---------------------------------------------------------------------------
// Test-region mask
// ---------------------------------------------------------------------------

/// Marks tokens inside `#[cfg(test)]`- or `#[test]`-gated items, so the
/// `no-panic` lint skips test code. The gated item is everything up to the
/// first top-level `;`, or the matching close of the first `{`.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('[')) {
            let (end, is_test_gate) = scan_attr(toks, i);
            if is_test_gate {
                // Mark the attribute, any stacked attributes, and the item.
                let mut j = end;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && matches!(toks.get(j + 1), Some(t) if t.is_punct('['))
                {
                    j = scan_attr(toks, j).0;
                }
                let item_end = skip_item(toks, j);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute starting at `#`; returns (index past the closing `]`,
/// whether the attribute gates test code: `#[test]` or a `cfg(…)`
/// containing the bare ident `test`).
fn scan_attr(toks: &[Tok], start: usize) -> (usize, bool) {
    let mut i = start + 1; // at '['
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut saw_test = false;
    let mut first_ident: Option<&str> = None;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('[') | TokKind::Punct('(') => depth += 1,
            TokKind::Punct(']') | TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            TokKind::Ident => {
                if first_ident.is_none() {
                    first_ident = Some(&t.text);
                    if t.text == "cfg" {
                        is_cfg = true;
                    }
                }
                if t.text == "test" {
                    saw_test = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let gates_test = (is_cfg && saw_test) || first_ident == Some("test");
    (i, gates_test)
}

/// Skips one item starting at `start`: to the first top-level `;`, or past
/// the matching close of the first `{`.
fn skip_item(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(';') => return i + 1,
            TokKind::Punct('{') => {
                let mut depth = 0usize;
                while i < toks.len() {
                    match toks[i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => i += 1,
        }
    }
    i
}

// ---------------------------------------------------------------------------
// Individual lints
// ---------------------------------------------------------------------------

/// `unsafe-safety` + the `unsafe-sites` census.
fn unsafe_safety(file: &SourceFile, waivers: &Waivers, report: &mut FileReport) {
    // Lines that end a SAFETY: comment: a multi-line comment block counts
    // from its last line, so a two-line SAFETY comment above a pair of
    // attributes still covers the fn.
    let comment_lines: std::collections::BTreeSet<u32> = file
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Comment)
        .map(|t| t.line)
        .collect();
    let safety_lines: Vec<u32> = file
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Comment && t.text.contains("SAFETY:"))
        .map(|t| {
            let mut last = t.line;
            while comment_lines.contains(&(last + 1)) {
                last += 1;
            }
            last
        })
        .collect();
    for tok in &file.toks {
        if !tok.is_ident("unsafe") {
            continue;
        }
        report.unsafe_sites.push(tok.line);
        let covered = safety_lines
            .iter()
            .any(|&l| l <= tok.line && l + 3 >= tok.line);
        if !covered && !waived(waivers, "unsafe-safety", tok.line) {
            report.violations.push(Violation {
                lint: "unsafe-safety",
                file: file.path.clone(),
                line: tok.line,
                message: "`unsafe` without a `// SAFETY:` comment on the same or one of the 3 \
                          preceding lines"
                    .into(),
            });
        }
    }
}

/// `target-feature`: confinement to the SIMD trampoline file, and privacy
/// of the decorated fn inside it.
fn target_feature(file: &SourceFile, waivers: &Waivers, violations: &mut Vec<Violation>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (end, _) = scan_attr(toks, i);
        let has_target_feature = toks[i..end].iter().any(|t| t.is_ident("target_feature"));
        if !has_target_feature {
            i = end;
            continue;
        }
        let line = toks[i].line;
        if file.path != SIMD_FILE {
            if !waived(waivers, "target-feature", line) {
                violations.push(Violation {
                    lint: "target-feature",
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "#[target_feature] is confined to {SIMD_FILE}; add the kernel there and \
                         reach it via simd::dispatch"
                    ),
                });
            }
        } else {
            // Scan past stacked attributes to the fn, flagging `pub`: the
            // trampolines stay private so the only route in is dispatch().
            let mut j = end;
            while j < toks.len()
                && toks[j].is_punct('#')
                && matches!(toks.get(j + 1), Some(t) if t.is_punct('['))
            {
                j = scan_attr(toks, j).0;
            }
            let mut is_pub = false;
            while j < toks.len() && !toks[j].is_ident("fn") {
                if toks[j].is_ident("pub") {
                    is_pub = true;
                }
                j += 1;
            }
            if is_pub && !waived(waivers, "target-feature", line) {
                violations.push(Violation {
                    lint: "target-feature",
                    file: file.path.clone(),
                    line,
                    message: "#[target_feature] fns must stay private: callers go through \
                              simd::dispatch, which proves the ISA before the call"
                        .into(),
                });
            }
        }
        i = end;
    }
}

/// `raw-lock`: `.lock().unwrap()` / `.lock().expect(…)` anywhere.
fn raw_lock(file: &SourceFile, waivers: &Waivers, violations: &mut Vec<Violation>) {
    let toks: Vec<&Tok> = file
        .toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    for w in toks.windows(7) {
        let [dot1, lock, op, cp, dot2, sink, op2] = w else {
            continue;
        };
        let is_pattern = dot1.is_punct('.')
            && lock.is_ident("lock")
            && op.is_punct('(')
            && cp.is_punct(')')
            && dot2.is_punct('.')
            && (sink.is_ident("unwrap") || sink.is_ident("expect"))
            && op2.is_punct('(');
        if is_pattern && !waived(waivers, "raw-lock", lock.line) {
            violations.push(Violation {
                lint: "raw-lock",
                file: file.path.clone(),
                line: lock.line,
                message: format!(
                    ".lock().{}(…) bypasses poison recovery — use the type's guard() accessor \
                     (plain test mutexes: unwrap_or_else(PoisonError::into_inner))",
                    sink.text
                ),
            });
        }
    }
}

/// `no-panic` census over non-test library code.
fn no_panic(file: &SourceFile, waivers: &Waivers, in_test: &[bool], report: &mut FileReport) {
    if !is_library_code(&file.path) {
        return;
    }
    let toks = &file.toks;
    for (i, tok) in toks.iter().enumerate() {
        if in_test[i] || tok.kind != TokKind::Ident {
            continue;
        }
        let site = match tok.text.as_str() {
            // `.unwrap()` / `.expect(` method calls only: idents like
            // `unwrap_or_else` or the fn name `expect_fn` do not match
            // because the lexer yields them as single tokens.
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && matches!(toks.get(i + 1), Some(t) if t.is_punct('(')) =>
            {
                format!(".{}(…)", tok.text)
            }
            "panic" if matches!(toks.get(i + 1), Some(t) if t.is_punct('!')) => "panic!".into(),
            _ => continue,
        };
        if waived(waivers, "no-panic", tok.line) {
            continue;
        }
        report.panic_sites.push((tok.line, site));
    }
}

/// `allow-unsafe` + `allow-deprecated` confinement.
fn allow_confinement(file: &SourceFile, waivers: &Waivers, violations: &mut Vec<Violation>) {
    let toks: Vec<&Tok> = file
        .toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    for w in toks.windows(3) {
        let [allow, op, what] = w else { continue };
        if !(allow.is_ident("allow") && op.is_punct('(')) {
            continue;
        }
        if what.is_ident("unsafe_code")
            && file.path != SIMD_FILE
            && !waived(waivers, "allow-unsafe", allow.line)
        {
            violations.push(Violation {
                lint: "allow-unsafe",
                file: file.path.clone(),
                line: allow.line,
                message: format!("allow(unsafe_code) is confined to {SIMD_FILE}"),
            });
        }
        if what.is_ident("deprecated")
            && file.path != DEPRECATED_ALLOWED_FILE
            && !waived(waivers, "allow-deprecated", allow.line)
        {
            violations.push(Violation {
                lint: "allow-deprecated",
                file: file.path.clone(),
                line: allow.line,
                message: format!(
                    "allow(deprecated) is confined to {DEPRECATED_ALLOWED_FILE}; migrate to the \
                     Campaign API instead of suppressing the deprecation"
                ),
            });
        }
    }
}

/// `unsafe-header`: crate roots must forbid (or, for the SIMD-bearing
/// tensor crate, deny) unsafe code.
fn unsafe_header(file: &SourceFile, violations: &mut Vec<Violation>) {
    let toks: Vec<&Tok> = file
        .toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let has_header = toks.windows(7).any(|w| {
        let [hash, bang, ob, level, op, what, cp] = w else {
            return false;
        };
        hash.is_punct('#')
            && bang.is_punct('!')
            && ob.is_punct('[')
            && (level.is_ident("forbid") || level.is_ident("deny"))
            && op.is_punct('(')
            && what.is_ident("unsafe_code")
            && cp.is_punct(')')
    });
    if !has_header {
        violations.push(Violation {
            lint: "unsafe-header",
            file: file.path.clone(),
            line: 1,
            message: "crate root lacks #![forbid(unsafe_code)] (or #![deny(unsafe_code)] where \
                      a module-scoped allow is inventoried)"
                .into(),
        });
    }
}

/// `serde-skip`: the mint-bypass guard on `Tensor`'s derived fields.
fn serde_skip(file: &SourceFile, violations: &mut Vec<Violation>) {
    let toks = &file.toks;
    // Locate `struct Tensor {`.
    let Some(start) = toks
        .windows(3)
        .position(|w| w[0].is_ident("struct") && w[1].is_ident("Tensor") && w[2].is_punct('{'))
    else {
        violations.push(Violation {
            lint: "serde-skip",
            file: file.path.clone(),
            line: 1,
            message: "struct Tensor not found — update the serde-skip lint's anchor".into(),
        });
        return;
    };
    let body_start = start + 3;
    let body_end = skip_item(toks, start + 2);
    for field in ["content_id", "spike_index"] {
        let mut found = false;
        let mut skipped = false;
        let mut field_line = 1;
        // Walk fields at struct-body depth: an attr sets the pending flag,
        // a `name :` consumes it.
        let mut pending_skip = false;
        let mut depth = 0usize;
        let mut i = body_start;
        while i < body_end.saturating_sub(1) {
            let t = &toks[i];
            match t.kind {
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct('>') => {
                    depth = depth.saturating_sub(1)
                }
                TokKind::Punct('#') if depth == 0 => {
                    let (end, _) = scan_attr(toks, i);
                    let is_serde_skip = toks[i..end].iter().any(|t| t.is_ident("serde"))
                        && toks[i..end].iter().any(|t| t.is_ident("skip"));
                    if is_serde_skip {
                        pending_skip = true;
                    }
                    i = end;
                    continue;
                }
                TokKind::Ident
                    if depth == 0
                        && t.text == field
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct(':')) =>
                {
                    found = true;
                    skipped = pending_skip;
                    field_line = t.line;
                }
                TokKind::Punct(',') if depth == 0 => pending_skip = false,
                _ => {}
            }
            i += 1;
        }
        if !found || !skipped {
            violations.push(Violation {
                lint: "serde-skip",
                file: file.path.clone(),
                line: field_line,
                message: format!(
                    "Tensor::{field} must exist and carry #[serde(skip…)] — a deserialized id \
                     or index that bypassed the mint could certify a false content equality"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    fn lints_fired(report: &FileReport) -> Vec<&'static str> {
        report.violations.iter().map(|v| v.lint).collect()
    }

    #[test]
    fn raw_lock_fires_with_exact_line() {
        let report = check_file(&file(
            "crates/x/src/a.rs",
            "fn f() {\n    let g = m.lock().unwrap();\n}",
        ));
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].lint, "raw-lock");
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn raw_lock_spanning_lines_still_fires() {
        let report = check_file(&file(
            "crates/x/src/a.rs",
            "fn f() {\n    let g = m\n        .lock()\n        .expect(\"poisoned\");\n}",
        ));
        assert!(lints_fired(&report).contains(&"raw-lock"));
    }

    #[test]
    fn raw_lock_ignores_strings_comments_and_recovering_sinks() {
        let src = r#"
fn f() {
    // .lock().unwrap() in a comment
    let s = ".lock().unwrap()";
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = match m.lock() { Ok(g) => g, Err(p) => p.into_inner() };
}
"#;
        let report = check_file(&file("crates/x/src/a.rs", src));
        assert!(report.violations.is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses_waiver_without_reason_fails() {
        let ok = check_file(&file(
            "crates/x/src/a.rs",
            "// tidy:allow(raw-lock): deliberate poison in a test helper\nlet g = m.lock().unwrap();",
        ));
        assert!(ok.violations.is_empty());
        let bad = check_file(&file(
            "crates/x/src/a.rs",
            "// tidy:allow(raw-lock)\nlet g = m.lock().unwrap();",
        ));
        // A reasonless waiver is itself a violation AND does not suppress.
        assert_eq!(lints_fired(&bad), vec!["waiver", "raw-lock"]);
    }

    #[test]
    fn unsafe_requires_nearby_safety_comment() {
        let bad = check_file(&file("crates/x/src/a.rs", "fn f() { unsafe { g() } }"));
        assert!(lints_fired(&bad).contains(&"unsafe-safety"));
        let ok = check_file(&file(
            "crates/x/src/a.rs",
            "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}",
        ));
        assert!(!lints_fired(&ok).contains(&"unsafe-safety"));
        assert_eq!(ok.unsafe_sites, vec![3]);
    }

    #[test]
    fn safety_comment_covers_at_most_three_lines_down() {
        let far = check_file(&file(
            "crates/x/src/a.rs",
            "// SAFETY: too far away\n\n\n\n\nunsafe { g() }",
        ));
        assert!(lints_fired(&far).contains(&"unsafe-safety"));
    }

    #[test]
    fn target_feature_confined_and_private() {
        let outside = check_file(&file(
            "crates/snn/src/fast.rs",
            "#[target_feature(enable = \"avx2\")]\nunsafe fn go() {}",
        ));
        assert!(lints_fired(&outside).contains(&"target-feature"));
        let public = check_file(&file(
            SIMD_FILE,
            "// SAFETY: caller checks the ISA\n#[target_feature(enable = \"avx2\")]\npub unsafe fn go() {}",
        ));
        assert!(lints_fired(&public).contains(&"target-feature"));
        let private = check_file(&file(
            SIMD_FILE,
            "// SAFETY: caller checks the ISA\n#[target_feature(enable = \"avx2\")]\nunsafe fn go() {}",
        ));
        assert!(!lints_fired(&private).contains(&"target-feature"));
    }

    #[test]
    fn no_panic_counts_library_sites_but_skips_tests() {
        let src = r#"
fn hot() {
    let v = x.unwrap();
    let w = y.expect("msg");
    panic!("boom");
}

#[cfg(test)]
mod tests {
    fn t() { let v = x.unwrap(); panic!("fine in tests"); }
}
"#;
        let report = check_file(&file("crates/x/src/a.rs", src));
        assert_eq!(report.panic_sites.len(), 3);
        let lines: Vec<u32> = report.panic_sites.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn no_panic_skips_test_attr_gated_fns_and_non_library_paths() {
        let src = "#[test]\nfn t() { x.unwrap(); }\n";
        let report = check_file(&file("crates/x/src/a.rs", src));
        assert!(report.panic_sites.is_empty());
        let report = check_file(&file("crates/x/tests/t.rs", "fn t() { x.unwrap(); }"));
        assert!(report.panic_sites.is_empty());
        let report = check_file(&file("shims/rayon/src/lib.rs", "fn t() { x.unwrap(); }"));
        assert!(report.panic_sites.is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { m.lock().unwrap_or_else(p); x.unwrap_or(3); }";
        let report = check_file(&file("crates/x/src/a.rs", src));
        assert!(report.panic_sites.is_empty());
        assert!(report.violations.is_empty());
    }

    #[test]
    fn header_lint_accepts_forbid_or_deny_rejects_absence() {
        let ok = check_file(&file("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n"));
        assert!(ok.violations.is_empty());
        let ok = check_file(&file("crates/x/src/lib.rs", "#![deny(unsafe_code)]\n"));
        assert!(ok.violations.is_empty());
        let bad = check_file(&file("crates/x/src/lib.rs", "//! docs only\n"));
        assert_eq!(lints_fired(&bad), vec!["unsafe-header"]);
    }

    #[test]
    fn allow_unsafe_and_deprecated_are_confined() {
        let bad = check_file(&file("crates/x/src/a.rs", "#![allow(unsafe_code)]\n"));
        assert!(lints_fired(&bad).contains(&"allow-unsafe"));
        let bad = check_file(&file(
            "crates/x/src/a.rs",
            "#[allow(deprecated)]\nfn f() {}\n",
        ));
        assert!(lints_fired(&bad).contains(&"allow-deprecated"));
        let ok = check_file(&file(
            DEPRECATED_ALLOWED_FILE,
            "#![allow(deprecated)]\nfn f() {}\n",
        ));
        assert!(ok.violations.is_empty());
    }

    #[test]
    fn serde_skip_demands_the_attr_on_both_fields() {
        let good = r#"
pub struct Tensor {
    shape: Shape,
    #[serde(skip, default = "fresh_content_id")]
    content_id: u64,
    #[serde(skip)]
    spike_index: Option<Arc<SpikeIndex>>,
}
"#;
        let report = check_file(&file("crates/tensor/src/tensor.rs", good));
        assert!(report.violations.is_empty());
        let missing = r#"
pub struct Tensor {
    #[serde(skip)]
    content_id: u64,
    spike_index: Option<Arc<SpikeIndex>>,
}
"#;
        let report = check_file(&file("crates/tensor/src/tensor.rs", missing));
        assert_eq!(lints_fired(&report), vec!["serde-skip"]);
        assert!(report.violations[0].message.contains("spike_index"));
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = LINTS.iter().map(|l| l.name).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LINTS.len());
    }
}
