//! Ratcheted invariant baselines (`crates/tidy/baseline.toml`).
//!
//! Two lint families police debt that cannot be fully retired in one PR:
//! `unsafe` sites (the SIMD trampolines are load-bearing) and
//! panic-capable calls in library code (`unwrap`/`expect`/`panic!`). For
//! those the committed baseline records a per-file census, and the ratchet
//! rule is asymmetric by design:
//!
//! * **actual > baseline** — new debt. The pass fails with a `file:line`
//!   diagnostic per new site; fix the site or (exceptionally) raise the
//!   baseline in review.
//! * **actual < baseline** — the baseline is **stale**: someone fixed a
//!   site without ratcheting the count down. The pass fails too ("ratchet
//!   down"), so the recorded ceiling always equals reality and the next
//!   regression cannot hide in slack. A baseline that only ever fails in
//!   one direction rots; this one cannot.
//!
//! The format is a flat TOML subset — `[section]` headers and
//! `"file" = count` pairs — parsed here without any external dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed baseline: section name → (repo-relative file → allowed count).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    sections: BTreeMap<String, BTreeMap<String, usize>>,
}

/// A baseline file that does not parse, with its 1-based line.
#[derive(Debug)]
pub struct BaselineError {
    /// 1-based line of the offending entry.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Parses the TOML-subset baseline format: `#` comments, `[section]`
    /// headers, `"quoted/file.rs" = 3` entries.
    pub fn parse(text: &str) -> Result<Self, BaselineError> {
        let mut sections: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = (i + 1) as u32;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Some(name) = trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim().to_string();
                sections.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let Some((key_part, value_part)) = trimmed.split_once('=') else {
                return Err(BaselineError {
                    line,
                    message: format!("expected `\"file\" = count`, found {trimmed:?}"),
                });
            };
            let key = key_part.trim();
            let key = key
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or(BaselineError {
                    line,
                    message: format!("file keys must be double-quoted, found {key:?}"),
                })?;
            let count: usize = value_part.trim().parse().map_err(|_| BaselineError {
                line,
                message: format!("count must be a non-negative integer, found {value_part:?}"),
            })?;
            let section = current.clone().ok_or(BaselineError {
                line,
                message: "entry before any [section] header".into(),
            })?;
            let entries = sections.entry(section).or_default();
            if entries.insert(key.to_string(), count).is_some() {
                return Err(BaselineError {
                    line,
                    message: format!("duplicate entry for {key:?}"),
                });
            }
        }
        Ok(Self { sections })
    }

    /// The allowed count for `file` in `section` (0 when absent — absence
    /// means "this file must be clean").
    pub fn allowed(&self, section: &str, file: &str) -> usize {
        self.sections
            .get(section)
            .and_then(|s| s.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// All files recorded in a section (for stale-entry detection).
    pub fn files(&self, section: &str) -> impl Iterator<Item = (&str, usize)> {
        self.sections
            .get(section)
            .into_iter()
            .flat_map(|s| s.iter().map(|(k, &v)| (k.as_str(), v)))
    }
}

/// Outcome of ratcheting one section against the measured census.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RatchetReport {
    /// Files whose measured count exceeds the baseline: `(file, actual,
    /// allowed)`. New debt — fails the pass.
    pub over: Vec<(String, usize, usize)>,
    /// Baseline entries above the measured count (including entries for
    /// files with no violations left, or files that no longer exist):
    /// `(file, actual, allowed)`. Stale — fails the pass with "ratchet
    /// down" so the recorded ceiling tracks reality.
    pub stale: Vec<(String, usize, usize)>,
}

impl RatchetReport {
    /// `true` when the census matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.over.is_empty() && self.stale.is_empty()
    }
}

/// Compares a measured census (file → count, zero-count files omitted or
/// present — both work) against `section` of the baseline.
pub fn ratchet(
    baseline: &Baseline,
    section: &str,
    census: &BTreeMap<String, usize>,
) -> RatchetReport {
    let mut report = RatchetReport::default();
    for (file, &actual) in census {
        let allowed = baseline.allowed(section, file);
        if actual > allowed {
            report.over.push((file.clone(), actual, allowed));
        }
    }
    for (file, allowed) in baseline.files(section) {
        let actual = census.get(file).copied().unwrap_or(0);
        if actual < allowed {
            report.stale.push((file.to_string(), actual, allowed));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census(entries: &[(&str, usize)]) -> BTreeMap<String, usize> {
        entries.iter().map(|(f, c)| (f.to_string(), *c)).collect()
    }

    #[test]
    fn parses_sections_comments_and_entries() {
        let text = r#"
# ratchet file
[unsafe]
"crates/tensor/src/simd.rs" = 6

[no-panic]
"crates/snn/src/network.rs" = 2
"#;
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.allowed("unsafe", "crates/tensor/src/simd.rs"), 6);
        assert_eq!(b.allowed("no-panic", "crates/snn/src/network.rs"), 2);
        assert_eq!(b.allowed("no-panic", "unlisted.rs"), 0);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = Baseline::parse("[s]\nnot an entry\n").expect_err("malformed");
        assert_eq!(err.line, 2);
        let err = Baseline::parse("\"k\" = 1\n").expect_err("no section");
        assert!(err.message.contains("section"));
        let err = Baseline::parse("[s]\nk = 1\n").expect_err("unquoted");
        assert!(err.message.contains("quoted"));
        let err = Baseline::parse("[s]\n\"k\" = -1\n").expect_err("negative");
        assert!(err.message.contains("integer"));
        let err = Baseline::parse("[s]\n\"k\" = 1\n\"k\" = 2\n").expect_err("dup");
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn ratchet_passes_on_exact_match() {
        let b = Baseline::parse("[x]\n\"a.rs\" = 2\n").expect("parses");
        let report = ratchet(&b, "x", &census(&[("a.rs", 2)]));
        assert!(report.is_clean());
    }

    #[test]
    fn new_debt_is_over() {
        let b = Baseline::parse("[x]\n\"a.rs\" = 2\n").expect("parses");
        let report = ratchet(&b, "x", &census(&[("a.rs", 3), ("b.rs", 1)]));
        assert_eq!(
            report.over,
            vec![("a.rs".into(), 3, 2), ("b.rs".into(), 1, 0)]
        );
        assert!(report.stale.is_empty());
    }

    #[test]
    fn fixed_sites_make_the_baseline_stale() {
        let b = Baseline::parse("[x]\n\"a.rs\" = 2\n\"gone.rs\" = 1\n").expect("parses");
        let report = ratchet(&b, "x", &census(&[("a.rs", 1)]));
        assert_eq!(
            report.stale,
            vec![("a.rs".into(), 1, 2), ("gone.rs".into(), 0, 1)]
        );
        assert!(report.over.is_empty());
    }

    #[test]
    fn zero_count_census_entries_do_not_trip_over() {
        let b = Baseline::default();
        let report = ratchet(&b, "x", &census(&[("a.rs", 0)]));
        assert!(report.is_clean());
    }
}
