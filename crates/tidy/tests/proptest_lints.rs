//! Property tests for the lint layer: lints match token sequences from the
//! lexer, so violation-shaped **text** inside string literals, raw strings,
//! or comments must never fire — and real sites must fire at the right
//! line no matter how much decoy text surrounds them.

use falvolt_tidy::lints::{check_file, SourceFile};
use proptest::prelude::*;

/// Violation-shaped payloads, one per lint family the lexer must not be
/// fooled into matching.
fn payloads() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(".lock().unwrap()".to_string()),
        Just(".lock().expect(\"poisoned\")".to_string()),
        Just("x.unwrap()".to_string()),
        Just("y.expect(\"msg\")".to_string()),
        Just("panic!(\"boom\")".to_string()),
        Just("unsafe { launch() }".to_string()),
        Just("#[target_feature(enable = \"avx2\")]".to_string()),
        Just("#[allow(unsafe_code)]".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nothing_fires_inside_strings_or_comments(
        payload in payloads(),
        ctx in 0usize..3,
        pad in 0usize..5,
    ) {
        let embedded = match ctx {
            0 => format!("let s = \"{}\";", payload.replace('"', "\\\"")),
            1 => format!("let s = r#\"{payload}\"#;"),
            _ => format!("// {payload}"),
        };
        let src = format!("{}pub fn f() {{\n    {embedded}\n}}\n", "\n".repeat(pad));
        let report = check_file(&SourceFile::new("crates/x/src/a.rs", &src));
        prop_assert!(
            report.violations.is_empty(),
            "quoted payload fired: {:?} in {src:?}",
            report.violations
        );
        prop_assert!(report.unsafe_sites.is_empty());
        prop_assert!(report.panic_sites.is_empty());
    }

    #[test]
    fn raw_lock_fires_at_the_right_line_despite_decoys(
        before in 0usize..6,
        decoy in payloads(),
    ) {
        let mut src = String::from("pub fn f(m: &std::sync::Mutex<u32>) -> u32 {\n");
        for _ in 0..before {
            src.push_str(&format!("    // decoy: {decoy}\n"));
        }
        src.push_str("    *m.lock().unwrap()\n}\n");
        // A non-library path so only raw-lock is in scope.
        let report = check_file(&SourceFile::new("crates/x/tests/t.rs", &src));
        let raw: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.lint == "raw-lock")
            .collect();
        prop_assert_eq!(raw.len(), 1, "exactly the real site: {:?}", report.violations);
        prop_assert_eq!(raw[0].line as usize, 2 + before);
        prop_assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn no_panic_census_counts_real_sites_only(
        real in 0usize..5,
        fake in 0usize..5,
    ) {
        let mut src = String::from("pub fn f() {\n");
        for _ in 0..fake {
            src.push_str("    let s = \"x.unwrap()\"; // y.expect(\"no\")\n");
        }
        for _ in 0..real {
            src.push_str("    let v = o.unwrap();\n");
        }
        src.push_str("}\n");
        let report = check_file(&SourceFile::new("crates/x/src/a.rs", &src));
        prop_assert_eq!(report.panic_sites.len(), real);
    }
}
