//! End-to-end fixture tests: the `falvolt-tidy` binary against committed
//! trees under `crates/tidy/fixtures/` — one with a known violation per
//! lint class, one clean, one with an unparseable baseline — asserting the
//! exact `file:line: [lint]` diagnostics and the typed exit codes.

use std::path::Path;
use std::process::{Command, Output};

fn run_on(fixture: &str) -> Output {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    Command::new(env!("CARGO_BIN_EXE_falvolt-tidy"))
        .arg(&root)
        .output()
        .expect("falvolt-tidy runs")
}

#[test]
fn violations_tree_fails_with_exact_file_line_diagnostics() {
    let out = run_on("violations");
    assert_eq!(out.status.code(), Some(1), "violations exit code 1");
    let stderr = String::from_utf8(out.stderr).expect("stderr is utf8");
    let mut lines: Vec<&str> = stderr.lines().collect();
    let summary = lines.pop().expect("summary line");
    assert!(
        summary.contains("18 violation(s)"),
        "summary counts every diagnostic: {summary}"
    );

    // One entry per expected diagnostic, in the pass's sorted output order:
    // the `file:line: [lint]` head is asserted exactly for all of them.
    let expected = [
        "BENCH_kernels.json:3: [bench-schema]",
        "BENCH_kernels.json:4: [bench-schema]",
        "BENCH_kernels.json:5: [bench-schema]",
        "crates/tensor/src/tensor.rs:6: [serde-skip]",
        "crates/tidy/baseline.toml:1: [ratchet]",
        "src/lib.rs:1: [unsafe-header]",
        "src/panics.rs:4: [no-panic]",
        "src/panics.rs:5: [no-panic]",
        "src/panics.rs:7: [no-panic]",
        "tests/attrs.rs:3: [target-feature]",
        "tests/attrs.rs:6: [allow-unsafe]",
        "tests/attrs.rs:9: [allow-deprecated]",
        "tests/locks.rs:10: [raw-lock]",
        "tests/locks.rs:20: [waiver]",
        "tests/locks.rs:21: [raw-lock]",
        "tests/locks.rs:6: [raw-lock]",
        "tests/unsafe_use.rs:4: [unsafe-safety]",
        "tests/unsafe_use.rs:4: [unsafe-sites]",
    ];
    let got: Vec<&str> = lines
        .iter()
        .map(|l| {
            let end = l.find(']').map(|i| i + 1).unwrap_or(l.len());
            &l[..end]
        })
        .collect();
    assert_eq!(got, expected, "full diagnostic list:\n{stderr}");

    // Spot-check full messages: the fix guidance rides along.
    assert!(stderr.contains(
        "tests/locks.rs:6: [raw-lock] .lock().unwrap(…) bypasses poison recovery — \
         use the type's guard() accessor"
    ));
    assert!(stderr.contains(
        "crates/tidy/baseline.toml:1: [ratchet] stale [no-panic] entry: \"src/stale.rs\" \
         counts 0 but the baseline allows 2 — ratchet it down"
    ));
    assert!(stderr.contains("unknown ISA \"avx1024\""));
    assert!(stderr.contains(
        "src/panics.rs:4: [no-panic] .unwrap(…) in library code — file has 3, \
         the [no-panic] baseline allows 0"
    ));
}

#[test]
fn clean_tree_exits_zero_and_reports_counts() {
    let out = run_on("clean");
    assert_eq!(out.status.code(), Some(0), "clean exit code 0");
    assert!(out.stderr.is_empty(), "no diagnostics on a clean tree");
    let stdout = String::from_utf8(out.stdout).expect("stdout is utf8");
    assert!(
        stdout.contains("1 files clean"),
        "clean summary names the file count: {stdout}"
    );
}

#[test]
fn broken_baseline_is_a_pass_error_not_a_violation() {
    let out = run_on("broken");
    assert_eq!(out.status.code(), Some(2), "pass errors exit 2");
    let stderr = String::from_utf8(out.stderr).expect("stderr is utf8");
    assert!(
        stderr.contains("quoted"),
        "the baseline parse error surfaces with its reason: {stderr}"
    );
}

#[test]
fn list_prints_the_full_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_falvolt-tidy"))
        .arg("--list")
        .output()
        .expect("falvolt-tidy runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("stdout is utf8");
    assert_eq!(
        stdout.lines().count(),
        falvolt_tidy::lints::LINTS.len(),
        "one catalog line per registered lint"
    );
    assert!(stdout.contains("raw-lock"));
    assert!(stdout.contains("bench-schema"));
}
