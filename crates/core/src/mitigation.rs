//! Fault-mitigation strategies: FaP, FaPIT and FalVolt (Algorithm 1).
//!
//! All three strategies start from a pre-trained network and a chip fault
//! map:
//!
//! * **FaP** (fault-aware pruning): zero the weights mapped to faulty PEs and
//!   stop — the hardware equivalent is enabling the bypass multiplexers. The
//!   paper notes this is Algorithm 1 with zero retraining epochs.
//! * **FaPIT** (fault-aware pruning with retraining): FaP followed by
//!   retraining of the surviving weights with the threshold voltage *frozen*
//!   at its initial value (1.0 unless overridden).
//! * **FalVolt**: FaP followed by retraining in which each spiking layer's
//!   threshold voltage is a trainable parameter updated by the gradient of
//!   Eq. (4) — the paper's contribution. Pruned weights are re-zeroed at the
//!   end of every epoch (Algorithm 1, line 13).

use crate::prune::PruneMasks;
use crate::Result;
use falvolt_snn::loss::{Loss, MseRateLoss};
use falvolt_snn::optim::{Adam, Optimizer};
use falvolt_snn::trainer::Batch;
use falvolt_snn::{Mode, SpikingNetwork};
use falvolt_systolic::FaultMap;
use falvolt_tensor::reduce;
use serde::{Deserialize, Serialize};

/// Which mitigation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MitigationStrategy {
    /// Fault-aware pruning only (no retraining).
    FaP,
    /// Fault-aware pruning followed by retraining with a fixed threshold
    /// voltage.
    FaPIT {
        /// Number of retraining epochs.
        epochs: usize,
        /// The fixed threshold voltage used during retraining (the paper uses
        /// 1.0 for the FaPIT baseline and sweeps other values in Figure 2).
        threshold: f32,
    },
    /// Fault-aware pruning followed by retraining with per-layer learnable
    /// threshold voltages (the paper's contribution).
    FalVolt {
        /// Number of retraining epochs.
        epochs: usize,
    },
}

impl MitigationStrategy {
    /// FaPIT with the paper's default fixed threshold of 1.0.
    pub fn fapit(epochs: usize) -> Self {
        MitigationStrategy::FaPIT {
            epochs,
            threshold: 1.0,
        }
    }

    /// FalVolt with the given number of retraining epochs.
    pub fn falvolt(epochs: usize) -> Self {
        MitigationStrategy::FalVolt { epochs }
    }

    /// Short name used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            MitigationStrategy::FaP => "FaP",
            MitigationStrategy::FaPIT { .. } => "FaPIT",
            MitigationStrategy::FalVolt { .. } => "FalVolt",
        }
    }

    /// Number of retraining epochs this strategy uses.
    pub fn epochs(&self) -> usize {
        match self {
            MitigationStrategy::FaP => 0,
            MitigationStrategy::FaPIT { epochs, .. } | MitigationStrategy::FalVolt { epochs } => {
                *epochs
            }
        }
    }
}

/// Hyper-parameters of the retraining loop shared by FaPIT and FalVolt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Evaluate test accuracy after every epoch (needed for Figure 8; adds
    /// one evaluation pass per epoch).
    pub track_history: bool,
}

impl RetrainConfig {
    /// Retraining configuration used by the full experiments.
    pub fn paper_like() -> Self {
        Self {
            learning_rate: 5e-3,
            track_history: true,
        }
    }

    /// Faster configuration for tests and quick runs.
    pub fn quick() -> Self {
        Self {
            learning_rate: 1e-2,
            track_history: true,
        }
    }
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self::paper_like()
    }
}

/// Accuracy (and loss) after one retraining epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochPoint {
    /// Epoch index (1-based; epoch 0 is "right after pruning").
    pub epoch: usize,
    /// Mean training loss of the epoch (`None` for the pre-retraining point).
    pub train_loss: Option<f32>,
    /// Test accuracy after the epoch.
    pub test_accuracy: f32,
}

/// The result of running one mitigation strategy on one faulty chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationOutcome {
    /// Strategy label ("FaP", "FaPIT", "FalVolt").
    pub strategy: String,
    /// Fraction of PEs that were faulty.
    pub fault_rate: f64,
    /// Fraction of weights pruned by the fault map.
    pub pruned_weight_fraction: f64,
    /// Test accuracy immediately after pruning (before any retraining).
    pub accuracy_after_pruning: f32,
    /// Test accuracy after the full mitigation.
    pub final_accuracy: f32,
    /// Per-epoch accuracy history (empty when history tracking is disabled
    /// or for FaP).
    pub history: Vec<EpochPoint>,
    /// Threshold voltage of every spiking layer after mitigation, in network
    /// order (`(layer name, V)`), as reported in Figure 6.
    pub thresholds: Vec<(String, f32)>,
    /// Epochs actually run.
    pub epochs_run: usize,
}

impl MitigationOutcome {
    /// The first epoch at which the test accuracy reached `target`, if any —
    /// the convergence metric behind the paper's "2x faster" claim.
    pub fn epochs_to_reach(&self, target: f32) -> Option<usize> {
        epochs_to_reach(&self.history, target)
    }
}

/// The first epoch of `history` whose test accuracy reached `target`, if any
/// — the shared convergence criterion behind
/// [`MitigationOutcome::epochs_to_reach`] and the Figure 8 consumers.
pub fn epochs_to_reach(history: &[EpochPoint], target: f32) -> Option<usize> {
    history
        .iter()
        .find(|p| p.test_accuracy >= target)
        .map(|p| p.epoch)
}

/// Runs mitigation strategies against faulty chips.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mitigator {
    classes: usize,
    retrain: RetrainConfig,
}

impl Mitigator {
    /// Creates a mitigator for a `classes`-way classifier.
    pub fn new(classes: usize, retrain: RetrainConfig) -> Self {
        Self { classes, retrain }
    }

    /// The retraining configuration.
    pub fn retrain_config(&self) -> &RetrainConfig {
        &self.retrain
    }

    /// Runs `strategy` on `network` for the chip described by `fault_map`.
    ///
    /// The network is modified in place (pruned and retrained); clone it
    /// first if the pristine weights are still needed.
    ///
    /// # Errors
    ///
    /// Returns an error when the training data is empty or a forward/backward
    /// pass fails.
    pub fn run(
        &self,
        network: &mut SpikingNetwork,
        fault_map: &FaultMap,
        train: &[Batch],
        test: &[Batch],
        strategy: MitigationStrategy,
    ) -> Result<MitigationOutcome> {
        if train.is_empty() || test.is_empty() {
            return Err(crate::FalvoltError::invalid_config(
                "mitigation needs non-empty training and test sets",
            ));
        }

        // Algorithm 1, lines 1-2: find and zero the weights mapped to faulty
        // PEs.
        let masks = PruneMasks::derive(network, fault_map);
        masks.apply(network)?;
        let accuracy_after_pruning = evaluate(network, test)?;

        // Configure the threshold voltage according to the strategy.
        match strategy {
            MitigationStrategy::FaP => {
                network.set_thresholds_trainable(false);
            }
            MitigationStrategy::FaPIT { threshold, .. } => {
                network.set_thresholds_trainable(false);
                network.set_all_thresholds(threshold);
            }
            MitigationStrategy::FalVolt { .. } => {
                // Algorithm 1, line 3: initialise the threshold parameters and
                // mark them trainable for the retraining phase.
                network.set_thresholds_trainable(true);
            }
        }

        let epochs = strategy.epochs();
        let mut history = Vec::new();
        if self.retrain.track_history && epochs > 0 {
            history.push(EpochPoint {
                epoch: 0,
                train_loss: None,
                test_accuracy: accuracy_after_pruning,
            });
        }

        let mut optimizer = Adam::new(self.retrain.learning_rate);
        let loss = MseRateLoss::new();
        let mut final_accuracy = accuracy_after_pruning;

        // Algorithm 1, lines 4-14: retrain the surviving weights (and, for
        // FalVolt, the per-layer threshold voltages).
        for epoch in 1..=epochs {
            let mut epoch_loss = 0.0f64;
            for batch in train {
                let targets = reduce::one_hot(&batch.labels, self.classes)?;
                network.zero_grads();
                let rates = network.forward(&batch.input, Mode::Train)?;
                epoch_loss += loss.forward(&rates, &targets)? as f64;
                let grad = loss.backward(&rates, &targets)?;
                network.backward(&grad)?;
                optimizer.step(network.params_mut());
            }
            // Algorithm 1, line 13: pruned weights stay zero.
            masks.apply(network)?;

            if self.retrain.track_history || epoch == epochs {
                final_accuracy = evaluate(network, test)?;
            }
            if self.retrain.track_history {
                history.push(EpochPoint {
                    epoch,
                    train_loss: Some((epoch_loss / train.len() as f64) as f32),
                    test_accuracy: final_accuracy,
                });
            }
        }
        if epochs == 0 {
            final_accuracy = accuracy_after_pruning;
        }

        Ok(MitigationOutcome {
            strategy: strategy.label().to_string(),
            fault_rate: fault_map.fault_rate(),
            pruned_weight_fraction: masks.pruned_fraction(),
            accuracy_after_pruning,
            final_accuracy,
            history,
            thresholds: network.thresholds(),
            epochs_run: epochs,
        })
    }
}

/// Evaluates classification accuracy over test batches (evaluation mode).
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn evaluate(network: &mut SpikingNetwork, test: &[Batch]) -> Result<f32> {
    Ok(falvolt_snn::trainer::evaluate(network, test)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_snn::config::ArchitectureConfig;
    use falvolt_snn::trainer::{Batch, Trainer};
    use falvolt_snn::{loss::MseRateLoss as L, optim::Adam as A};
    use falvolt_systolic::{StuckAt, SystolicConfig};
    use falvolt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a tiny, easily separable 4-class problem and a network trained
    /// to high accuracy on it.
    fn trained_setup() -> (SpikingNetwork, Vec<Batch>, Vec<Batch>, usize) {
        let config = ArchitectureConfig::tiny_test();
        let mut network = config.build(21).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let make_batches = |rng: &mut StdRng| {
            let mut batches = Vec::new();
            for _ in 0..4 {
                let mut input = init::uniform(&[4, 1, 8, 8], 0.0, 0.1, rng);
                // Class c = bright quadrant c.
                for c in 0..4 {
                    let (y0, x0) = ((c / 2) * 4, (c % 2) * 4);
                    for y in y0..y0 + 4 {
                        for x in x0..x0 + 4 {
                            input.set(&[c, 0, y, x], 1.0);
                        }
                    }
                }
                batches.push(Batch::new(input, vec![0, 1, 2, 3]).unwrap());
            }
            batches
        };
        let train = make_batches(&mut rng);
        let test = make_batches(&mut rng);
        let mut trainer = Trainer::new(A::new(1e-2), L::new(), config.classes);
        for _ in 0..25 {
            trainer.train_epoch(&mut network, &train).unwrap();
        }
        (network, train, test, config.classes)
    }

    #[test]
    fn baseline_is_accurate_and_heavy_faults_degrade_fap() {
        let (mut network, train, test, classes) = trained_setup();
        let baseline = evaluate(&mut network, &test).unwrap();
        assert!(baseline >= 0.75, "baseline accuracy too low: {baseline}");

        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let fault_map =
            FaultMap::random_with_rate(&systolic, 0.6, 15, StuckAt::One, &mut rng).unwrap();

        let mitigator = Mitigator::new(classes, RetrainConfig::quick());
        let outcome = mitigator
            .run(
                &mut network,
                &fault_map,
                &train,
                &test,
                MitigationStrategy::FaP,
            )
            .unwrap();
        assert_eq!(outcome.strategy, "FaP");
        assert_eq!(outcome.epochs_run, 0);
        assert!(outcome.history.is_empty());
        assert!(outcome.pruned_weight_fraction > 0.3);
        assert_eq!(outcome.final_accuracy, outcome.accuracy_after_pruning);
    }

    #[test]
    fn falvolt_recovers_accuracy_and_learns_thresholds() {
        let (mut network, train, test, classes) = trained_setup();
        let baseline_state = network.export_parameters();
        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let fault_map =
            FaultMap::random_with_rate(&systolic, 0.3, 15, StuckAt::One, &mut rng).unwrap();
        let mitigator = Mitigator::new(classes, RetrainConfig::quick());

        // FaP as the degradation reference.
        let fap = mitigator
            .run(
                &mut network,
                &fault_map,
                &train,
                &test,
                MitigationStrategy::FaP,
            )
            .unwrap();

        network.import_parameters(&baseline_state).unwrap();
        let falvolt = mitigator
            .run(
                &mut network,
                &fault_map,
                &train,
                &test,
                MitigationStrategy::falvolt(12),
            )
            .unwrap();

        assert!(
            falvolt.final_accuracy >= fap.final_accuracy,
            "FalVolt ({}) should not be worse than FaP ({})",
            falvolt.final_accuracy,
            fap.final_accuracy
        );
        assert!(
            falvolt.final_accuracy >= 0.70,
            "FalVolt accuracy {}",
            falvolt.final_accuracy
        );
        // History recorded per epoch plus the post-pruning point.
        assert_eq!(falvolt.history.len(), 13);
        assert_eq!(falvolt.epochs_run, 12);
        // At least one spiking layer should have moved its threshold away
        // from the initial 1.0.
        assert!(falvolt
            .thresholds
            .iter()
            .any(|(_, v)| (*v - 1.0).abs() > 1e-3));
        assert!(falvolt.epochs_to_reach(0.5).is_some());
    }

    #[test]
    fn strategy_labels_and_epochs() {
        assert_eq!(MitigationStrategy::FaP.label(), "FaP");
        assert_eq!(MitigationStrategy::fapit(5).label(), "FaPIT");
        assert_eq!(MitigationStrategy::falvolt(7).label(), "FalVolt");
        assert_eq!(MitigationStrategy::FaP.epochs(), 0);
        assert_eq!(MitigationStrategy::fapit(5).epochs(), 5);
        assert_eq!(MitigationStrategy::falvolt(7).epochs(), 7);
    }

    #[test]
    fn empty_data_is_rejected() {
        let (mut network, train, _test, classes) = trained_setup();
        let systolic = SystolicConfig::new(4, 4).unwrap();
        let fault_map = FaultMap::new(systolic);
        let mitigator = Mitigator::new(classes, RetrainConfig::quick());
        assert!(mitigator
            .run(
                &mut network,
                &fault_map,
                &[],
                &train,
                MitigationStrategy::FaP
            )
            .is_err());
        assert!(mitigator
            .run(
                &mut network,
                &fault_map,
                &train,
                &[],
                MitigationStrategy::FaP
            )
            .is_err());
        assert!(mitigator.retrain_config().track_history);
    }

    #[test]
    fn fapit_keeps_thresholds_fixed_while_falvolt_moves_them() {
        let (mut network, train, test, classes) = trained_setup();
        let baseline_state = network.export_parameters();
        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let fault_map =
            FaultMap::random_with_rate(&systolic, 0.3, 15, StuckAt::One, &mut rng).unwrap();
        let mitigator = Mitigator::new(classes, RetrainConfig::quick());

        let fapit = mitigator
            .run(
                &mut network,
                &fault_map,
                &train,
                &test,
                MitigationStrategy::fapit(4),
            )
            .unwrap();
        assert!(
            fapit
                .thresholds
                .iter()
                .all(|(_, v)| (*v - 1.0).abs() < 1e-6),
            "FaPIT must not move thresholds"
        );

        network.import_parameters(&baseline_state).unwrap();
        let falvolt = mitigator
            .run(
                &mut network,
                &fault_map,
                &train,
                &test,
                MitigationStrategy::falvolt(4),
            )
            .unwrap();
        assert!(
            falvolt
                .thresholds
                .iter()
                .any(|(_, v)| (*v - 1.0).abs() > 1e-4),
            "FalVolt should adapt thresholds"
        );
    }
}
