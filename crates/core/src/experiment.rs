//! Figure-level experiment runners.
//!
//! Every table/figure of the paper's evaluation has a function here that
//! regenerates its data series; the benchmark harness (`falvolt-bench`) and
//! the `reproduce` binary are thin wrappers around this module. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for measured
//! results.
//!
//! The experiments run on synthetic datasets and a scaled network (see the
//! substitution table in `DESIGN.md` §3), so absolute accuracies differ from
//! the paper; the *shape* of every curve is what the reproduction targets.

use crate::campaign::{self, Axis, Campaign};
use crate::mitigation::{EpochPoint, MitigationStrategy};
use crate::vulnerability::{SweepCaches, SweepPoint, SweepSeries, VulnerabilityConfig};
use crate::Result;
use falvolt_datasets::{
    to_batches, Dataset, DatasetConfig, LabeledBatch, SyntheticDvsGesture, SyntheticMnist,
    SyntheticNMnist,
};
use falvolt_snn::config::ArchitectureConfig;
use falvolt_snn::loss::MseRateLoss;
use falvolt_snn::optim::Adam;
use falvolt_snn::trainer::{Batch, Trainer};
use falvolt_snn::SpikingNetwork;
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig};
use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Dataset kinds and experiment scales
// ---------------------------------------------------------------------------

/// Which of the paper's three workloads an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Static MNIST-like images.
    Mnist,
    /// Neuromorphic N-MNIST-like saccade events.
    NMnist,
    /// Neuromorphic DVS-Gesture-like motion events.
    DvsGesture,
}

impl DatasetKind {
    /// All three workloads, in the order the paper lists them.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Mnist,
        DatasetKind::NMnist,
        DatasetKind::DvsGesture,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Mnist => "MNIST",
            DatasetKind::NMnist => "N-MNIST",
            DatasetKind::DvsGesture => "DVS128-Gesture",
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetKind::Mnist | DatasetKind::NMnist => 10,
            DatasetKind::DvsGesture => 11,
        }
    }

    /// The scaled network architecture for this workload.
    pub fn architecture(&self) -> ArchitectureConfig {
        match self {
            DatasetKind::Mnist => ArchitectureConfig::mnist_like(),
            DatasetKind::NMnist => ArchitectureConfig::nmnist_like(),
            DatasetKind::DvsGesture => ArchitectureConfig::dvs_gesture_like(),
        }
    }
}

/// How much compute an experiment run spends. All scales exercise identical
/// code paths; they differ only in dataset size, epochs and fault-map
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Minutes-long smoke scale used by unit/integration tests.
    Tiny,
    /// The default for the `reproduce` binary and the benches.
    Quick,
    /// Closer to the paper's sample counts and epoch budgets.
    Full,
}

impl ExperimentScale {
    /// Samples generated per class (train set; the test set uses the same).
    pub fn samples_per_class(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 10,
            ExperimentScale::Quick => 16,
            ExperimentScale::Full => 24,
        }
    }

    /// Baseline (fault-free) training epochs.
    pub fn baseline_epochs(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 25,
            ExperimentScale::Quick => 35,
            ExperimentScale::Full => 50,
        }
    }

    /// Retraining epochs used by FaPIT / FalVolt comparisons.
    pub fn retrain_epochs(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 8,
            ExperimentScale::Quick => 15,
            ExperimentScale::Full => 30,
        }
    }

    /// Mini-batch size.
    pub fn batch_size(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 16,
            ExperimentScale::Quick | ExperimentScale::Full => 16,
        }
    }

    /// Fault-map iterations per vulnerability sweep point.
    pub fn vulnerability_config(&self) -> VulnerabilityConfig {
        match self {
            ExperimentScale::Tiny => VulnerabilityConfig {
                iterations: 1,
                seed: 0xFA11,
            },
            ExperimentScale::Quick => VulnerabilityConfig::quick(),
            ExperimentScale::Full => VulnerabilityConfig::paper_like(),
        }
    }

    fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig::default_experiment().with_samples_per_class(self.samples_per_class())
    }
}

// ---------------------------------------------------------------------------
// Experiment context: data + trained baseline
// ---------------------------------------------------------------------------

/// A prepared experiment: generated train/test data and a network trained to
/// its fault-free baseline accuracy, ready to be attacked with fault maps.
#[derive(Debug)]
pub struct ExperimentContext {
    kind: DatasetKind,
    scale: ExperimentScale,
    architecture: ArchitectureConfig,
    systolic: SystolicConfig,
    train: Vec<Batch>,
    test: Vec<Batch>,
    network: SpikingNetwork,
    baseline_state: Vec<Tensor>,
    baseline_accuracy: f32,
    seed: u64,
    /// Sweep caches keyed per prepared test set: the figure runners share
    /// one pair, so Figure 5a/5b/5c reuse the encoder lowerings of the same
    /// test batches across figures instead of rebuilding them per sweep.
    caches: SweepCaches,
}

impl ExperimentContext {
    /// Generates the dataset, builds the architecture and trains the
    /// fault-free baseline.
    ///
    /// # Errors
    ///
    /// Propagates network-construction and training errors.
    pub fn prepare(kind: DatasetKind, scale: ExperimentScale, seed: u64) -> Result<Self> {
        Self::prepare_with_epochs(kind, scale, seed, scale.baseline_epochs())
    }

    /// [`ExperimentContext::prepare`] with no baseline training: the
    /// campaign unit tests exercise the sweep machinery, not the
    /// classifier, and skipping the epochs keeps them cheap.
    #[cfg(test)]
    pub(crate) fn prepare_untrained(
        kind: DatasetKind,
        scale: ExperimentScale,
        seed: u64,
    ) -> Result<Self> {
        Self::prepare_with_epochs(kind, scale, seed, 0)
    }

    fn prepare_with_epochs(
        kind: DatasetKind,
        scale: ExperimentScale,
        seed: u64,
        baseline_epochs: usize,
    ) -> Result<Self> {
        let data_config = scale.dataset_config();
        let architecture = kind.architecture();
        let (train_raw, test_raw) = generate_dataset(kind, &data_config, seed);
        let train = convert_batches(to_batches(train_raw.as_ref(), scale.batch_size(), seed))?;
        let test = convert_batches(to_batches(
            test_raw.as_ref(),
            scale.batch_size(),
            seed.wrapping_add(1),
        ))?;

        let mut network = architecture.build(seed)?;
        let mut trainer = Trainer::new(Adam::new(5e-3), MseRateLoss::new(), kind.classes());
        for _ in 0..baseline_epochs {
            trainer.train_epoch(&mut network, &train)?;
        }
        let baseline_accuracy = falvolt_snn::trainer::evaluate(&mut network, &test)?;
        let baseline_state = network.export_parameters();

        // A 16x16 grid keeps the network-to-array size ratio comparable to
        // the paper's 256x256 array serving much larger layers; Figure 5c
        // sweeps other sizes explicitly.
        let systolic = SystolicConfig::new(16, 16)?;

        Ok(Self {
            kind,
            scale,
            architecture,
            systolic,
            train,
            test,
            network,
            baseline_state,
            baseline_accuracy,
            seed,
            caches: SweepCaches::new(),
        })
    }

    /// The workload this context was prepared for.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The experiment scale.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The base seed this context was prepared with (campaigns mix their
    /// per-cell seeds from it by default).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Shared access to the context's network (the trained baseline between
    /// experiments; campaign workers carve scenario views off it).
    pub fn network(&self) -> &SpikingNetwork {
        &self.network
    }

    /// The network architecture.
    pub fn architecture(&self) -> &ArchitectureConfig {
        &self.architecture
    }

    /// The systolic-array configuration experiments run against.
    pub fn systolic_config(&self) -> &SystolicConfig {
        &self.systolic
    }

    /// Overrides the systolic-array configuration.
    pub fn set_systolic_config(&mut self, config: SystolicConfig) {
        self.systolic = config;
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.kind.classes()
    }

    /// Training batches.
    pub fn train_batches(&self) -> &[Batch] {
        &self.train
    }

    /// Test batches.
    pub fn test_batches(&self) -> &[Batch] {
        &self.test
    }

    /// Fault-free baseline accuracy of the trained network.
    pub fn baseline_accuracy(&self) -> f32 {
        self.baseline_accuracy
    }

    /// The context-owned sweep caches (one pair per prepared test set),
    /// shared by every figure runner so repeated sweeps over the same data
    /// reuse lowerings and clean products across figures.
    pub fn caches(&self) -> &SweepCaches {
        &self.caches
    }

    /// Restores the network to the trained baseline (undoing pruning,
    /// retraining and threshold changes from a previous mitigation run).
    ///
    /// # Errors
    ///
    /// Propagates parameter-import errors.
    pub fn restore_baseline(&mut self) -> Result<()> {
        self.network.import_parameters(&self.baseline_state)?;
        self.network.set_thresholds_trainable(false);
        self.network
            .set_backend(falvolt_snn::FloatBackend::shared());
        Ok(())
    }

    /// Mutable access to the context's network (restore the baseline first if
    /// the previous experiment modified it).
    pub fn network_mut(&mut self) -> &mut SpikingNetwork {
        &mut self.network
    }

    /// Hands out a copy of the baseline network. The layer structure is a
    /// scenario view of the context's network (parameters shared
    /// copy-on-write, not rebuilt from scratch) with the trained baseline
    /// state imported and thresholds frozen, so callers get the exact
    /// pre-mitigation network without an O(weights) allocation unless they
    /// go on to mutate it.
    ///
    /// # Errors
    ///
    /// Propagates parameter-import errors.
    pub fn network_clone(&self) -> Result<SpikingNetwork> {
        let mut network = self.network.scenario_view();
        network.import_parameters(&self.baseline_state)?;
        network.set_thresholds_trainable(false);
        network.set_backend(falvolt_snn::FloatBackend::shared());
        Ok(network)
    }
}

fn generate_dataset(
    kind: DatasetKind,
    config: &DatasetConfig,
    seed: u64,
) -> (Box<dyn Dataset>, Box<dyn Dataset>) {
    match kind {
        DatasetKind::Mnist => {
            let (train, test) = SyntheticMnist::train_test(config, seed);
            (Box::new(train), Box::new(test))
        }
        DatasetKind::NMnist => {
            let config = config.with_time_steps(kind.architecture().time_steps);
            let (train, test) = SyntheticNMnist::train_test(&config, seed);
            (Box::new(train), Box::new(test))
        }
        DatasetKind::DvsGesture => {
            let config = config.with_time_steps(kind.architecture().time_steps);
            let (train, test) = SyntheticDvsGesture::train_test(&config, seed);
            (Box::new(train), Box::new(test))
        }
    }
}

fn convert_batches(batches: Vec<LabeledBatch>) -> Result<Vec<Batch>> {
    batches
        .into_iter()
        .map(|b| Ok(Batch::new(b.input, b.labels)?))
        .collect()
}

// ---------------------------------------------------------------------------
// Shared fault-rate cell sweep machinery
// ---------------------------------------------------------------------------

/// One retraining/evaluation cell handed to [`run_fault_rate_cells`]'s
/// closure: a scenario view of the trained baseline (sweep cache installed)
/// plus the context's data splits.
pub struct SweepCell<'a> {
    /// Scenario view of the baseline network, sweep cache already installed.
    pub network: SpikingNetwork,
    /// Training batches.
    pub train: &'a [Batch],
    /// Test batches.
    pub test: &'a [Batch],
}

/// Runs one cell per `(fault rate, payload)` pair, in parallel, against the
/// restored baseline:
///
/// 1. draw one fault map per rate into a pool (sequentially, from
///    `seed_mix(ctx seed, rate)`, so results are worker-count-independent),
/// 2. build the rate-major cell list; cells *borrow* their map from the pool,
/// 3. restore the baseline and hand every cell a scenario view with one
///    shared sweep cache (cells that evaluate identical networks — e.g. the
///    strategies of one rate at epoch 0 — share prefix work through it),
/// 4. collect results in cell order and restore the baseline again.
///
/// The [`crate::campaign`] scheduler has absorbed this boilerplate (its
/// retraining path is the generalisation of steps 1–4); this function stays
/// as the pre-campaign **reference implementation** that the campaign
/// equivalence tests replay the legacy drivers against, bit for bit.
///
/// # Errors
///
/// Propagates fault-map draw errors and the first cell error in cell order.
pub fn run_fault_rate_cells<P, R, F>(
    ctx: &mut ExperimentContext,
    fault_rates: &[f64],
    seed_mix: impl Fn(u64, f64) -> u64,
    payloads: &[P],
    cell: F,
) -> Result<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(SweepCell<'_>, f64, &FaultMap, &P) -> Result<R> + Sync,
{
    let msb = ctx.systolic.accumulator_format().msb();
    let mut pool = Vec::with_capacity(fault_rates.len());
    for &fault_rate in fault_rates {
        let mut rng = StdRng::seed_from_u64(seed_mix(ctx.seed, fault_rate));
        pool.push(FaultMap::random_with_rate(
            &ctx.systolic,
            fault_rate,
            msb,
            StuckAt::One,
            &mut rng,
        )?);
    }
    let cells: Vec<(f64, &FaultMap, &P)> = fault_rates
        .iter()
        .zip(&pool)
        .flat_map(|(&fault_rate, fault_map)| {
            payloads
                .iter()
                .map(move |payload| (fault_rate, fault_map, payload))
        })
        .collect();
    ctx.restore_baseline()?;
    let baseline = &ctx.network;
    let (train, test) = (&ctx.train, &ctx.test);
    let sweep_cache = std::sync::Arc::new(falvolt_snn::SweepCache::new());
    let results: Vec<Result<R>> = cells
        .into_par_iter()
        .map(|(fault_rate, fault_map, payload)| {
            let mut network = baseline.scenario_view();
            network.set_sweep_cache(Some(std::sync::Arc::clone(&sweep_cache)));
            cell(
                SweepCell {
                    network,
                    train,
                    test,
                },
                fault_rate,
                fault_map,
                payload,
            )
        })
        .collect();
    let rows = results.into_iter().collect::<Result<Vec<_>>>()?;
    ctx.restore_baseline()?;
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 2: fixed-threshold retraining sweep (motivational study)
// ---------------------------------------------------------------------------

/// One cell of the Figure 2 bar chart: retraining accuracy at a fixed
/// threshold voltage under a given fault rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSweepRow {
    /// The fixed threshold voltage used for retraining.
    pub threshold: f32,
    /// Fraction of faulty PEs.
    pub fault_rate: f64,
    /// Test accuracy after retraining.
    pub accuracy: f32,
}

/// The Figure 2 report for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSweepReport {
    /// Dataset label.
    pub dataset: String,
    /// Fault-free baseline accuracy.
    pub baseline_accuracy: f32,
    /// One row per (threshold, fault rate) pair.
    pub rows: Vec<ThresholdSweepRow>,
}

/// Figure 2: retrains the pruned network at several *fixed* threshold
/// voltages and fault rates, demonstrating that the best threshold depends on
/// both the dataset and the fault rate — the motivation for learning it.
///
/// A thin plan over the [`crate::campaign`] scheduler (fault-rate ×
/// threshold axes, the historical per-rate seed mixer), bit-identical to the
/// pre-campaign driver.
///
/// # Errors
///
/// Propagates mitigation errors.
#[deprecated(note = "use falvolt::campaign")]
pub fn threshold_sweep(
    ctx: &mut ExperimentContext,
    thresholds: &[f32],
    fault_rates: &[f64],
    epochs: usize,
) -> Result<ThresholdSweepReport> {
    let run = Campaign::new(ctx)
        .axis(Axis::FaultRate(fault_rates.to_vec()))
        .axis(Axis::Threshold(thresholds.to_vec()))
        .retrain_epochs(epochs)
        .seed_mixer(campaign::mixers::per_fault_rate)
        .run()?;
    Ok(ThresholdSweepReport {
        dataset: ctx.kind.label().to_string(),
        baseline_accuracy: ctx.baseline_accuracy,
        rows: run
            .cells()
            .iter()
            .map(|cell| ThresholdSweepRow {
                threshold: cell.spec.threshold.expect("threshold axis set"),
                fault_rate: cell.spec.fault_rate.expect("fault-rate axis set"),
                accuracy: cell.accuracy,
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------------
// Figure 5: vulnerability sweeps
// ---------------------------------------------------------------------------

/// The Figure 5a report for one dataset: accuracy vs fault bit position, for
/// stuck-at-0 and stuck-at-1 faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitPositionReport {
    /// Dataset label.
    pub dataset: String,
    /// One series per stuck-at polarity.
    pub series: Vec<SweepSeries>,
}

/// Figure 5a: accuracy vs accumulator fault-bit position.
///
/// A thin plan over the [`crate::campaign`] scheduler (polarity × bit ×
/// fixed-PE-count axes, the historical per-bit seed mixer), bit-identical to
/// the pre-campaign driver.
///
/// # Errors
///
/// Propagates sweep errors.
#[deprecated(note = "use falvolt::campaign")]
pub fn bit_position_experiment(
    ctx: &mut ExperimentContext,
    bits: &[u32],
    faulty_pes: usize,
) -> Result<BitPositionReport> {
    let config = ctx.scale.vulnerability_config();
    let run = Campaign::new(ctx)
        .axis(Axis::Polarity(StuckAt::ALL.to_vec()))
        .axis(Axis::BitPosition(bits.to_vec()))
        .axis(Axis::FaultyPes(vec![faulty_pes]))
        .scenarios_per_cell(config.iterations)
        .seed(config.seed)
        .seed_mixer(campaign::mixers::per_bit)
        .run()?;
    // One series per polarity, cells bit-minor within each polarity.
    let series = StuckAt::ALL
        .iter()
        .zip(run.cells().chunks(bits.len()))
        .map(|(kind, chunk)| SweepSeries {
            label: kind.to_string(),
            points: chunk
                .iter()
                .map(|cell| SweepPoint {
                    x: f64::from(cell.spec.bit.expect("bit axis set")),
                    accuracy: cell.accuracy,
                    iterations: cell.scenarios,
                })
                .collect(),
        })
        .collect();
    Ok(BitPositionReport {
        dataset: ctx.kind.label().to_string(),
        series,
    })
}

/// The Figure 5b report for one dataset: accuracy vs number of faulty PEs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyPeReport {
    /// Dataset label.
    pub dataset: String,
    /// Baseline accuracy (the zero-fault reference).
    pub baseline_accuracy: f32,
    /// The sweep series (MSB stuck-at-1 faults).
    pub series: SweepSeries,
}

/// Figure 5b: accuracy vs number of faulty PEs (worst-case MSB stuck-at-1).
///
/// A thin plan over the [`crate::campaign`] scheduler (one faulty-PE-count
/// axis, the historical per-count seed mixer), bit-identical to the
/// pre-campaign driver.
///
/// # Errors
///
/// Propagates sweep errors.
#[deprecated(note = "use falvolt::campaign")]
pub fn faulty_pe_experiment(
    ctx: &mut ExperimentContext,
    pe_counts: &[usize],
) -> Result<FaultyPeReport> {
    let config = ctx.scale.vulnerability_config();
    let run = Campaign::new(ctx)
        .axis(Axis::FaultyPes(pe_counts.to_vec()))
        .scenarios_per_cell(config.iterations)
        .seed(config.seed)
        .seed_mixer(campaign::mixers::per_faulty_pe_count)
        .run()?;
    Ok(FaultyPeReport {
        dataset: ctx.kind.label().to_string(),
        baseline_accuracy: ctx.baseline_accuracy,
        series: SweepSeries {
            label: "msb-sa1".to_string(),
            points: run
                .cells()
                .iter()
                .map(|cell| SweepPoint {
                    x: cell.spec.faulty_pes.expect("faulty-PE axis set") as f64,
                    accuracy: cell.accuracy,
                    iterations: cell.scenarios,
                })
                .collect(),
        },
    })
}

/// The Figure 5c report for one dataset: accuracy vs systolic-array size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArraySizeReport {
    /// Dataset label.
    pub dataset: String,
    /// Number of faulty PEs held constant across sizes.
    pub faulty_pes: usize,
    /// The sweep series (x = total PE count).
    pub series: SweepSeries,
}

/// Figure 5c: accuracy vs array size for a fixed number of faulty PEs.
///
/// A thin plan over the [`crate::campaign`] scheduler (array-size ×
/// fixed-PE-count axes, the historical per-size seed mixer), bit-identical
/// to the pre-campaign driver.
///
/// # Errors
///
/// Propagates sweep errors.
#[deprecated(note = "use falvolt::campaign")]
pub fn array_size_experiment(
    ctx: &mut ExperimentContext,
    sizes: &[usize],
    faulty_pes: usize,
) -> Result<ArraySizeReport> {
    let config = ctx.scale.vulnerability_config();
    let run = Campaign::new(ctx)
        .axis(Axis::ArraySize(sizes.to_vec()))
        .axis(Axis::FaultyPes(vec![faulty_pes]))
        .scenarios_per_cell(config.iterations)
        .seed(config.seed)
        .seed_mixer(campaign::mixers::per_array_size)
        .run()?;
    Ok(ArraySizeReport {
        dataset: ctx.kind.label().to_string(),
        faulty_pes,
        series: SweepSeries {
            label: "fixed-fault-count".to_string(),
            points: run
                .cells()
                .iter()
                .map(|cell| SweepPoint {
                    x: (cell.spec.systolic.rows() * cell.spec.systolic.cols()) as f64,
                    accuracy: cell.accuracy,
                    iterations: cell.scenarios,
                })
                .collect(),
        },
    })
}

// ---------------------------------------------------------------------------
// Figures 6 & 7: mitigation comparison and optimized thresholds
// ---------------------------------------------------------------------------

/// Outcome of one (fault rate, strategy) cell of Figure 7, plus the learned
/// thresholds that Figure 6 plots for the FalVolt rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationRow {
    /// Fraction of faulty PEs.
    pub fault_rate: f64,
    /// Strategy label ("FaP", "FaPIT", "FalVolt").
    pub strategy: String,
    /// Test accuracy after mitigation.
    pub accuracy: f32,
    /// Per-layer threshold voltages after mitigation (Figure 6 for FalVolt).
    pub thresholds: Vec<(String, f32)>,
}

/// The combined Figure 6 / Figure 7 report for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationComparisonReport {
    /// Dataset label.
    pub dataset: String,
    /// Fault-free baseline accuracy.
    pub baseline_accuracy: f32,
    /// One row per (fault rate, strategy) pair.
    pub rows: Vec<MitigationRow>,
}

/// Figures 6 and 7: compares FaP, FaPIT and FalVolt at the given fault rates
/// and records the per-layer threshold voltages FalVolt learns.
///
/// A thin plan over the [`crate::campaign`] scheduler (fault-rate ×
/// strategy axes, the historical per-rate seed mixer; the three strategies
/// of one rate retrain against the same pooled chip), bit-identical to the
/// pre-campaign driver.
///
/// # Errors
///
/// Propagates mitigation errors.
#[deprecated(note = "use falvolt::campaign")]
pub fn mitigation_comparison(
    ctx: &mut ExperimentContext,
    fault_rates: &[f64],
    epochs: usize,
) -> Result<MitigationComparisonReport> {
    let run = Campaign::new(ctx)
        .axis(Axis::FaultRate(fault_rates.to_vec()))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::FaP,
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .seed_mixer(campaign::mixers::per_fault_rate_rotated)
        .run()?;
    Ok(MitigationComparisonReport {
        dataset: ctx.kind.label().to_string(),
        baseline_accuracy: ctx.baseline_accuracy,
        rows: run
            .cells()
            .iter()
            .map(|cell| {
                let outcome = cell
                    .outcome()
                    .expect("strategy axis makes retraining cells");
                MitigationRow {
                    fault_rate: cell.spec.fault_rate.expect("fault-rate axis set"),
                    strategy: outcome.strategy.clone(),
                    accuracy: outcome.final_accuracy,
                    thresholds: outcome.thresholds.clone(),
                }
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------------
// Figure 8: convergence (accuracy vs retraining epochs)
// ---------------------------------------------------------------------------

/// The Figure 8 report for one dataset: per-epoch accuracy of FaPIT and
/// FalVolt at a fixed fault rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Dataset label.
    pub dataset: String,
    /// Fraction of faulty PEs.
    pub fault_rate: f64,
    /// Fault-free baseline accuracy.
    pub baseline_accuracy: f32,
    /// Per-epoch accuracy of FaPIT (fixed threshold 1.0).
    pub fapit: Vec<EpochPoint>,
    /// Per-epoch accuracy of FalVolt.
    pub falvolt: Vec<EpochPoint>,
}

impl ConvergenceReport {
    /// Epochs each strategy needs to reach `fraction` of the baseline
    /// accuracy: `(FaPIT, FalVolt)`. The paper's headline claim is that the
    /// FalVolt number is about half the FaPIT number.
    pub fn epochs_to_fraction_of_baseline(&self, fraction: f32) -> (Option<usize>, Option<usize>) {
        let target = self.baseline_accuracy * fraction;
        (
            crate::mitigation::epochs_to_reach(&self.fapit, target),
            crate::mitigation::epochs_to_reach(&self.falvolt, target),
        )
    }
}

/// Figure 8: records per-epoch test accuracy of FaPIT and FalVolt while
/// retraining under `fault_rate` faulty PEs.
///
/// A thin plan over the [`crate::campaign`] scheduler (a one-rate
/// fault-rate axis × the FaPIT/FalVolt strategy axis; both strategies
/// retrain against the same pooled chip drawn from the historical fixed
/// seed), bit-identical to the pre-campaign driver.
///
/// # Errors
///
/// Propagates mitigation errors.
#[deprecated(note = "use falvolt::campaign")]
pub fn convergence_experiment(
    ctx: &mut ExperimentContext,
    fault_rate: f64,
    epochs: usize,
) -> Result<ConvergenceReport> {
    let run = Campaign::new(ctx)
        .axis(Axis::FaultRate(vec![fault_rate]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .seed_mixer(campaign::mixers::convergence)
        .run()?;
    let history = |cell: &crate::campaign::CellResult| {
        cell.outcome()
            .expect("strategy axis makes retraining cells")
            .history
            .clone()
    };
    Ok(ConvergenceReport {
        dataset: ctx.kind.label().to_string(),
        fault_rate,
        baseline_accuracy: ctx.baseline_accuracy,
        fapit: history(&run.cells()[0]),
        falvolt: history(&run.cells()[1]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::ALL.len(), 3);
        assert_eq!(DatasetKind::Mnist.classes(), 10);
        assert_eq!(DatasetKind::DvsGesture.classes(), 11);
        assert_eq!(DatasetKind::NMnist.label(), "N-MNIST");
        assert_eq!(DatasetKind::Mnist.architecture().input_channels, 1);
        assert_eq!(DatasetKind::DvsGesture.architecture().conv_blocks, 5);
    }

    #[test]
    fn scales_order_their_budgets() {
        let tiny = ExperimentScale::Tiny;
        let quick = ExperimentScale::Quick;
        let full = ExperimentScale::Full;
        assert!(tiny.samples_per_class() < quick.samples_per_class());
        assert!(quick.samples_per_class() < full.samples_per_class());
        assert!(tiny.baseline_epochs() < full.baseline_epochs());
        assert!(tiny.retrain_epochs() <= quick.retrain_epochs());
        assert!(tiny.vulnerability_config().iterations <= full.vulnerability_config().iterations);
        assert!(tiny.batch_size() > 0);
    }

    // The end-to-end experiment flow is exercised by the workspace
    // integration tests (tests/experiment_flow.rs) on the Tiny scale; unit
    // tests here stay cheap.
}
