//! Deterministic chaos injection for campaign resilience testing.
//!
//! A [`ChaosPlan`] maps every `(cell, attempt)` worker start to an action —
//! do nothing, panic, fail with an error, or sleep — by hashing the triple
//! `(seed, cell, attempt)`. The mapping is a pure function: two runs of the
//! same plan inject into exactly the same workers, which is what lets the
//! property tests assert that injected cells come back
//! [`crate::CellStatus::Failed`] (or recover under retry, since the hash
//! varies with the attempt number) while every untouched cell stays
//! bit-identical to a fault-free run.
//!
//! Injected panics carry the `falvolt-chaos:` message prefix so a chaos
//! panic escaping the isolation layer is unambiguous in test output.
//!
//! The module (and the [`crate::Campaign::chaos`] installer) is compiled
//! only under the `chaos` feature; the injection plumbing itself is always
//! present, so enabling the feature cannot change scheduler behavior for
//! plans that do not install chaos.
//!
//! ```no_run
//! use falvolt::campaign::{Axis, Campaign};
//! use falvolt::chaos::ChaosPlan;
//! use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
//!
//! # fn main() -> Result<(), falvolt::FalvoltError> {
//! let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
//! let run = Campaign::new(&mut ctx)
//!     .axis(Axis::FaultyPes(vec![0, 4, 8, 16]))
//!     .chaos(ChaosPlan::new(7).panic_rate(0.25))
//!     .run()?;
//! assert_eq!(run.len(), 4); // failed cells are rows, not aborts
//! # Ok(())
//! # }
//! ```

use falvolt_tensor::Fingerprint;
use std::sync::Arc;
use std::time::Duration;

/// What a [`ChaosPlan`] injects into one `(cell, attempt)` worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// No injection — the worker runs normally.
    Pass,
    /// The worker panics (message prefixed `falvolt-chaos:`), exercising
    /// the `catch_unwind` isolation and cache quarantine paths.
    Panic,
    /// The worker fails with a typed error before doing any work.
    Error,
    /// The worker sleeps for [`ChaosPlan::slow`]'s duration first — a
    /// straggler for deadline and cancellation testing.
    Slow,
}

/// A deterministic, seed-driven chaos-injection plan (see the
/// [module docs](crate::chaos)).
///
/// Rates are probabilities in `[0, 1]`, evaluated in the order panic →
/// error → slow against one uniform draw per `(cell, attempt)`: a worker
/// panics with probability `panic_rate`, errors with `error_rate`, sleeps
/// with `slow_rate`, and runs clean otherwise (rate sums above 1 saturate
/// in that order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    seed: u64,
    panic_rate: f64,
    error_rate: f64,
    slow_rate: f64,
    slow_for: Duration,
}

impl ChaosPlan {
    /// A plan with the given seed and no injections.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_rate: 0.0,
            error_rate: 0.0,
            slow_rate: 0.0,
            slow_for: Duration::ZERO,
        }
    }

    /// Probability that a worker panics (clamped to `[0, 1]`).
    pub fn panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that a worker fails with an error (clamped to `[0, 1]`).
    pub fn error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that a worker sleeps for `delay` before starting
    /// (clamped to `[0, 1]`).
    pub fn slow(mut self, rate: f64, delay: Duration) -> Self {
        self.slow_rate = rate.clamp(0.0, 1.0);
        self.slow_for = delay;
        self
    }

    /// The action this plan injects into the given `(cell, attempt)` worker
    /// — a pure function, so tests can predict exactly which cells a
    /// campaign run will disturb.
    pub fn action(&self, cell: usize, attempt: usize) -> ChaosAction {
        let mut fp = Fingerprint::new();
        fp.write_str("falvolt-chaos");
        fp.write_u64(self.seed);
        fp.write_u64(cell as u64);
        fp.write_u64(attempt as u64);
        let digest = fp.finish();
        // The fingerprint's last-word mix is not avalanche-complete, and the
        // final word here (the attempt) has almost no entropy — finalize
        // with a splitmix64-style mix so consecutive attempts decorrelate.
        let mut h = (digest >> 64) as u64 ^ digest as u64;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        // Top 53 hash bits -> uniform in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw < self.panic_rate {
            ChaosAction::Panic
        } else if draw < self.panic_rate + self.error_rate {
            ChaosAction::Error
        } else if draw < self.panic_rate + self.error_rate + self.slow_rate {
            ChaosAction::Slow
        } else {
            ChaosAction::Pass
        }
    }

    /// Converts the plan into the campaign's per-cell injection hook.
    pub(crate) fn into_hook(
        self,
    ) -> Arc<dyn Fn(usize, usize) -> std::result::Result<(), String> + Send + Sync> {
        Arc::new(move |cell, attempt| match self.action(cell, attempt) {
            ChaosAction::Pass => Ok(()),
            ChaosAction::Panic => {
                panic!("falvolt-chaos: injected panic at cell {cell} attempt {attempt}")
            }
            ChaosAction::Error => Err(format!(
                "falvolt-chaos: injected error at cell {cell} attempt {attempt}"
            )),
            ChaosAction::Slow => {
                std::thread::sleep(self.slow_for);
                Ok(())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_deterministic_and_attempt_dependent() {
        let plan = ChaosPlan::new(11).panic_rate(0.3).error_rate(0.3);
        for cell in 0..64 {
            for attempt in 1..4 {
                assert_eq!(
                    plan.action(cell, attempt),
                    plan.action(cell, attempt),
                    "same (cell, attempt) must map to the same action"
                );
            }
        }
        // The attempt number participates in the hash: at these rates some
        // cell that fails on attempt 1 must pass on attempt 2 (that is what
        // makes retries meaningful under chaos).
        assert!((0..64).any(|cell| {
            plan.action(cell, 1) != ChaosAction::Pass && plan.action(cell, 2) == ChaosAction::Pass
        }));
    }

    #[test]
    fn rates_partition_the_draw_space() {
        let quiet = ChaosPlan::new(3);
        assert!((0..256).all(|cell| quiet.action(cell, 1) == ChaosAction::Pass));

        let total = ChaosPlan::new(3).panic_rate(1.0);
        assert!((0..256).all(|cell| total.action(cell, 1) == ChaosAction::Panic));

        let mixed = ChaosPlan::new(9)
            .panic_rate(0.25)
            .error_rate(0.25)
            .slow(0.25, Duration::ZERO);
        let mut counts = [0usize; 4];
        for cell in 0..4096 {
            counts[match mixed.action(cell, 1) {
                ChaosAction::Panic => 0,
                ChaosAction::Error => 1,
                ChaosAction::Slow => 2,
                ChaosAction::Pass => 3,
            }] += 1;
        }
        for count in counts {
            let share = count as f64 / 4096.0;
            assert!(
                (0.18..=0.32).contains(&share),
                "each quarter-rate bucket should get ~25% of draws, got {share}"
            );
        }
    }
}
