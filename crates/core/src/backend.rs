//! Adapter running SNN matrix products on the systolic-array simulator.

use falvolt_snn::MatmulBackend;
use falvolt_systolic::executor::BypassPolicy;
use falvolt_systolic::{FaultMap, ProductCache, SystolicConfig, SystolicExecutor};
use falvolt_tensor::{Fingerprint, MatmulHint, Tensor, TensorError};
use std::sync::Arc;

/// A [`MatmulBackend`] that executes every convolutional / fully connected
/// matrix product on the (possibly faulty) systolic-array model.
///
/// Install it on a trained [`falvolt_snn::SpikingNetwork`] with
/// [`falvolt_snn::SpikingNetwork::set_backend`] to measure how stuck-at
/// faults in the accelerator corrupt inference — the methodology of the
/// paper's fault-vulnerability analysis (Figure 5).
///
/// # Example
///
/// ```
/// use falvolt::SystolicBackend;
/// use falvolt_snn::MatmulBackend;
/// use falvolt_systolic::{FaultMap, SystolicConfig};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(8, 8)?;
/// let backend = SystolicBackend::new(config, FaultMap::new(config));
/// let a = Tensor::ones(&[2, 8]);
/// let b = Tensor::full(&[8, 4], 0.125);
/// let out = backend.matmul(&a, &b)?;
/// assert!((out.get(&[0, 0]) - 1.0).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SystolicBackend {
    executor: SystolicExecutor,
}

impl SystolicBackend {
    /// Creates a backend with faults active in the datapath (the
    /// vulnerability-analysis setting).
    pub fn new(config: SystolicConfig, fault_map: FaultMap) -> Self {
        Self {
            executor: SystolicExecutor::new(config, fault_map),
        }
    }

    /// Creates a backend whose faulty PEs are bypassed (the fault-aware
    /// pruning hardware configuration of Figure 3b).
    pub fn with_bypass(config: SystolicConfig, fault_map: FaultMap) -> Self {
        Self {
            executor: SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty),
        }
    }

    /// Convenience constructor returning the backend behind an [`Arc`], the
    /// form [`falvolt_snn::SpikingNetwork::set_backend`] expects.
    pub fn shared(config: SystolicConfig, fault_map: FaultMap) -> Arc<dyn MatmulBackend> {
        Arc::new(Self::new(config, fault_map))
    }

    /// [`SystolicBackend::shared`] with a sweep-shared clean-product cache
    /// installed: scenario workers holding the same cache `Arc` compute each
    /// distinct activation matrix's fault-free (clean-column) product once
    /// and share it — fault-free columns cannot depend on the fault map, so
    /// sweep results stay bit-identical.
    pub fn shared_with_cache(
        config: SystolicConfig,
        fault_map: FaultMap,
        cache: Arc<ProductCache>,
    ) -> Arc<dyn MatmulBackend> {
        let mut backend = Self::new(config, fault_map);
        backend.executor.set_product_cache(Some(cache));
        Arc::new(backend)
    }

    /// Fully explicit constructor for benchmarks and equivalence tests:
    /// chooses the mask-chain mode (composed vs full replay) and optionally
    /// installs a product cache. `composed_chains = false` with no cache is
    /// the PR 2 engine.
    pub fn shared_with_options(
        config: SystolicConfig,
        fault_map: FaultMap,
        cache: Option<Arc<ProductCache>>,
        composed_chains: bool,
    ) -> Arc<dyn MatmulBackend> {
        let mut backend = Self::new(config, fault_map);
        backend.executor.set_product_cache(cache);
        backend.executor.set_composed_mask_chains(composed_chains);
        Arc::new(backend)
    }

    /// The underlying executor.
    pub fn executor(&self) -> &SystolicExecutor {
        &self.executor
    }
}

impl MatmulBackend for SystolicBackend {
    fn matmul(&self, a: &Tensor, b: &Tensor) -> falvolt_tensor::Result<Tensor> {
        self.executor.matmul(a, b).map_err(as_tensor_error)
    }

    fn matmul_hinted(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
    ) -> falvolt_tensor::Result<Tensor> {
        // The hint only steers the executor's fault-free fast path onto the
        // event-driven kernel; faulty products replay the quantized
        // accumulator chain bit-identically regardless.
        self.executor
            .matmul_hinted(a, b, hint)
            .map_err(as_tensor_error)
    }

    fn name(&self) -> &str {
        "systolic"
    }

    fn fingerprint(&self) -> u64 {
        // Everything that changes this backend's products: the array
        // geometry and accumulator format, the fault map's composed masks
        // and the bypass policy. (Mask-chain mode and product cache are
        // execution strategies, not result state — the executor guarantees
        // bit-identity across them.)
        let mut fp = Fingerprint::new();
        fp.write_str("systolic");
        fp.write_u64(self.executor.fault_map().fingerprint());
        fp.write_u64(match self.executor.bypass_policy() {
            BypassPolicy::None => 0,
            BypassPolicy::SkipFaulty => 1,
        });
        fp.finish() as u64
    }
}

fn as_tensor_error(e: falvolt_systolic::SystolicError) -> TensorError {
    match e {
        falvolt_systolic::SystolicError::Tensor(t) => t,
        other => TensorError::InvalidArgument {
            reason: format!("systolic executor failed: {other}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_systolic::{Fault, PeCoord, StuckAt};

    #[test]
    fn clean_backend_is_close_to_float() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let backend = SystolicBackend::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[3, 4]);
        let b = Tensor::full(&[4, 5], 0.25);
        let sys = backend.matmul(&a, &b).unwrap();
        let float = falvolt_tensor::ops::matmul(&a, &b).unwrap();
        for (x, y) in sys.data().iter().zip(float.data()) {
            assert!((x - y).abs() < 0.05);
        }
        assert_eq!(backend.name(), "systolic");
        assert!(backend.executor().fault_map().is_empty());
    }

    #[test]
    fn faulty_backend_corrupts_results_and_bypass_heals_them() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let clean = falvolt_tensor::ops::matmul(&a, &b).unwrap();

        let faulty = SystolicBackend::new(config, fault_map.clone());
        let corrupted = faulty.matmul(&a, &b).unwrap();
        assert!((corrupted.get(&[0, 0]) - clean.get(&[0, 0])).abs() > 1.0);

        let bypassed = SystolicBackend::with_bypass(config, fault_map);
        let healed = bypassed.matmul(&a, &b).unwrap();
        assert!((healed.get(&[0, 0]) - clean.get(&[0, 0])).abs() <= 0.5 + 1e-3);
    }

    #[test]
    fn shape_errors_surface_as_tensor_errors() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let backend = SystolicBackend::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        assert!(backend.matmul(&a, &b).is_err());
    }

    #[test]
    fn network_accepts_shared_backend() {
        use falvolt_snn::config::ArchitectureConfig;
        let config = SystolicConfig::new(8, 8).unwrap();
        let mut network = ArchitectureConfig::tiny_test().build(1).unwrap();
        network.set_backend(SystolicBackend::shared(config, FaultMap::new(config)));
        assert_eq!(network.backend().name(), "systolic");
        let input = Tensor::zeros(&[1, 1, 8, 8]);
        assert!(network.predict(&input).is_ok());
    }
}
