//! Adapter running SNN matrix products on the systolic-array simulator.

use falvolt_snn::{EnginePreset, MatmulBackend, MatmulOutput, MatmulRequest};
use falvolt_systolic::executor::BypassPolicy;
use falvolt_systolic::{
    FaultMap, ProductCache, ScenarioMatrices, SharedStore, StoreDecision, SystolicConfig,
    SystolicExecutor,
};
use falvolt_tensor::{Fingerprint, MatmulHint, Tensor, TensorError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A [`MatmulBackend`] that executes every convolutional / fully connected
/// matrix product on the (possibly faulty) systolic-array model.
///
/// Install it on a trained [`falvolt_snn::SpikingNetwork`] with
/// [`falvolt_snn::SpikingNetwork::set_backend`] to measure how stuck-at
/// faults in the accelerator corrupt inference — the methodology of the
/// paper's fault-vulnerability analysis (Figure 5).
///
/// # Example
///
/// ```
/// use falvolt::SystolicBackend;
/// use falvolt_snn::MatmulBackend;
/// use falvolt_systolic::{FaultMap, SystolicConfig};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(8, 8)?;
/// let backend = SystolicBackend::new(config, FaultMap::new(config));
/// let a = Tensor::ones(&[2, 8]);
/// let b = Tensor::full(&[8, 4], 0.125);
/// let out = backend.matmul(&a, &b)?;
/// assert!((out.get(&[0, 0]) - 1.0).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SystolicBackend {
    executor: SystolicExecutor,
}

impl SystolicBackend {
    /// Creates a backend with faults active in the datapath (the
    /// vulnerability-analysis setting).
    pub fn new(config: SystolicConfig, fault_map: FaultMap) -> Self {
        Self {
            executor: SystolicExecutor::new(config, fault_map),
        }
    }

    /// Creates a backend whose faulty PEs are bypassed (the fault-aware
    /// pruning hardware configuration of Figure 3b).
    pub fn with_bypass(config: SystolicConfig, fault_map: FaultMap) -> Self {
        Self {
            executor: SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty),
        }
    }

    /// Convenience constructor returning the backend behind an [`Arc`], the
    /// form [`falvolt_snn::SpikingNetwork::set_backend`] expects.
    pub fn shared(config: SystolicConfig, fault_map: FaultMap) -> Arc<dyn MatmulBackend> {
        Arc::new(Self::new(config, fault_map))
    }

    /// Starts a [`SystolicBackendBuilder`] — the single configuration entry
    /// that replaced the `shared_with_cache` / `shared_with_options`
    /// constructor family. Defaults match [`SystolicBackend::new`]: faults
    /// active (no bypass), no product cache, composed mask chains.
    ///
    /// # Example
    ///
    /// ```
    /// use falvolt::SystolicBackend;
    /// use falvolt_snn::EnginePreset;
    /// use falvolt_systolic::{FaultMap, SystolicConfig};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let config = SystolicConfig::new(8, 8)?;
    /// let backend = SystolicBackend::builder(config, FaultMap::new(config))
    ///     .preset(&EnginePreset::event_driven()) // replayed mask chains
    ///     .shared();
    /// assert_eq!(backend.name(), "systolic");
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder(config: SystolicConfig, fault_map: FaultMap) -> SystolicBackendBuilder {
        SystolicBackendBuilder {
            config,
            fault_map,
            bypass: BypassPolicy::None,
            product_cache: None,
            composed_mask_chains: true,
            cancel: None,
        }
    }

    /// [`SystolicBackend::shared`] with a sweep-shared clean-product cache
    /// installed: scenario workers holding the same cache `Arc` compute each
    /// distinct activation matrix's fault-free (clean-column) product once
    /// and share it — fault-free columns cannot depend on the fault map, so
    /// sweep results stay bit-identical.
    #[deprecated(note = "use SystolicBackend::builder(..).product_cache(..).shared()")]
    pub fn shared_with_cache(
        config: SystolicConfig,
        fault_map: FaultMap,
        cache: Arc<ProductCache>,
    ) -> Arc<dyn MatmulBackend> {
        Self::builder(config, fault_map)
            .product_cache(cache)
            .shared()
    }

    /// Fully explicit constructor for benchmarks and equivalence tests:
    /// chooses the mask-chain mode (composed vs full replay) and optionally
    /// installs a product cache. `composed_chains = false` with no cache is
    /// the PR 2 engine.
    #[deprecated(note = "use SystolicBackend::builder(..) and its options")]
    pub fn shared_with_options(
        config: SystolicConfig,
        fault_map: FaultMap,
        cache: Option<Arc<ProductCache>>,
        composed_chains: bool,
    ) -> Arc<dyn MatmulBackend> {
        let mut builder = Self::builder(config, fault_map).composed_mask_chains(composed_chains);
        if let Some(cache) = cache {
            builder = builder.product_cache(cache);
        }
        builder.shared()
    }

    /// The underlying executor.
    pub fn executor(&self) -> &SystolicExecutor {
        &self.executor
    }
}

/// Builder for [`SystolicBackend`], folding the former constructor
/// proliferation (`shared_with_cache`, `shared_with_options`) into one entry
/// with optional cache and execution-strategy options.
#[derive(Debug)]
pub struct SystolicBackendBuilder {
    config: SystolicConfig,
    fault_map: FaultMap,
    bypass: BypassPolicy,
    product_cache: Option<Arc<ProductCache>>,
    composed_mask_chains: bool,
    cancel: Option<falvolt_tensor::CancelToken>,
}

impl SystolicBackendBuilder {
    /// Sets the bypass policy ([`BypassPolicy::SkipFaulty`] is the
    /// fault-aware-pruning hardware configuration of the paper's Figure 3b).
    pub fn bypass(mut self, policy: BypassPolicy) -> Self {
        self.bypass = policy;
        self
    }

    /// Installs a sweep-shared clean-product cache (see
    /// [`falvolt_systolic::ProductCache`]). Sharing cannot change results:
    /// fault-free columns do not depend on the fault map.
    pub fn product_cache(mut self, cache: Arc<ProductCache>) -> Self {
        self.product_cache = Some(cache);
        self
    }

    /// Chooses the mask-chain mode: composed (default) or full replay
    /// (`false`, the PR 2 reference engine). Bit-identical either way.
    pub fn composed_mask_chains(mut self, enabled: bool) -> Self {
        self.composed_mask_chains = enabled;
        self
    }

    /// Applies the systolic-relevant switches of an [`EnginePreset`]
    /// (currently the mask-chain mode), threading one engine configuration
    /// uniformly through network, backends and campaigns.
    pub fn preset(self, preset: &EnginePreset) -> Self {
        self.composed_mask_chains(preset.composed_mask_chains())
    }

    /// Installs a cooperative cancellation token: a tripped token makes the
    /// executor return [`falvolt_tensor::TensorError::Cancelled`] at
    /// fold-chain granularity instead of finishing the product.
    pub fn cancel_token(mut self, token: Option<falvolt_tensor::CancelToken>) -> Self {
        self.cancel = token;
        self
    }

    /// Builds the backend.
    pub fn build(self) -> SystolicBackend {
        let mut executor = SystolicExecutor::with_bypass(self.config, self.fault_map, self.bypass);
        executor.set_product_cache(self.product_cache);
        executor.set_composed_mask_chains(self.composed_mask_chains);
        executor.set_cancel_token(self.cancel);
        SystolicBackend { executor }
    }

    /// Builds the backend behind an [`Arc`], the form
    /// [`falvolt_snn::SpikingNetwork::set_backend`] expects.
    pub fn shared(self) -> Arc<dyn MatmulBackend> {
        Arc::new(self.build())
    }
}

impl MatmulBackend for SystolicBackend {
    fn matmul_request(&self, req: MatmulRequest<'_>) -> falvolt_tensor::Result<MatmulOutput> {
        // The hint only steers the executor's fault-free fast path onto the
        // event-driven kernel; faulty products replay the quantized
        // accumulator chain bit-identically regardless. The scenario-sharing
        // claim is meaningless for a single-map backend and is ignored.
        self.executor
            .matmul_hinted(req.a(), req.b(), req.hint())
            .map(MatmulOutput::new)
            .map_err(as_tensor_error)
    }

    fn name(&self) -> &str {
        "systolic"
    }

    fn fingerprint(&self) -> u64 {
        // Everything that changes this backend's products: the array
        // geometry and accumulator format, the fault map's composed masks
        // and the bypass policy. (Mask-chain mode and product cache are
        // execution strategies, not result state — the executor guarantees
        // bit-identity across them.)
        let mut fp = Fingerprint::new();
        fp.write_str("systolic");
        fp.write_u64(self.executor.fault_map().fingerprint());
        fp.write_u64(match self.executor.bypass_policy() {
            BypassPolicy::None => 0,
            BypassPolicy::SkipFaulty => 1,
        });
        fp.finish() as u64
    }
}

/// Default bound on value-bearing batched entries (each holds one output per
/// scenario, so the bound is deliberately modest).
const SCENARIO_BATCH_CAPACITY: usize = 64;

/// Sweep-shared multi-map product batcher: the scenario set of one sweep
/// (one systolic grid, many fault maps) plus a promote-on-second-request
/// store of batched products.
///
/// Scenario workers execute whole network forwards independently, but the
/// products they issue against the *scenario-invariant* operands (the shared
/// im2col lowering of a test batch, the shared transposed weights) are
/// identical across workers — only the fault map differs. Each member
/// backend ([`ScenarioProducts::member`]) keys every product on its operands'
/// content ids: the first sighting computes inline through its own single-map
/// executor, the second proves the operands are shared across scenarios and
/// evaluates [`SystolicExecutor::matmul_scenarios`] — **one event-stream walk
/// for every map** — and later members copy their slice. Products whose
/// activations diverge per scenario (everything downstream of the first
/// corrupted spiking layer) never promote and fall back to the single-map
/// path, so batching is self-selecting and bit-identical either way.
pub struct ScenarioProducts {
    config: SystolicConfig,
    maps: Vec<FaultMap>,
    product_cache: Arc<ProductCache>,
    batch_executor: SystolicExecutor,
    store: SharedStore<ScenarioMatrices>,
    batches: AtomicUsize,
}

impl std::fmt::Debug for ScenarioProducts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioProducts")
            .field("scenarios", &self.maps.len())
            .field("hits", &self.hits())
            .field("batches", &self.batches())
            .finish()
    }
}

impl ScenarioProducts {
    /// Creates the batcher for one sweep's scenario set (all maps must
    /// target `config`'s grid; faults stay active in the datapath, matching
    /// [`SystolicBackend::new`]; composed mask chains, the executor
    /// default).
    pub fn new(
        config: SystolicConfig,
        maps: Vec<FaultMap>,
        product_cache: Arc<ProductCache>,
    ) -> Self {
        Self::with_preset(config, maps, product_cache, &EnginePreset::full())
    }

    /// [`ScenarioProducts::new`] with the systolic-relevant switches of an
    /// [`EnginePreset`] applied to the batch executor and every member
    /// executor (currently the mask-chain mode) — bit-identical either way.
    pub fn with_preset(
        config: SystolicConfig,
        maps: Vec<FaultMap>,
        product_cache: Arc<ProductCache>,
        preset: &EnginePreset,
    ) -> Self {
        let mut batch_executor = SystolicExecutor::new(config, FaultMap::new(config));
        batch_executor.set_product_cache(Some(Arc::clone(&product_cache)));
        batch_executor.set_composed_mask_chains(preset.composed_mask_chains());
        Self {
            config,
            maps,
            product_cache,
            batch_executor,
            store: SharedStore::new(),
            batches: AtomicUsize::new(0),
        }
    }

    /// Number of scenarios in the set.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// `true` for an empty scenario set.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Batched products served from a fulfilled entry.
    pub fn hits(&self) -> usize {
        self.store.hits()
    }

    /// Multi-map batched evaluations performed.
    pub fn batches(&self) -> usize {
        self.batches.load(Ordering::Relaxed)
    }

    /// The backend of scenario `index`: behaves exactly like a
    /// [`SystolicBackend`] built with the set's product cache and
    /// `maps[index]` installed (same name, same fingerprint, bit-identical
    /// products), but consults the shared batch store first.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CampaignError::InvalidPlan`] when `index` is out of
    /// range — a bad scenario index is a plan defect the scheduler records,
    /// not grounds for a process abort.
    pub fn member(set: &Arc<Self>, index: usize) -> crate::Result<Arc<dyn MatmulBackend>> {
        if index >= set.maps.len() {
            return Err(crate::error::CampaignError::invalid_plan(format!(
                "scenario index {index} out of range for a set of {}",
                set.maps.len()
            ))
            .into());
        }
        let mut executor = SystolicExecutor::new(set.config, set.maps[index].clone());
        executor.set_product_cache(Some(Arc::clone(&set.product_cache)));
        executor.set_composed_mask_chains(set.batch_executor.composed_mask_chains());
        executor.set_cancel_token(set.batch_executor.cancel_token().cloned());
        Ok(Arc::new(ScenarioMemberBackend {
            set: Arc::clone(set),
            index,
            executor,
        }))
    }

    /// Installs a cooperative cancellation token on the batch executor;
    /// member backends created afterwards inherit it, so a tripped token
    /// stops batched *and* single-map products at fold-chain granularity.
    pub fn set_cancel_token(&mut self, token: Option<falvolt_tensor::CancelToken>) {
        self.batch_executor.set_cancel_token(token);
    }

    /// Quarantines every in-flight promotion of the shared batch store (a
    /// panicking member may have been computing a batched product). Returns
    /// the promotions reverted. The underlying product cache has its own
    /// [`ProductCache::quarantine_in_flight`].
    pub fn quarantine_in_flight(&self) -> usize {
        self.store.quarantine_in_flight()
    }

    /// One store lookup; `eager` callers declared the operands
    /// scenario-invariant (every member will request this product) and batch
    /// on first sighting instead of letting one worker pay the single-map
    /// path first.
    fn lookup(&self, key: u128, eager: bool) -> StoreDecision<ScenarioMatrices> {
        self.store.lookup(key, SCENARIO_BATCH_CAPACITY, eager)
    }

    fn fulfill(&self, key: u128, outputs: Arc<ScenarioMatrices>) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.store.fulfill(key, outputs);
    }

    fn abandon(&self, key: u128) {
        self.store.abandon(key);
    }
}

/// One scenario's view of a [`ScenarioProducts`] set.
#[derive(Debug)]
struct ScenarioMemberBackend {
    set: Arc<ScenarioProducts>,
    index: usize,
    executor: SystolicExecutor,
}

impl ScenarioMemberBackend {
    /// Consults the batch store for this product; `None` means the caller
    /// should fall back to the single-map path.
    fn batched(
        &self,
        a: &Tensor,
        b: &Tensor,
        hint: MatmulHint,
        eager: bool,
    ) -> Option<falvolt_tensor::Result<Tensor>> {
        if a.ndim() != 2 || b.ndim() != 2 || a.shape()[1] != b.shape()[0] {
            return None;
        }
        let mut fp = Fingerprint::new();
        fp.write_str("scenario-batch");
        fp.write_dims(a.shape());
        fp.write_dims(b.shape());
        fp.write_u64(match hint {
            MatmulHint::Auto => 0,
            MatmulHint::Dense => 1,
            MatmulHint::Spikes => 2,
        });
        fp.write_u64(a.content_id());
        fp.write_u64(b.content_id());
        let key = fp.finish();
        match self.set.lookup(key, eager) {
            StoreDecision::Skip => None,
            // Members gather their scenario straight out of the interleaved
            // batch view — only the requested matrix is ever materialised.
            StoreDecision::Hit(outputs) => {
                Some(outputs.tensor(self.index).map_err(as_tensor_error))
            }
            StoreDecision::Compute => {
                match self
                    .set
                    .batch_executor
                    .matmul_scenarios_view(a, b, &self.set.maps, hint)
                {
                    Ok(outputs) => {
                        let outputs = Arc::new(outputs);
                        self.set.fulfill(key, Arc::clone(&outputs));
                        Some(outputs.tensor(self.index).map_err(as_tensor_error))
                    }
                    Err(e) => {
                        // Release the in-flight slot so the key is not dead for
                        // the rest of the sweep.
                        self.set.abandon(key);
                        Some(Err(as_tensor_error(e)))
                    }
                }
            }
        }
    }
}

impl MatmulBackend for ScenarioMemberBackend {
    fn matmul_request(&self, req: MatmulRequest<'_>) -> falvolt_tensor::Result<MatmulOutput> {
        // A scenario-shared claim certifies the operands scenario-invariant:
        // batch for every map on first sighting instead of waiting for a
        // second worker to prove sharing.
        if let Some(result) = self.batched(req.a(), req.b(), req.hint(), req.is_scenario_shared()) {
            return result.map(MatmulOutput::new);
        }
        self.executor
            .matmul_hinted(req.a(), req.b(), req.hint())
            .map(MatmulOutput::new)
            .map_err(as_tensor_error)
    }

    fn name(&self) -> &str {
        "systolic"
    }

    fn fingerprint(&self) -> u64 {
        // A member is semantically a single-map systolic backend: the batch
        // store is an execution strategy, not result state, so the
        // fingerprint matches `SystolicBackend` with the same map installed
        // and sweep-cache sharing semantics carry over unchanged.
        let mut fp = Fingerprint::new();
        fp.write_str("systolic");
        fp.write_u64(self.executor.fault_map().fingerprint());
        fp.write_u64(match self.executor.bypass_policy() {
            BypassPolicy::None => 0,
            BypassPolicy::SkipFaulty => 1,
        });
        fp.finish() as u64
    }
}

fn as_tensor_error(e: falvolt_systolic::SystolicError) -> TensorError {
    match e {
        falvolt_systolic::SystolicError::Tensor(t) => t,
        other => TensorError::InvalidArgument {
            reason: format!("systolic executor failed: {other}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_systolic::{Fault, PeCoord, StuckAt};

    #[test]
    fn clean_backend_is_close_to_float() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let backend = SystolicBackend::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[3, 4]);
        let b = Tensor::full(&[4, 5], 0.25);
        let sys = backend.matmul(&a, &b).unwrap();
        let float = falvolt_tensor::ops::matmul(&a, &b).unwrap();
        for (x, y) in sys.data().iter().zip(float.data()) {
            assert!((x - y).abs() < 0.05);
        }
        assert_eq!(backend.name(), "systolic");
        assert!(backend.executor().fault_map().is_empty());
    }

    #[test]
    fn faulty_backend_corrupts_results_and_bypass_heals_them() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let clean = falvolt_tensor::ops::matmul(&a, &b).unwrap();

        let faulty = SystolicBackend::new(config, fault_map.clone());
        let corrupted = faulty.matmul(&a, &b).unwrap();
        assert!((corrupted.get(&[0, 0]) - clean.get(&[0, 0])).abs() > 1.0);

        let bypassed = SystolicBackend::with_bypass(config, fault_map);
        let healed = bypassed.matmul(&a, &b).unwrap();
        assert!((healed.get(&[0, 0]) - clean.get(&[0, 0])).abs() <= 0.5 + 1e-3);
    }

    #[test]
    fn shape_errors_surface_as_tensor_errors() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let backend = SystolicBackend::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        assert!(backend.matmul(&a, &b).is_err());
    }

    #[test]
    fn network_accepts_shared_backend() {
        use falvolt_snn::config::ArchitectureConfig;
        let config = SystolicConfig::new(8, 8).unwrap();
        let mut network = ArchitectureConfig::tiny_test().build(1).unwrap();
        network.set_backend(SystolicBackend::shared(config, FaultMap::new(config)));
        assert_eq!(network.backend().name(), "systolic");
        let input = Tensor::zeros(&[1, 1, 8, 8]);
        assert!(network.predict(&input).is_ok());
    }
}
