//! # falvolt
//!
//! FalVolt: fault-aware threshold voltage optimization for systolic-array
//! spiking-neural-network accelerators — a from-scratch Rust reproduction of
//! *"Improving Reliability of Spiking Neural Networks through Fault Aware
//! Threshold Voltage Optimization"* (Siddique & Hoque, DATE 2023).
//!
//! The crate ties the workspace together:
//!
//! * [`SystolicBackend`] runs a trained SNN's inference through the
//!   (possibly faulty) systolic-array model ([`backend`]),
//! * [`prune`] derives fault-aware prune masks from a chip's fault map and
//!   the weight-stationary PE mapping,
//! * [`mitigation`] implements the three strategies the paper compares:
//!   fault-aware pruning (FaP), fault-aware pruning + retraining (FaPIT) and
//!   **FalVolt** — retraining with per-layer learnable threshold voltages
//!   (Algorithm 1),
//! * [`vulnerability`] implements the stuck-at fault vulnerability sweeps of
//!   Figure 5 (bit position, number of faulty PEs, array size),
//! * [`campaign`] is the declarative sweep engine: every figure-style sweep
//!   is a [`Campaign`] plan built from typed [`Axis`] values, executed by
//!   one scheduler that owns seed mixing, fault-map pools, scenario-view
//!   fan-out, cache sharing and multi-map batching,
//! * [`experiment`] packages everything into figure-level experiment runners
//!   used by the benchmark harness and the `reproduce` binary (the legacy
//!   drivers are deprecated thin plans over [`campaign`]).
//!
//! # Example: mitigate a faulty chip
//!
//! ```no_run
//! use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
//! use falvolt::mitigation::{MitigationStrategy, Mitigator, RetrainConfig};
//! use falvolt_systolic::{FaultMap, StuckAt};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), falvolt::FalvoltError> {
//! // Train a baseline classifier on the synthetic MNIST-like workload.
//! let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Quick, 42)?;
//!
//! // A chip with stuck-at-1 faults in the accumulator MSB of 30% of its PEs.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let fault_map = FaultMap::random_with_rate(
//!     ctx.systolic_config(), 0.30, ctx.systolic_config().accumulator_format().msb(),
//!     StuckAt::One, &mut rng)?;
//!
//! // FalVolt: prune weights mapped to faulty PEs, retrain with learnable
//! // per-layer threshold voltages.
//! let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::quick());
//! let outcome = mitigator.run(
//!     &mut ctx.network_clone()?, &fault_map, ctx.train_batches(), ctx.test_batches(),
//!     MitigationStrategy::falvolt(10))?;
//! println!("accuracy after FalVolt: {:.1}%", outcome.final_accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod json;

pub mod backend;
pub mod campaign;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod experiment;
pub mod mitigation;
pub mod prune;
pub mod vulnerability;

pub use backend::{ScenarioProducts, SystolicBackend, SystolicBackendBuilder};
pub use campaign::{
    Axis, Campaign, CampaignCheckpoint, CampaignRun, CellResult, CellStatus, CheckpointSink,
    PlanSpec, ResultTable, RetryPolicy, RunBudget, SkipReason,
};
pub use error::{CampaignError, CellFailure, FalvoltError};
pub use vulnerability::SweepCaches;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, FalvoltError>;
