//! Declarative sweep campaigns: one scheduler for every figure-style sweep.
//!
//! The paper's results are all sweeps — fault-rate × threshold, bit
//! position, faulty-PE count, array size, mitigation strategy. Before this
//! module each sweep was its own driver function with hand-threaded caches,
//! fault-map pools and scenario fan-out; a [`Campaign`] replaces them with a
//! plan built from typed [`Axis`] values, whose single scheduler owns
//!
//! * **per-cell seed mixing** (a pluggable [`Campaign::seed_mixer`]; the
//!   default hashes the cell's fault-drawing parameters, the legacy drivers
//!   install their historical formulas so drawn maps are unchanged),
//! * **fault-map pools**: cells whose fault-drawing parameters *and* mixed
//!   seed agree share one sequentially drawn pool — e.g. the strategies of
//!   one fault rate retrain against the same chip, drawn once per rate,
//! * **scenario-view fan-out**: every cell evaluates or retrains on a
//!   copy-on-write [`SpikingNetwork::scenario_view`] of the restored
//!   baseline, in parallel, with results independent of worker count,
//! * **cache sharing**: evaluation cells share the context-owned
//!   [`crate::SweepCaches`] (prefix outputs, im2col lowerings, clean
//!   products) and retraining cells share one fresh `SweepCache`,
//! * **multi-map batching**: evaluation scenarios of one grid configuration
//!   form a [`crate::ScenarioProducts`] set, so products against
//!   scenario-invariant operands are evaluated for all fault maps in one
//!   event walk (gated by [`EnginePreset::scenario_batching`]).
//!
//! A cell is a *retraining* cell when its spec carries a mitigation strategy
//! or a fixed retraining threshold, and an *evaluation* cell otherwise.
//! Evaluation cells measure classification accuracy under their drawn fault
//! maps through the systolic backend; retraining cells run the
//! [`Mitigator`] (prune + retrain) per drawn map on the float backend.
//!
//! # Example
//!
//! ```no_run
//! use falvolt::campaign::{Axis, Campaign};
//! use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
//!
//! # fn main() -> Result<(), falvolt::FalvoltError> {
//! let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
//! // Figure 5b as data: accuracy vs faulty-PE count, 8 maps per point.
//! let run = Campaign::new(&mut ctx)
//!     .axis(Axis::FaultyPes(vec![0, 8, 32]))
//!     .scenarios_per_cell(8)
//!     .run()?;
//! for cell in &run {
//!     println!("{} faulty PEs -> {:.1}%",
//!         cell.spec.faulty_pes.unwrap_or(0), cell.accuracy * 100.0);
//! }
//! let table = run.into_table(); // serde-serializable
//! assert_eq!(table.axes, vec!["faulty_pes".to_string()]);
//! # Ok(())
//! # }
//! ```

use crate::experiment::ExperimentContext;
use crate::mitigation::{MitigationOutcome, MitigationStrategy, Mitigator, RetrainConfig};
use crate::vulnerability::{scenario_accuracies, SweepPoint, SweepSeries};
use crate::Result;
use falvolt_snn::{EnginePreset, SpikingNetwork, SweepCache};
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Axes
// ---------------------------------------------------------------------------

/// One typed sweep dimension of a [`Campaign`].
///
/// Axes expand into the cartesian product in the order they are added (the
/// first axis is outermost); each value edits the cell's [`CellSpec`] and
/// records a [`Coord`] for the result table.
///
/// # Example
///
/// ```
/// use falvolt::campaign::{Axis, CellSpec};
///
/// // Typed axes are plain data...
/// let bits = Axis::BitPosition(vec![0, 8, 15]);
/// assert_eq!(bits.label(), "bit");
/// assert_eq!(bits.len(), 3);
/// // ...and anything they cannot express becomes a closure axis.
/// let rows = Axis::custom("array_rows", vec![8.0, 16.0], |spec: &mut CellSpec, rows| {
///     spec.systolic = falvolt_systolic::SystolicConfig::new(rows as usize, 16).unwrap();
/// });
/// assert_eq!(rows.label(), "array_rows");
/// ```
#[derive(Clone)]
pub enum Axis {
    /// Fraction of faulty PEs; each cell draws maps with
    /// [`FaultMap::random_with_rate`]. Takes precedence over
    /// [`Axis::FaultyPes`] when both are set on one cell.
    FaultRate(Vec<f64>),
    /// Stuck-at bit position inside the accumulator (defaults to the MSB
    /// when no bit axis is present).
    BitPosition(Vec<u32>),
    /// Number of faulty PEs; each cell draws maps with
    /// [`FaultMap::random_faulty_pes`].
    FaultyPes(Vec<usize>),
    /// Square systolic-array size (replaces the context's grid per cell).
    ArraySize(Vec<usize>),
    /// Fixed retraining threshold voltage: makes the cell a retraining cell
    /// running [`MitigationStrategy::FaPIT`] at this threshold with
    /// [`Campaign::retrain_epochs`] epochs (which must be set — a plan with
    /// a threshold axis and no epoch budget is rejected).
    Threshold(Vec<f32>),
    /// Mitigation strategy: makes the cell a retraining cell.
    Mitigation(Vec<MitigationStrategy>),
    /// Stuck-at polarity of the drawn faults (defaults to stuck-at-1).
    Polarity(Vec<StuckAt>),
    /// A closure axis for sweep dimensions the typed variants cannot
    /// express: the closure edits the [`CellSpec`] for each value.
    Custom {
        /// Axis label used in coordinates and tables.
        label: String,
        /// The swept values.
        values: Vec<f64>,
        /// Spec editor applied per value.
        apply: SpecEditor,
    },
}

/// Shared spec-editing closure of an [`Axis::Custom`] axis.
pub type SpecEditor = Arc<dyn Fn(&mut CellSpec, f64) + Send + Sync>;

impl Axis {
    /// Builds a closure axis (see [`Axis::Custom`]).
    pub fn custom(
        label: impl Into<String>,
        values: Vec<f64>,
        apply: impl Fn(&mut CellSpec, f64) + Send + Sync + 'static,
    ) -> Self {
        Axis::Custom {
            label: label.into(),
            values,
            apply: Arc::new(apply),
        }
    }

    /// The axis label used in coordinates and result tables.
    pub fn label(&self) -> &str {
        match self {
            Axis::FaultRate(_) => "fault_rate",
            Axis::BitPosition(_) => "bit",
            Axis::FaultyPes(_) => "faulty_pes",
            Axis::ArraySize(_) => "array_size",
            Axis::Threshold(_) => "threshold",
            Axis::Mitigation(_) => "strategy",
            Axis::Polarity(_) => "polarity",
            Axis::Custom { label, .. } => label,
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::FaultRate(v) => v.len(),
            Axis::BitPosition(v) => v.len(),
            Axis::FaultyPes(v) => v.len(),
            Axis::ArraySize(v) => v.len(),
            Axis::Threshold(v) => v.len(),
            Axis::Mitigation(v) => v.len(),
            Axis::Polarity(v) => v.len(),
            Axis::Custom { values, .. } => values.len(),
        }
    }

    /// `true` when the axis has no values (its campaign expands to zero
    /// cells).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands `spec` along this axis: one edited spec per axis value, each
    /// with a coordinate recorded.
    fn expand(&self, spec: &CellSpec) -> Result<Vec<CellSpec>> {
        let label = self.label().to_string();
        let mut out = Vec::with_capacity(self.len());
        match self {
            Axis::FaultRate(values) => {
                for &rate in values {
                    let mut s = spec.clone();
                    s.fault_rate = Some(rate);
                    s.push_coord(&label, AxisValue::Rate(rate));
                    out.push(s);
                }
            }
            Axis::BitPosition(values) => {
                for &bit in values {
                    let mut s = spec.clone();
                    s.bit = Some(bit);
                    s.push_coord(&label, AxisValue::Bit(bit));
                    out.push(s);
                }
            }
            Axis::FaultyPes(values) => {
                for &pes in values {
                    let mut s = spec.clone();
                    s.faulty_pes = Some(pes);
                    s.push_coord(&label, AxisValue::Pes(pes));
                    out.push(s);
                }
            }
            Axis::ArraySize(values) => {
                for &size in values {
                    let mut s = spec.clone();
                    s.systolic = SystolicConfig::square(size)?;
                    s.push_coord(&label, AxisValue::Size(size));
                    out.push(s);
                }
            }
            Axis::Threshold(values) => {
                for &threshold in values {
                    let mut s = spec.clone();
                    s.threshold = Some(threshold);
                    s.push_coord(&label, AxisValue::Threshold(threshold));
                    out.push(s);
                }
            }
            Axis::Mitigation(values) => {
                for &strategy in values {
                    let mut s = spec.clone();
                    s.strategy = Some(strategy);
                    s.push_coord(&label, AxisValue::Strategy(strategy.label().to_string()));
                    out.push(s);
                }
            }
            Axis::Polarity(values) => {
                for &polarity in values {
                    let mut s = spec.clone();
                    s.polarity = polarity;
                    s.push_coord(&label, AxisValue::Polarity(polarity.to_string()));
                    out.push(s);
                }
            }
            Axis::Custom { values, apply, .. } => {
                for &value in values {
                    let mut s = spec.clone();
                    apply(&mut s, value);
                    s.push_coord(&label, AxisValue::Custom(value));
                    out.push(s);
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Custom { label, values, .. } => f
                .debug_struct("Custom")
                .field("label", label)
                .field("values", values)
                .finish_non_exhaustive(),
            other => write!(f, "Axis::{}[{}]", other.label(), other.len()),
        }
    }
}

/// One swept value, typed per axis kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AxisValue {
    /// A fault rate.
    Rate(f64),
    /// A bit position.
    Bit(u32),
    /// A faulty-PE count.
    Pes(usize),
    /// A square array size (side length).
    Size(usize),
    /// A fixed retraining threshold voltage.
    Threshold(f32),
    /// A mitigation-strategy label.
    Strategy(String),
    /// A stuck-at polarity label (`"sa0"` / `"sa1"`).
    Polarity(String),
    /// A custom-axis value.
    Custom(f64),
}

impl AxisValue {
    /// The value as an `f64` plotting coordinate (labels hash to `0.0`).
    pub fn as_f64(&self) -> f64 {
        match self {
            AxisValue::Rate(v) | AxisValue::Custom(v) => *v,
            AxisValue::Bit(v) => f64::from(*v),
            AxisValue::Pes(v) | AxisValue::Size(v) => *v as f64,
            AxisValue::Threshold(v) => f64::from(*v),
            AxisValue::Strategy(_) | AxisValue::Polarity(_) => 0.0,
        }
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Rate(v) | AxisValue::Custom(v) => write!(f, "{v}"),
            AxisValue::Bit(v) => write!(f, "{v}"),
            AxisValue::Pes(v) | AxisValue::Size(v) => write!(f, "{v}"),
            AxisValue::Threshold(v) => write!(f, "{v}"),
            AxisValue::Strategy(s) | AxisValue::Polarity(s) => write!(f, "{s}"),
        }
    }
}

/// One `(axis, value)` coordinate of a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Axis label.
    pub axis: String,
    /// The cell's value on that axis.
    pub value: AxisValue,
}

// ---------------------------------------------------------------------------
// Cell specs
// ---------------------------------------------------------------------------

/// The fully resolved specification of one campaign cell: what the axes (and
/// any custom closures) decided this cell sweeps.
///
/// Custom axes and seed mixers read and edit the public fields; the
/// scheduler resolves defaults at draw time (`bit` falls back to the
/// accumulator MSB of the cell's grid, the polarity defaults to stuck-at-1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// The systolic-array configuration this cell runs against.
    pub systolic: SystolicConfig,
    /// Fraction of faulty PEs to draw (wins over `faulty_pes` if both set).
    pub fault_rate: Option<f64>,
    /// Number of faulty PEs to draw.
    pub faulty_pes: Option<usize>,
    /// Stuck-at bit position (`None` = the accumulator MSB).
    pub bit: Option<u32>,
    /// Stuck-at polarity of drawn faults.
    pub polarity: StuckAt,
    /// Fixed retraining threshold (makes this a retraining cell).
    pub threshold: Option<f32>,
    /// Mitigation strategy (makes this a retraining cell).
    pub strategy: Option<MitigationStrategy>,
    coords: Vec<Coord>,
}

impl CellSpec {
    fn base(systolic: SystolicConfig) -> Self {
        Self {
            systolic,
            fault_rate: None,
            faulty_pes: None,
            bit: None,
            polarity: StuckAt::One,
            threshold: None,
            strategy: None,
            coords: Vec::new(),
        }
    }

    fn push_coord(&mut self, axis: &str, value: AxisValue) {
        self.coords.push(Coord {
            axis: axis.to_string(),
            value,
        });
    }

    /// The cell's coordinates, one per axis in axis order.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The coordinate value on the axis labelled `axis`, if any.
    pub fn coord(&self, axis: &str) -> Option<&AxisValue> {
        self.coords
            .iter()
            .find(|c| c.axis == axis)
            .map(|c| &c.value)
    }

    /// The stuck-at bit this cell injects at: the explicit bit if a bit axis
    /// set one, the accumulator MSB of the cell's grid otherwise.
    pub fn resolved_bit(&self) -> u32 {
        self.bit
            .unwrap_or_else(|| self.systolic.accumulator_format().msb())
    }

    /// How this cell's scheduler executes it. A threshold combined with a
    /// strategy that has no threshold knob is rejected rather than silently
    /// ignored — the coordinate would otherwise label cells by a parameter
    /// that had no effect.
    fn payload(&self, default_epochs: Option<usize>) -> Result<CellPayload> {
        Ok(match (self.strategy, self.threshold) {
            (Some(MitigationStrategy::FaPIT { epochs, .. }), Some(threshold)) => {
                CellPayload::Retrain(MitigationStrategy::FaPIT { epochs, threshold })
            }
            (Some(strategy), Some(_)) => {
                return Err(crate::FalvoltError::invalid_config(format!(
                    "a Threshold axis cannot combine with the {} strategy (only FaPIT retrains \
                     at a fixed threshold)",
                    strategy.label()
                )));
            }
            (Some(strategy), None) => CellPayload::Retrain(strategy),
            (None, Some(threshold)) => {
                let Some(epochs) = default_epochs else {
                    return Err(crate::FalvoltError::invalid_config(
                        "a Threshold axis needs Campaign::retrain_epochs(..) — without it the \
                         cells would silently run prune-only (0-epoch) FaPIT",
                    ));
                };
                CellPayload::Retrain(MitigationStrategy::FaPIT { epochs, threshold })
            }
            (None, None) => CellPayload::Eval,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CellPayload {
    Eval,
    Retrain(MitigationStrategy),
}

/// Pool identity: cells agreeing on every fault-drawing parameter *and* the
/// mixed seed borrow the same sequentially drawn maps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PoolKey {
    systolic: SystolicConfig,
    rate_bits: Option<u64>,
    faulty_pes: Option<usize>,
    bit: u32,
    polarity: StuckAt,
    seed: u64,
}

impl PoolKey {
    fn of(spec: &CellSpec, seed: u64) -> Self {
        Self {
            systolic: spec.systolic,
            rate_bits: spec.fault_rate.map(f64::to_bits),
            faulty_pes: spec.faulty_pes,
            bit: spec.resolved_bit(),
            polarity: spec.polarity,
            seed,
        }
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The measured result of one campaign cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The resolved cell specification (including its coordinates).
    pub spec: CellSpec,
    /// Mean classification accuracy: over the drawn fault maps for
    /// evaluation cells, over the per-map mitigation outcomes for
    /// retraining cells.
    pub accuracy: f32,
    /// Number of fault scenarios averaged.
    pub scenarios: usize,
    /// Per-map mitigation outcomes (empty for evaluation cells).
    pub outcomes: Vec<MitigationOutcome>,
}

impl CellResult {
    /// The cell's coordinates, one per axis in axis order.
    pub fn coords(&self) -> &[Coord] {
        self.spec.coords()
    }

    /// The coordinate value on the axis labelled `axis`, if any.
    pub fn coord(&self, axis: &str) -> Option<&AxisValue> {
        self.spec.coord(axis)
    }

    /// The first (typically only) mitigation outcome of a retraining cell.
    pub fn outcome(&self) -> Option<&MitigationOutcome> {
        self.outcomes.first()
    }
}

/// A finished campaign: the executed cells in plan order plus the context
/// metadata the figure code needs.
///
/// Iterate it for streaming consumption (`for cell in &run`), or serialize
/// the whole thing via [`CampaignRun::into_table`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    axes: Vec<String>,
    baseline_accuracy: f32,
    cells: Vec<CellResult>,
}

impl CampaignRun {
    /// Axis labels, in plan order (outermost first).
    pub fn axes(&self) -> &[String] {
        &self.axes
    }

    /// Fault-free baseline accuracy of the context's trained network.
    pub fn baseline_accuracy(&self) -> f32 {
        self.baseline_accuracy
    }

    /// The executed cells, in plan (cartesian) order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the plan expanded to zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Converts the run into the serde-serializable [`ResultTable`].
    pub fn into_table(self) -> ResultTable {
        ResultTable {
            axes: self.axes,
            baseline_accuracy: self.baseline_accuracy,
            cells: self.cells,
        }
    }

    /// Groups the cells into accuracy series over the axis labelled
    /// `x_axis`: one [`SweepSeries`] per distinct combination of the
    /// *other* coordinates (labelled by joining their values), with one
    /// point per cell in plan order. Cells without an `x_axis` coordinate
    /// are skipped.
    pub fn mean_series(&self, x_axis: &str) -> Vec<SweepSeries> {
        let mut series: Vec<SweepSeries> = Vec::new();
        for cell in &self.cells {
            let Some(x) = cell.coord(x_axis).map(AxisValue::as_f64) else {
                continue;
            };
            let rest: Vec<String> = cell
                .coords()
                .iter()
                .filter(|c| c.axis != x_axis)
                .map(|c| c.value.to_string())
                .collect();
            let label = if rest.is_empty() {
                x_axis.to_string()
            } else {
                rest.join("/")
            };
            let point = SweepPoint {
                x,
                accuracy: cell.accuracy,
                iterations: cell.scenarios,
            };
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.points.push(point),
                None => series.push(SweepSeries {
                    label,
                    points: vec![point],
                }),
            }
        }
        series
    }
}

impl IntoIterator for CampaignRun {
    type Item = CellResult;
    type IntoIter = std::vec::IntoIter<CellResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.into_iter()
    }
}

impl<'a> IntoIterator for &'a CampaignRun {
    type Item = &'a CellResult;
    type IntoIter = std::slice::Iter<'a, CellResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

/// The serde-serializable flat view of a [`CampaignRun`] — what figure code
/// and downstream tooling consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    /// Axis labels, in plan order.
    pub axes: Vec<String>,
    /// Fault-free baseline accuracy.
    pub baseline_accuracy: f32,
    /// One row per cell, in plan order.
    pub cells: Vec<CellResult>,
}

// ---------------------------------------------------------------------------
// The campaign builder and scheduler
// ---------------------------------------------------------------------------

/// Seed-mixing hook: `(campaign seed, cell spec) -> per-cell RNG seed`.
pub type SeedMixer = Arc<dyn Fn(u64, &CellSpec) -> u64 + Send + Sync>;

/// A declarative sweep plan over one prepared [`ExperimentContext`].
///
/// Build it with [`Campaign::new`], add [`Axis`] values (first axis
/// outermost), tune the per-cell scenario count / seed / engine preset, and
/// [`Campaign::run`] it. See the [module docs](crate::campaign) for what the
/// scheduler owns.
///
/// # Example
///
/// ```no_run
/// use falvolt::campaign::{Axis, Campaign};
/// use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
/// use falvolt::mitigation::MitigationStrategy;
///
/// # fn main() -> Result<(), falvolt::FalvoltError> {
/// let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
/// // Figures 6/7 as data: strategies × fault rates, one chip per rate.
/// let run = Campaign::new(&mut ctx)
///     .axis(Axis::FaultRate(vec![0.10, 0.30]))
///     .axis(Axis::Mitigation(vec![
///         MitigationStrategy::FaP,
///         MitigationStrategy::fapit(8),
///         MitigationStrategy::falvolt(8),
///     ]))
///     .run()?;
/// for cell in &run {
///     let outcome = cell.outcome().expect("retraining cell");
///     println!("{:?} -> {:.1}%", cell.coords(), outcome.final_accuracy * 100.0);
/// }
/// # Ok(())
/// # }
/// ```
pub struct Campaign<'a> {
    ctx: &'a mut ExperimentContext,
    axes: Vec<Axis>,
    scenarios_per_cell: usize,
    seed: u64,
    mixer: SeedMixer,
    preset: EnginePreset,
    retrain_epochs: Option<usize>,
    retrain_config: RetrainConfig,
}

impl<'a> Campaign<'a> {
    /// Starts a plan over `ctx` with no axes, one scenario per cell, the
    /// context's seed, the default seed mixer, the full engine preset and
    /// the paper's retraining configuration.
    pub fn new(ctx: &'a mut ExperimentContext) -> Self {
        let seed = ctx.seed();
        Self {
            ctx,
            axes: Vec::new(),
            scenarios_per_cell: 1,
            seed,
            mixer: Arc::new(default_seed_mix),
            preset: EnginePreset::full(),
            retrain_epochs: None,
            retrain_config: RetrainConfig::paper_like(),
        }
    }

    /// Adds a sweep axis (first added is outermost in the cell order).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Fault maps drawn (and averaged) per cell. The paper uses 8 for the
    /// vulnerability sweeps; retraining sweeps typically use 1 chip.
    pub fn scenarios_per_cell(mut self, scenarios: usize) -> Self {
        self.scenarios_per_cell = scenarios;
        self
    }

    /// Overrides the base seed cells mix from (default: the context seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a custom per-cell seed mixer. The default mixer hashes the
    /// cell's fault-drawing parameters (grid, rate / PE count, bit,
    /// polarity) — and deliberately *not* its payload (threshold,
    /// strategy), so the payload cells of one fault configuration share a
    /// once-per-configuration map pool.
    pub fn seed_mixer(
        mut self,
        mixer: impl Fn(u64, &CellSpec) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.mixer = Arc::new(mixer);
        self
    }

    /// Engine preset threaded through scenario views and backends
    /// (default: [`EnginePreset::full`]). Presets are execution strategies —
    /// results are bit-identical across them.
    pub fn preset(mut self, preset: EnginePreset) -> Self {
        self.preset = preset;
        self
    }

    /// Retraining epochs used by [`Axis::Threshold`] cells (strategies from
    /// an [`Axis::Mitigation`] carry their own epoch budget).
    pub fn retrain_epochs(mut self, epochs: usize) -> Self {
        self.retrain_epochs = Some(epochs);
        self
    }

    /// Overrides the retraining hyper-parameters (default:
    /// [`RetrainConfig::paper_like`]).
    pub fn retrain_config(mut self, config: RetrainConfig) -> Self {
        self.retrain_config = config;
        self
    }

    /// Executes the plan: expands the axes, mixes seeds, draws the fault-map
    /// pools sequentially (so results are worker-count-independent), fans
    /// evaluation cells out through the shared-cache scenario engine and
    /// retraining cells across scenario views, and returns the cells in
    /// plan order. The context's baseline is restored before and after.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FalvoltError`] for invalid plans (zero scenarios per
    /// cell, invalid array sizes), fault-map draw failures and the first
    /// cell error in plan order.
    pub fn run(self) -> Result<CampaignRun> {
        let Campaign {
            ctx,
            axes,
            scenarios_per_cell,
            seed,
            mixer,
            preset,
            retrain_epochs,
            retrain_config,
        } = self;
        if scenarios_per_cell == 0 {
            return Err(crate::FalvoltError::invalid_config(
                "a campaign needs at least one scenario per cell",
            ));
        }

        // 1. Expand the axes into the cartesian cell-spec list.
        let mut specs = vec![CellSpec::base(*ctx.systolic_config())];
        for axis in &axes {
            let mut next = Vec::with_capacity(specs.len() * axis.len().max(1));
            for spec in &specs {
                next.extend(axis.expand(spec)?);
            }
            specs = next;
        }

        // 2. Mix seeds and draw the fault-map pools sequentially, in cell
        // order. Cells sharing every draw parameter and the mixed seed
        // borrow one pool (e.g. the strategies of one fault rate).
        let mut pools: Vec<(PoolKey, Arc<Vec<FaultMap>>)> = Vec::new();
        let mut cell_pool = Vec::with_capacity(specs.len());
        for spec in &specs {
            let key = PoolKey::of(spec, mixer(seed, spec));
            let index = match pools.iter().position(|(k, _)| *k == key) {
                Some(index) => index,
                None => {
                    pools.push((
                        key,
                        Arc::new(draw_pool(spec, key.seed, scenarios_per_cell)?),
                    ));
                    pools.len() - 1
                }
            };
            cell_pool.push(index);
        }

        // 3. Execute against the restored baseline.
        let payloads: Vec<CellPayload> = specs
            .iter()
            .map(|s| s.payload(retrain_epochs))
            .collect::<Result<_>>()?;
        ctx.restore_baseline()?;

        // Evaluation cells: one flat scenario list, fanned out through the
        // preset-aware scenario engine with the context-owned caches (the
        // ScenarioProducts batching groups scenarios per grid internally).
        let eval_cells: Vec<usize> = payloads
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, CellPayload::Eval))
            .map(|(i, _)| i)
            .collect();
        let mut eval_accuracies = Vec::new();
        if !eval_cells.is_empty() {
            let mut scenarios = Vec::with_capacity(eval_cells.len() * scenarios_per_cell);
            for &cell in &eval_cells {
                for map in pools[cell_pool[cell]].1.iter() {
                    scenarios.push((specs[cell].systolic, map.clone()));
                }
            }
            eval_accuracies = scenario_accuracies(
                ctx.network(),
                scenarios,
                ctx.test_batches(),
                ctx.caches(),
                &preset,
            )?;
        }

        // Retraining cells: scenario views of the baseline sharing one fresh
        // sweep cache, one worker per cell, the Mitigator run per drawn map.
        let retrain_cells: Vec<usize> = payloads
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, CellPayload::Retrain(_)))
            .map(|(i, _)| i)
            .collect();
        let mut retrain_outcomes: Vec<Vec<MitigationOutcome>> = Vec::new();
        if !retrain_cells.is_empty() {
            let mitigator = Mitigator::new(ctx.classes(), retrain_config);
            let baseline = ctx.network();
            let (train, test) = (ctx.train_batches(), ctx.test_batches());
            let sweep_cache = Arc::new(SweepCache::new());
            let results: Vec<Result<Vec<MitigationOutcome>>> = retrain_cells
                .into_par_iter()
                .map(|cell| {
                    let CellPayload::Retrain(strategy) = payloads[cell] else {
                        unreachable!("retrain_cells filters on the retrain payload");
                    };
                    pools[cell_pool[cell]]
                        .1
                        .iter()
                        .map(|map| {
                            let mut network = retrain_view(baseline, &sweep_cache, &preset);
                            mitigator.run(&mut network, map, train, test, strategy)
                        })
                        .collect()
                })
                .collect();
            retrain_outcomes = results.into_iter().collect::<Result<Vec<_>>>()?;
        }

        // 4. Assemble the cells back into plan order and restore the
        // baseline (retraining mutates only scenario views, but symmetric
        // restore keeps the contract simple).
        ctx.restore_baseline()?;
        let mut eval_iter = eval_accuracies.chunks(scenarios_per_cell);
        let mut retrain_iter = retrain_outcomes.into_iter();
        let cells: Vec<CellResult> = specs
            .into_iter()
            .zip(&payloads)
            .map(|(spec, payload)| match payload {
                CellPayload::Eval => {
                    let chunk = eval_iter.next().expect("one chunk per eval cell");
                    CellResult {
                        spec,
                        accuracy: chunk.iter().sum::<f32>() / chunk.len() as f32,
                        scenarios: chunk.len(),
                        outcomes: Vec::new(),
                    }
                }
                CellPayload::Retrain(_) => {
                    let outcomes = retrain_iter
                        .next()
                        .expect("one outcome set per retrain cell");
                    CellResult {
                        spec,
                        accuracy: outcomes.iter().map(|o| o.final_accuracy).sum::<f32>()
                            / outcomes.len() as f32,
                        scenarios: outcomes.len(),
                        outcomes,
                    }
                }
            })
            .collect();

        Ok(CampaignRun {
            axes: axes.iter().map(|a| a.label().to_string()).collect(),
            baseline_accuracy: ctx.baseline_accuracy(),
            cells,
        })
    }
}

/// Builds one retraining worker: a scenario view of the baseline with the
/// shared sweep cache and the campaign preset installed.
fn retrain_view(
    baseline: &SpikingNetwork,
    sweep_cache: &Arc<SweepCache>,
    preset: &EnginePreset,
) -> SpikingNetwork {
    let mut network = baseline.scenario_view();
    network.set_engine_preset(*preset);
    network.set_sweep_cache(if preset.prefix_cache() {
        Some(Arc::clone(sweep_cache))
    } else {
        None
    });
    network
}

/// Draws one cell pool: `scenarios` maps from a fresh RNG seeded with the
/// cell's mixed seed.
fn draw_pool(spec: &CellSpec, seed: u64, scenarios: usize) -> Result<Vec<FaultMap>> {
    let bit = spec.resolved_bit();
    let mut maps = Vec::with_capacity(scenarios);
    if let Some(rate) = spec.fault_rate {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..scenarios {
            maps.push(FaultMap::random_with_rate(
                &spec.systolic,
                rate,
                bit,
                spec.polarity,
                &mut rng,
            )?);
        }
    } else if let Some(pes) = spec.faulty_pes {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..scenarios {
            maps.push(FaultMap::random_faulty_pes(
                &spec.systolic,
                pes,
                bit,
                spec.polarity,
                &mut rng,
            )?);
        }
    } else {
        // No fault axis: the fault-free chip.
        maps.resize(scenarios, FaultMap::new(spec.systolic));
    }
    Ok(maps)
}

/// The historical per-figure seed mixers of the pre-campaign drivers.
///
/// Pass one to [`Campaign::seed_mixer`] to reproduce exactly the fault maps
/// a legacy driver drew — the deprecated `falvolt::experiment` wrappers, the
/// figure benches and the `reproduce` binary all install these, and the
/// campaign equivalence tests pin the formulas bit-for-bit. Plans that do
/// not need continuity with recorded series should keep the default mixer.
pub mod mixers {
    use super::CellSpec;

    /// Figure 2 (`threshold_sweep`): one chip per fault rate.
    pub fn per_fault_rate(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ spec.fault_rate.unwrap_or(0.0).to_bits()
    }

    /// Figures 6/7 (`mitigation_comparison`): one chip per fault rate,
    /// decorrelated from the Figure 2 pool by the rotation.
    pub fn per_fault_rate_rotated(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ spec.fault_rate.unwrap_or(0.0).to_bits().rotate_left(13)
    }

    /// Figure 5a (`bit_position_experiment`): one pool per bit position,
    /// shared by both polarities.
    pub fn per_bit(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ u64::from(spec.bit.unwrap_or(0)) << 8
    }

    /// Figure 5b (`faulty_pe_experiment`): one pool per faulty-PE count.
    pub fn per_faulty_pe_count(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ (spec.faulty_pes.unwrap_or(0) as u64) << 16
    }

    /// Figure 5c (`array_size_experiment`): one pool per array side length.
    pub fn per_array_size(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ (spec.systolic.rows() as u64) << 24
    }

    /// Figure 8 (`convergence_experiment`): one fixed chip for every cell.
    pub fn convergence(seed: u64, _spec: &CellSpec) -> u64 {
        seed ^ 0xF168
    }
}

/// The default seed mixer: a content hash of the fault-drawing parameters.
/// The payload (threshold, strategy) is deliberately excluded so payload
/// variants of one fault configuration retrain against the same chips.
fn default_seed_mix(seed: u64, spec: &CellSpec) -> u64 {
    let mut fp = falvolt_tensor::Fingerprint::new();
    fp.write_str("campaign-cell");
    fp.write_u64(seed);
    fp.write_usize(spec.systolic.rows());
    fp.write_usize(spec.systolic.cols());
    fp.write_u64(spec.fault_rate.map_or(u64::MAX, f64::to_bits));
    fp.write_u64(spec.faulty_pes.map_or(u64::MAX, |p| p as u64));
    fp.write_u64(u64::from(spec.resolved_bit()));
    fp.write_u64(match spec.polarity {
        StuckAt::Zero => 0,
        StuckAt::One => 1,
    });
    fp.finish() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DatasetKind, ExperimentScale};

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::prepare_untrained(DatasetKind::Mnist, ExperimentScale::Tiny, 9)
            .expect("untrained context")
    }

    #[test]
    fn axes_expand_cartesian_first_axis_outermost() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultRate(vec![0.1, 0.3]))
            .axis(Axis::BitPosition(vec![0, 15]))
            .run()
            .unwrap();
        assert_eq!(run.axes(), &["fault_rate".to_string(), "bit".to_string()]);
        let coords: Vec<(f64, u32)> = run
            .cells()
            .iter()
            .map(|c| (c.spec.fault_rate.unwrap(), c.spec.bit.unwrap()))
            .collect();
        assert_eq!(coords, vec![(0.1, 0), (0.1, 15), (0.3, 0), (0.3, 15)]);
        for cell in &run {
            assert_eq!(cell.scenarios, 1);
            assert!(cell.outcomes.is_empty(), "eval cells have no outcomes");
            assert!((0.0..=1.0).contains(&cell.accuracy));
        }
    }

    #[test]
    fn payload_cells_share_a_once_per_rate_pool_and_seeds_are_stable() {
        // The default mixer excludes the payload, so the threshold cells of
        // one rate must retrain against the same drawn chip; and rerunning
        // the identical plan reproduces identical accuracies.
        let mut ctx = tiny_ctx();
        let plan = |ctx: &mut ExperimentContext| {
            Campaign::new(ctx)
                .axis(Axis::FaultRate(vec![0.4]))
                .axis(Axis::Threshold(vec![0.6, 1.0]))
                .retrain_epochs(1)
                .run()
                .unwrap()
        };
        let a = plan(&mut ctx);
        let b = plan(&mut ctx);
        assert_eq!(a.cells().len(), 2);
        for cell in &a {
            let outcome = cell.outcome().expect("retraining cell");
            assert_eq!(outcome.strategy, "FaPIT");
            assert_eq!(outcome.epochs_run, 1);
        }
        // Same chip for both thresholds: identical pruned fraction.
        assert_eq!(
            a.cells()[0].outcomes[0].pruned_weight_fraction,
            a.cells()[1].outcomes[0].pruned_weight_fraction
        );
        assert_eq!(a, b, "a campaign plan is a pure function of its inputs");
    }

    #[test]
    fn custom_axis_edits_the_spec_and_records_coords() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::custom("array_rows", vec![4.0, 8.0], |spec, rows| {
                spec.systolic = SystolicConfig::new(rows as usize, 8).unwrap();
            }))
            .run()
            .unwrap();
        assert_eq!(run.cells()[0].spec.systolic.rows(), 4);
        assert_eq!(run.cells()[1].spec.systolic.rows(), 8);
        assert_eq!(
            run.cells()[1].coord("array_rows"),
            Some(&AxisValue::Custom(8.0))
        );
        assert_eq!(run.mean_series("array_rows").len(), 1);
        assert_eq!(run.mean_series("array_rows")[0].points.len(), 2);
    }

    #[test]
    fn mean_series_groups_by_remaining_coords() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::Polarity(vec![StuckAt::Zero, StuckAt::One]))
            .axis(Axis::BitPosition(vec![0, 15]))
            .axis(Axis::FaultyPes(vec![4]))
            .scenarios_per_cell(2)
            .run()
            .unwrap();
        assert_eq!(run.len(), 4);
        let series = run.mean_series("bit");
        assert_eq!(series.len(), 2, "one series per polarity");
        assert_eq!(series[0].label, "sa0/4");
        assert_eq!(series[1].label, "sa1/4");
        assert!(series.iter().all(|s| s.points.len() == 2));
        assert!(series
            .iter()
            .all(|s| s.points.iter().all(|p| p.iterations == 2)));
        // The table serializes the same cells.
        let table = run.into_table();
        assert_eq!(table.cells.len(), 4);
        assert_eq!(table.axes.len(), 3);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut ctx = tiny_ctx();
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![1]))
            .scenarios_per_cell(0)
            .run()
            .is_err());
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::ArraySize(vec![0]))
            .run()
            .is_err());
        // A threshold cannot silently ride along with a strategy that has no
        // threshold knob — the coordinate would label cells by a parameter
        // that had no effect.
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::Threshold(vec![0.5]))
            .axis(Axis::Mitigation(vec![MitigationStrategy::FaP]))
            .run()
            .is_err());
        // A Threshold axis without an epoch budget would silently run
        // prune-only FaPIT; the plan is rejected instead.
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::Threshold(vec![0.5]))
            .run()
            .is_err());
        // An empty axis expands to zero cells, not an error.
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultRate(Vec::new()))
            .run()
            .unwrap();
        assert!(run.is_empty());
        assert!(Axis::FaultRate(Vec::new()).is_empty());
    }

    #[test]
    fn presets_are_execution_strategies_not_result_state() {
        let mut ctx = tiny_ctx();
        let plan = |ctx: &mut ExperimentContext, preset: EnginePreset| {
            Campaign::new(ctx)
                .axis(Axis::FaultyPes(vec![0, 6]))
                .scenarios_per_cell(2)
                .preset(preset)
                .run()
                .unwrap()
        };
        let full = plan(&mut ctx, EnginePreset::full());
        let replay = plan(&mut ctx, EnginePreset::event_driven());
        let seedlike = plan(&mut ctx, EnginePreset::seed_equivalent());
        let accuracies =
            |run: &CampaignRun| -> Vec<f32> { run.cells().iter().map(|c| c.accuracy).collect() };
        assert_eq!(accuracies(&full), accuracies(&replay));
        assert_eq!(accuracies(&full), accuracies(&seedlike));
    }
}
