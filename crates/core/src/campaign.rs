//! Declarative sweep campaigns: one scheduler for every figure-style sweep.
//!
//! The paper's results are all sweeps — fault-rate × threshold, bit
//! position, faulty-PE count, array size, mitigation strategy. Before this
//! module each sweep was its own driver function with hand-threaded caches,
//! fault-map pools and scenario fan-out; a [`Campaign`] replaces them with a
//! plan built from typed [`Axis`] values, whose single scheduler owns
//!
//! * **per-cell seed mixing** (a pluggable [`Campaign::seed_mixer`]; the
//!   default hashes the cell's fault-drawing parameters, the legacy drivers
//!   install their historical formulas so drawn maps are unchanged),
//! * **fault-map pools**: cells whose fault-drawing parameters *and* mixed
//!   seed agree share one sequentially drawn pool — e.g. the strategies of
//!   one fault rate retrain against the same chip, drawn once per rate,
//! * **scenario-view fan-out**: every cell evaluates or retrains on a
//!   copy-on-write [`SpikingNetwork::scenario_view`] of the restored
//!   baseline, in parallel, with results independent of worker count,
//! * **cache sharing**: evaluation cells share the context-owned
//!   [`crate::SweepCaches`] (prefix outputs, im2col lowerings, clean
//!   products) and retraining cells share one fresh `SweepCache`,
//! * **multi-map batching**: evaluation scenarios of one grid configuration
//!   form a [`crate::ScenarioProducts`] set, so products against
//!   scenario-invariant operands are evaluated for all fault maps in one
//!   event walk (gated by [`EnginePreset::scenario_batching`]).
//!
//! A cell is a *retraining* cell when its spec carries a mitigation strategy
//! or a fixed retraining threshold, and an *evaluation* cell otherwise.
//! Evaluation cells measure classification accuracy under their drawn fault
//! maps through the systolic backend; retraining cells run the
//! [`Mitigator`] (prune + retrain) per drawn map on the float backend.
//!
//! # Example
//!
//! ```no_run
//! use falvolt::campaign::{Axis, Campaign};
//! use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
//!
//! # fn main() -> Result<(), falvolt::FalvoltError> {
//! let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
//! // Figure 5b as data: accuracy vs faulty-PE count, 8 maps per point.
//! let run = Campaign::new(&mut ctx)
//!     .axis(Axis::FaultyPes(vec![0, 8, 32]))
//!     .scenarios_per_cell(8)
//!     .run()?;
//! for cell in &run {
//!     println!("{} faulty PEs -> {:.1}%",
//!         cell.spec.faulty_pes.unwrap_or(0), cell.accuracy * 100.0);
//! }
//! let table = run.into_table(); // serde-serializable
//! assert_eq!(table.axes, vec!["faulty_pes".to_string()]);
//! # Ok(())
//! # }
//! ```

use crate::error::{CampaignError, CellFailure};
use crate::experiment::ExperimentContext;
use crate::json;
use crate::mitigation::{MitigationOutcome, MitigationStrategy, Mitigator, RetrainConfig};
use crate::vulnerability::{
    panic_message, scenario_outcomes, ScenarioOutcome, SweepPoint, SweepSeries,
};
use crate::Result;
use falvolt_snn::{EnginePreset, SpikingNetwork, SweepCache};
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig};
use falvolt_tensor::CancelToken;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Axes
// ---------------------------------------------------------------------------

/// One typed sweep dimension of a [`Campaign`].
///
/// Axes expand into the cartesian product in the order they are added (the
/// first axis is outermost); each value edits the cell's [`CellSpec`] and
/// records a [`Coord`] for the result table.
///
/// # Example
///
/// ```
/// use falvolt::campaign::{Axis, CellSpec};
///
/// // Typed axes are plain data...
/// let bits = Axis::BitPosition(vec![0, 8, 15]);
/// assert_eq!(bits.label(), "bit");
/// assert_eq!(bits.len(), 3);
/// // ...and anything they cannot express becomes a closure axis.
/// let rows = Axis::custom("array_rows", vec![8.0, 16.0], |spec: &mut CellSpec, rows| {
///     spec.systolic = falvolt_systolic::SystolicConfig::new(rows as usize, 16).unwrap();
/// });
/// assert_eq!(rows.label(), "array_rows");
/// ```
#[derive(Clone)]
pub enum Axis {
    /// Fraction of faulty PEs; each cell draws maps with
    /// [`FaultMap::random_with_rate`]. Takes precedence over
    /// [`Axis::FaultyPes`] when both are set on one cell.
    FaultRate(Vec<f64>),
    /// Stuck-at bit position inside the accumulator (defaults to the MSB
    /// when no bit axis is present).
    BitPosition(Vec<u32>),
    /// Number of faulty PEs; each cell draws maps with
    /// [`FaultMap::random_faulty_pes`].
    FaultyPes(Vec<usize>),
    /// Square systolic-array size (replaces the context's grid per cell).
    ArraySize(Vec<usize>),
    /// Fixed retraining threshold voltage: makes the cell a retraining cell
    /// running [`MitigationStrategy::FaPIT`] at this threshold with
    /// [`Campaign::retrain_epochs`] epochs (which must be set — a plan with
    /// a threshold axis and no epoch budget is rejected).
    Threshold(Vec<f32>),
    /// Mitigation strategy: makes the cell a retraining cell.
    Mitigation(Vec<MitigationStrategy>),
    /// Stuck-at polarity of the drawn faults (defaults to stuck-at-1).
    Polarity(Vec<StuckAt>),
    /// A closure axis for sweep dimensions the typed variants cannot
    /// express: the closure edits the [`CellSpec`] for each value.
    Custom {
        /// Axis label used in coordinates and tables.
        label: String,
        /// The swept values.
        values: Vec<f64>,
        /// Spec editor applied per value.
        apply: SpecEditor,
    },
}

/// Shared spec-editing closure of an [`Axis::Custom`] axis.
pub type SpecEditor = Arc<dyn Fn(&mut CellSpec, f64) + Send + Sync>;

impl Axis {
    /// Builds a closure axis (see [`Axis::Custom`]).
    pub fn custom(
        label: impl Into<String>,
        values: Vec<f64>,
        apply: impl Fn(&mut CellSpec, f64) + Send + Sync + 'static,
    ) -> Self {
        Axis::Custom {
            label: label.into(),
            values,
            apply: Arc::new(apply),
        }
    }

    /// The axis label used in coordinates and result tables.
    pub fn label(&self) -> &str {
        match self {
            Axis::FaultRate(_) => "fault_rate",
            Axis::BitPosition(_) => "bit",
            Axis::FaultyPes(_) => "faulty_pes",
            Axis::ArraySize(_) => "array_size",
            Axis::Threshold(_) => "threshold",
            Axis::Mitigation(_) => "strategy",
            Axis::Polarity(_) => "polarity",
            Axis::Custom { label, .. } => label,
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::FaultRate(v) => v.len(),
            Axis::BitPosition(v) => v.len(),
            Axis::FaultyPes(v) => v.len(),
            Axis::ArraySize(v) => v.len(),
            Axis::Threshold(v) => v.len(),
            Axis::Mitigation(v) => v.len(),
            Axis::Polarity(v) => v.len(),
            Axis::Custom { values, .. } => values.len(),
        }
    }

    /// `true` when the axis has no values (its campaign expands to zero
    /// cells).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands `spec` along this axis: one edited spec per axis value, each
    /// with a coordinate recorded.
    fn expand(&self, spec: &CellSpec) -> Result<Vec<CellSpec>> {
        let label = self.label().to_string();
        let mut out = Vec::with_capacity(self.len());
        match self {
            Axis::FaultRate(values) => {
                for &rate in values {
                    let mut s = spec.clone();
                    s.fault_rate = Some(rate);
                    s.push_coord(&label, AxisValue::Rate(rate));
                    out.push(s);
                }
            }
            Axis::BitPosition(values) => {
                for &bit in values {
                    let mut s = spec.clone();
                    s.bit = Some(bit);
                    s.push_coord(&label, AxisValue::Bit(bit));
                    out.push(s);
                }
            }
            Axis::FaultyPes(values) => {
                for &pes in values {
                    let mut s = spec.clone();
                    s.faulty_pes = Some(pes);
                    s.push_coord(&label, AxisValue::Pes(pes));
                    out.push(s);
                }
            }
            Axis::ArraySize(values) => {
                for &size in values {
                    let mut s = spec.clone();
                    s.systolic = SystolicConfig::square(size)?;
                    s.push_coord(&label, AxisValue::Size(size));
                    out.push(s);
                }
            }
            Axis::Threshold(values) => {
                for &threshold in values {
                    let mut s = spec.clone();
                    s.threshold = Some(threshold);
                    s.push_coord(&label, AxisValue::Threshold(threshold));
                    out.push(s);
                }
            }
            Axis::Mitigation(values) => {
                for &strategy in values {
                    let mut s = spec.clone();
                    s.strategy = Some(strategy);
                    s.push_coord(&label, AxisValue::Strategy(strategy.label().to_string()));
                    out.push(s);
                }
            }
            Axis::Polarity(values) => {
                for &polarity in values {
                    let mut s = spec.clone();
                    s.polarity = polarity;
                    s.push_coord(&label, AxisValue::Polarity(polarity.to_string()));
                    out.push(s);
                }
            }
            Axis::Custom { values, apply, .. } => {
                for &value in values {
                    let mut s = spec.clone();
                    apply(&mut s, value);
                    s.push_coord(&label, AxisValue::Custom(value));
                    out.push(s);
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Custom { label, values, .. } => f
                .debug_struct("Custom")
                .field("label", label)
                .field("values", values)
                .finish_non_exhaustive(),
            other => write!(f, "Axis::{}[{}]", other.label(), other.len()),
        }
    }
}

/// One swept value, typed per axis kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AxisValue {
    /// A fault rate.
    Rate(f64),
    /// A bit position.
    Bit(u32),
    /// A faulty-PE count.
    Pes(usize),
    /// A square array size (side length).
    Size(usize),
    /// A fixed retraining threshold voltage.
    Threshold(f32),
    /// A mitigation-strategy label.
    Strategy(String),
    /// A stuck-at polarity label (`"sa0"` / `"sa1"`).
    Polarity(String),
    /// A custom-axis value.
    Custom(f64),
}

impl AxisValue {
    /// The value as an `f64` plotting coordinate (labels hash to `0.0`).
    pub fn as_f64(&self) -> f64 {
        match self {
            AxisValue::Rate(v) | AxisValue::Custom(v) => *v,
            AxisValue::Bit(v) => f64::from(*v),
            AxisValue::Pes(v) | AxisValue::Size(v) => *v as f64,
            AxisValue::Threshold(v) => f64::from(*v),
            AxisValue::Strategy(_) | AxisValue::Polarity(_) => 0.0,
        }
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Rate(v) | AxisValue::Custom(v) => write!(f, "{v}"),
            AxisValue::Bit(v) => write!(f, "{v}"),
            AxisValue::Pes(v) | AxisValue::Size(v) => write!(f, "{v}"),
            AxisValue::Threshold(v) => write!(f, "{v}"),
            AxisValue::Strategy(s) | AxisValue::Polarity(s) => write!(f, "{s}"),
        }
    }
}

/// One `(axis, value)` coordinate of a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Axis label.
    pub axis: String,
    /// The cell's value on that axis.
    pub value: AxisValue,
}

// ---------------------------------------------------------------------------
// Cell specs
// ---------------------------------------------------------------------------

/// The fully resolved specification of one campaign cell: what the axes (and
/// any custom closures) decided this cell sweeps.
///
/// Custom axes and seed mixers read and edit the public fields; the
/// scheduler resolves defaults at draw time (`bit` falls back to the
/// accumulator MSB of the cell's grid, the polarity defaults to stuck-at-1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// The systolic-array configuration this cell runs against.
    pub systolic: SystolicConfig,
    /// Fraction of faulty PEs to draw (wins over `faulty_pes` if both set).
    pub fault_rate: Option<f64>,
    /// Number of faulty PEs to draw.
    pub faulty_pes: Option<usize>,
    /// Stuck-at bit position (`None` = the accumulator MSB).
    pub bit: Option<u32>,
    /// Stuck-at polarity of drawn faults.
    pub polarity: StuckAt,
    /// Fixed retraining threshold (makes this a retraining cell).
    pub threshold: Option<f32>,
    /// Mitigation strategy (makes this a retraining cell).
    pub strategy: Option<MitigationStrategy>,
    coords: Vec<Coord>,
}

impl CellSpec {
    fn base(systolic: SystolicConfig) -> Self {
        Self {
            systolic,
            fault_rate: None,
            faulty_pes: None,
            bit: None,
            polarity: StuckAt::One,
            threshold: None,
            strategy: None,
            coords: Vec::new(),
        }
    }

    fn push_coord(&mut self, axis: &str, value: AxisValue) {
        self.coords.push(Coord {
            axis: axis.to_string(),
            value,
        });
    }

    /// The cell's coordinates, one per axis in axis order.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The coordinate value on the axis labelled `axis`, if any.
    pub fn coord(&self, axis: &str) -> Option<&AxisValue> {
        self.coords
            .iter()
            .find(|c| c.axis == axis)
            .map(|c| &c.value)
    }

    /// The stuck-at bit this cell injects at: the explicit bit if a bit axis
    /// set one, the accumulator MSB of the cell's grid otherwise.
    pub fn resolved_bit(&self) -> u32 {
        self.bit
            .unwrap_or_else(|| self.systolic.accumulator_format().msb())
    }

    /// How this cell's scheduler executes it. A threshold combined with a
    /// strategy that has no threshold knob is rejected rather than silently
    /// ignored — the coordinate would otherwise label cells by a parameter
    /// that had no effect.
    fn payload(&self, default_epochs: Option<usize>) -> Result<CellPayload> {
        Ok(match (self.strategy, self.threshold) {
            (Some(MitigationStrategy::FaPIT { epochs, .. }), Some(threshold)) => {
                CellPayload::Retrain(MitigationStrategy::FaPIT { epochs, threshold })
            }
            (Some(strategy), Some(_)) => {
                return Err(crate::FalvoltError::invalid_config(format!(
                    "a Threshold axis cannot combine with the {} strategy (only FaPIT retrains \
                     at a fixed threshold)",
                    strategy.label()
                )));
            }
            (Some(strategy), None) => CellPayload::Retrain(strategy),
            (None, Some(threshold)) => {
                let Some(epochs) = default_epochs else {
                    return Err(crate::FalvoltError::invalid_config(
                        "a Threshold axis needs Campaign::retrain_epochs(..) — without it the \
                         cells would silently run prune-only (0-epoch) FaPIT",
                    ));
                };
                CellPayload::Retrain(MitigationStrategy::FaPIT { epochs, threshold })
            }
            (None, None) => CellPayload::Eval,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CellPayload {
    Eval,
    Retrain(MitigationStrategy),
}

/// Pool identity: cells agreeing on every fault-drawing parameter *and* the
/// mixed seed borrow the same sequentially drawn maps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PoolKey {
    systolic: SystolicConfig,
    rate_bits: Option<u64>,
    faulty_pes: Option<usize>,
    bit: u32,
    polarity: StuckAt,
    seed: u64,
}

impl PoolKey {
    fn of(spec: &CellSpec, seed: u64) -> Self {
        Self {
            systolic: spec.systolic,
            rate_bits: spec.fault_rate.map(f64::to_bits),
            faulty_pes: spec.faulty_pes,
            bit: spec.resolved_bit(),
            polarity: spec.polarity,
            seed,
        }
    }
}

// ---------------------------------------------------------------------------
// Resilience: statuses, budgets, retries, checkpoints
// ---------------------------------------------------------------------------

/// Why a cell was skipped rather than executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The run's [`RunBudget`] deadline expired before the cell started (or
    /// while it was cooperatively winding down).
    Deadline,
    /// The run's [`CancelToken`] was tripped externally.
    Cancelled,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::Deadline => write!(f, "deadline"),
            SkipReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// How one campaign cell ended. A non-`Completed` cell is result *data* —
/// it rides in the [`ResultTable`] with `accuracy: 0.0, scenarios: 0` —
/// never a process abort.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// The cell executed; its accuracy (and outcomes) are valid.
    Completed,
    /// Every attempt at the cell failed; the shared caches were quarantined
    /// if a panic was involved.
    Failed {
        /// The last attempt's failure.
        cause: CellFailure,
        /// Attempts made (1 = no retries).
        attempts: usize,
    },
    /// The cell never ran: the deadline expired or the run was cancelled
    /// first.
    Skipped {
        /// Why the cell was skipped.
        reason: SkipReason,
    },
}

impl CellStatus {
    /// `true` when the cell executed and its accuracy is valid.
    pub fn is_completed(&self) -> bool {
        matches!(self, CellStatus::Completed)
    }

    /// `true` when every attempt at the cell failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellStatus::Failed { .. })
    }

    /// `true` when the cell was skipped (deadline or cancellation).
    pub fn is_skipped(&self) -> bool {
        matches!(self, CellStatus::Skipped { .. })
    }
}

/// Resource budget of one [`Campaign::run`]: wall-clock deadline, concurrent
/// cell admission, and a byte budget gating how many drawn fault scenarios
/// are admitted per execution wave.
///
/// All three knobs default to unlimited, which also keeps the scheduler on
/// its fastest path (one wave containing every cell, so cross-cell
/// [`crate::ScenarioProducts`] batching sees the whole scenario axis).
///
/// On deadline expiry the run does NOT error: it returns the completed
/// prefix, with every remaining cell marked
/// [`CellStatus::Skipped`]`{ reason: `[`SkipReason::Deadline`]` }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    deadline: Option<Duration>,
    max_concurrent_cells: Option<usize>,
    scenario_bytes_budget: Option<usize>,
}

impl RunBudget {
    /// No deadline, no admission limits — the default.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Wall-clock budget measured from [`Campaign::run`] entry. Checked at
    /// wave and retry boundaries, at worker start, and between evaluation
    /// batches; expiry also trips the run's cancel token so in-flight
    /// executors stop at fold-chain granularity.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// At most this many cells in flight per execution wave (clamped to at
    /// least 1). Bounds peak memory at the cost of cross-cell batching.
    pub fn max_concurrent_cells(mut self, cells: usize) -> Self {
        self.max_concurrent_cells = Some(cells.max(1));
        self
    }

    /// Admission gate on the estimated bytes of drawn fault-map scenarios
    /// per wave (a wave always admits at least one cell, so a single huge
    /// cell cannot deadlock the schedule).
    pub fn scenario_bytes_budget(mut self, bytes: usize) -> Self {
        self.scenario_bytes_budget = Some(bytes);
        self
    }
}

/// Bounded-retry policy for failed cells: capped exponential backoff, each
/// attempt on a fresh scenario view (retries cannot change a successful
/// result — cells are pure functions of spec and seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: usize,
    backoff: Duration,
    backoff_cap: Duration,
}

impl RetryPolicy {
    /// One attempt, no retries — the default.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// Up to `max_attempts` total attempts per cell (clamped to at least 1),
    /// with a 25 ms base backoff capped at 1 s.
    pub fn attempts(max_attempts: usize) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
        }
    }

    /// Overrides the backoff: the first retry waits `base`, each further
    /// retry doubles the wait, capped at `cap`.
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// Backoff before the given attempt (attempts are 1-based; attempt 2 is
    /// the first retry and waits the base).
    fn backoff_for(&self, attempt: usize) -> Duration {
        let doublings = attempt.saturating_sub(2).min(16) as u32;
        self.backoff
            .saturating_mul(1 << doublings)
            .min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A consumer of periodic checkpoints (write to disk, hand to a supervisor).
pub type CheckpointSink = Arc<dyn Fn(&CampaignCheckpoint) + Send + Sync>;

/// Chaos/test injection hook: `(cell index, attempt) -> Ok | Err(message)`;
/// may also panic or sleep. Installed via [`Campaign::cell_hook`].
type CellHook = Arc<dyn Fn(usize, usize) -> std::result::Result<(), String> + Send + Sync>;

/// One completed cell inside a checkpoint: the plan index plus the result
/// payload. The spec is NOT stored — on resume it is reattached from the
/// re-expanded plan, which the fingerprint certifies identical.
#[derive(Debug, Clone, PartialEq)]
struct CheckpointCell {
    index: usize,
    accuracy: f32,
    scenarios: usize,
    outcomes: Vec<MitigationOutcome>,
}

/// A resumable snapshot of a partially executed campaign: the plan
/// fingerprint plus every cell completed so far.
///
/// Emitted through [`Campaign::checkpoint_sink`] after each execution wave
/// and consumed by [`Campaign::resume`]. Only `Completed` cells are
/// recorded: failed and skipped cells are re-attempted on resume, so a
/// killed-and-resumed run converges to the same [`ResultTable`] as an
/// uninterrupted one.
///
/// The JSON encoding ([`CampaignCheckpoint::to_json`]) stores every float as
/// a hex string of its IEEE-754 bits, so a round-trip through disk is
/// bit-exact — resumed accuracies compare `==` to uninterrupted ones.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    fingerprint: u64,
    baseline_accuracy: f32,
    total_cells: usize,
    cells: Vec<CheckpointCell>,
}

impl CampaignCheckpoint {
    /// Fingerprint of the plan this checkpoint belongs to ([`Campaign::resume`]
    /// refuses checkpoints whose fingerprint does not match).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of cells in the full plan.
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// Number of completed cells recorded.
    pub fn completed_cells(&self) -> usize {
        self.cells.len()
    }

    /// `true` when every cell of the plan is recorded as completed.
    pub fn is_complete(&self) -> bool {
        self.cells.len() == self.total_cells
    }

    /// Serializes the checkpoint to JSON (floats as IEEE-754 bit hex strings
    /// — see the type docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1");
        out.push_str(&format!(",\"fingerprint\":\"{:#018x}\"", self.fingerprint));
        out.push_str(&format!(
            ",\"baseline_accuracy\":\"{:#010x}\"",
            self.baseline_accuracy.to_bits()
        ));
        out.push_str(&format!(",\"total_cells\":{}", self.total_cells));
        out.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"accuracy\":\"{:#010x}\",\"scenarios\":{},\"outcomes\":[",
                cell.index,
                cell.accuracy.to_bits(),
                cell.scenarios
            ));
            for (j, outcome) in cell.outcomes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                encode_outcome(&mut out, outcome);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Decodes a checkpoint serialized by [`CampaignCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::CheckpointMalformed`] for syntax errors,
    /// missing fields, wrong types, or float-bit strings that do not decode.
    pub fn from_json(text: &str) -> std::result::Result<Self, CampaignError> {
        let doc = json::parse(text)?;
        let version = doc.field("version")?.as_usize()?;
        if version != 1 {
            return Err(CampaignError::malformed(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let fingerprint = u64_from_hex(doc.field("fingerprint")?)?;
        let baseline_accuracy = f32_from_hex(doc.field("baseline_accuracy")?)?;
        let total_cells = doc.field("total_cells")?.as_usize()?;
        let mut cells = Vec::new();
        for cell in doc.field("cells")?.as_arr()? {
            let index = cell.field("index")?.as_usize()?;
            if index >= total_cells {
                return Err(CampaignError::malformed(format!(
                    "cell index {index} out of range for a plan of {total_cells} cells"
                )));
            }
            let accuracy = f32_from_hex(cell.field("accuracy")?)?;
            let scenarios = cell.field("scenarios")?.as_usize()?;
            let mut outcomes = Vec::new();
            for outcome in cell.field("outcomes")?.as_arr()? {
                outcomes.push(decode_outcome(outcome)?);
            }
            cells.push(CheckpointCell {
                index,
                accuracy,
                scenarios,
                outcomes,
            });
        }
        Ok(Self {
            fingerprint,
            baseline_accuracy,
            total_cells,
            cells,
        })
    }
}

/// Appends one [`MitigationOutcome`] to a JSON buffer (floats as bit hex).
fn encode_outcome(out: &mut String, outcome: &MitigationOutcome) {
    out.push_str(&format!(
        "{{\"strategy\":{},\"fault_rate\":\"{:#018x}\",\"pruned_weight_fraction\":\"{:#018x}\",\
         \"accuracy_after_pruning\":\"{:#010x}\",\"final_accuracy\":\"{:#010x}\",\
         \"epochs_run\":{},\"history\":[",
        json::quote(&outcome.strategy),
        outcome.fault_rate.to_bits(),
        outcome.pruned_weight_fraction.to_bits(),
        outcome.accuracy_after_pruning.to_bits(),
        outcome.final_accuracy.to_bits(),
        outcome.epochs_run
    ));
    for (i, point) in outcome.history.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let loss = match point.train_loss {
            Some(loss) => format!("\"{:#010x}\"", loss.to_bits()),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"epoch\":{},\"train_loss\":{},\"test_accuracy\":\"{:#010x}\"}}",
            point.epoch,
            loss,
            point.test_accuracy.to_bits()
        ));
    }
    out.push_str("],\"thresholds\":[");
    for (i, (layer, threshold)) in outcome.thresholds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},\"{:#010x}\"]",
            json::quote(layer),
            threshold.to_bits()
        ));
    }
    out.push_str("]}");
}

/// Decodes one [`MitigationOutcome`] from its checkpoint encoding.
fn decode_outcome(v: &json::Value) -> std::result::Result<MitigationOutcome, CampaignError> {
    let mut history = Vec::new();
    for point in v.field("history")?.as_arr()? {
        let train_loss = match point.field("train_loss")? {
            json::Value::Null => None,
            bits => Some(f32_from_hex(bits)?),
        };
        history.push(crate::mitigation::EpochPoint {
            epoch: point.field("epoch")?.as_usize()?,
            train_loss,
            test_accuracy: f32_from_hex(point.field("test_accuracy")?)?,
        });
    }
    let mut thresholds = Vec::new();
    for pair in v.field("thresholds")?.as_arr()? {
        let pair = pair.as_arr()?;
        if pair.len() != 2 {
            return Err(CampaignError::malformed(
                "a threshold entry must be a [layer, bits] pair",
            ));
        }
        thresholds.push((pair[0].as_str()?.to_string(), f32_from_hex(&pair[1])?));
    }
    Ok(MitigationOutcome {
        strategy: v.field("strategy")?.as_str()?.to_string(),
        fault_rate: f64_from_hex(v.field("fault_rate")?)?,
        pruned_weight_fraction: f64_from_hex(v.field("pruned_weight_fraction")?)?,
        accuracy_after_pruning: f32_from_hex(v.field("accuracy_after_pruning")?)?,
        final_accuracy: f32_from_hex(v.field("final_accuracy")?)?,
        history,
        thresholds,
        epochs_run: v.field("epochs_run")?.as_usize()?,
    })
}

/// Decodes a `"0x…"` hex string into the `u64` it encodes.
fn u64_from_hex(v: &json::Value) -> std::result::Result<u64, CampaignError> {
    let s = v.as_str()?;
    let hex = s.strip_prefix("0x").ok_or_else(|| {
        CampaignError::malformed(format!("expected a 0x-prefixed bit string, found `{s}`"))
    })?;
    u64::from_str_radix(hex, 16)
        .map_err(|_| CampaignError::malformed(format!("invalid bit string `{s}`")))
}

/// Decodes a `"0x…"` hex string into the `f32` whose bits it encodes.
fn f32_from_hex(v: &json::Value) -> std::result::Result<f32, CampaignError> {
    let bits = u64_from_hex(v)?;
    u32::try_from(bits)
        .map(f32::from_bits)
        .map_err(|_| CampaignError::malformed("f32 bit string wider than 32 bits"))
}

/// Decodes a `"0x…"` hex string into the `f64` whose bits it encodes.
fn f64_from_hex(v: &json::Value) -> std::result::Result<f64, CampaignError> {
    Ok(f64::from_bits(u64_from_hex(v)?))
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The measured result of one campaign cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The resolved cell specification (including its coordinates).
    pub spec: CellSpec,
    /// Mean classification accuracy: over the drawn fault maps for
    /// evaluation cells, over the per-map mitigation outcomes for
    /// retraining cells. `0.0` for failed/skipped cells (check
    /// [`CellResult::status`] before averaging).
    pub accuracy: f32,
    /// Number of fault scenarios averaged (`0` for failed/skipped cells).
    pub scenarios: usize,
    /// Per-map mitigation outcomes (empty for evaluation cells).
    pub outcomes: Vec<MitigationOutcome>,
    /// How the cell ended ([`CellStatus::Completed`] unless the run hit
    /// failures, a deadline, or cancellation).
    pub status: CellStatus,
}

impl CellResult {
    /// The cell's coordinates, one per axis in axis order.
    pub fn coords(&self) -> &[Coord] {
        self.spec.coords()
    }

    /// The coordinate value on the axis labelled `axis`, if any.
    pub fn coord(&self, axis: &str) -> Option<&AxisValue> {
        self.spec.coord(axis)
    }

    /// The first (typically only) mitigation outcome of a retraining cell.
    pub fn outcome(&self) -> Option<&MitigationOutcome> {
        self.outcomes.first()
    }
}

/// A finished campaign: the executed cells in plan order plus the context
/// metadata the figure code needs.
///
/// Iterate it for streaming consumption (`for cell in &run`), or serialize
/// the whole thing via [`CampaignRun::into_table`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    axes: Vec<String>,
    baseline_accuracy: f32,
    cells: Vec<CellResult>,
}

impl CampaignRun {
    /// Axis labels, in plan order (outermost first).
    pub fn axes(&self) -> &[String] {
        &self.axes
    }

    /// Fault-free baseline accuracy of the context's trained network.
    pub fn baseline_accuracy(&self) -> f32 {
        self.baseline_accuracy
    }

    /// The executed cells, in plan (cartesian) order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the plan expanded to zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of cells that completed.
    pub fn completed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status.is_completed())
            .count()
    }

    /// Number of cells whose every attempt failed.
    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|c| c.status.is_failed()).count()
    }

    /// Number of cells skipped by deadline expiry or cancellation.
    pub fn skipped(&self) -> usize {
        self.cells.iter().filter(|c| c.status.is_skipped()).count()
    }

    /// Converts the run into the serde-serializable [`ResultTable`].
    pub fn into_table(self) -> ResultTable {
        ResultTable {
            axes: self.axes,
            baseline_accuracy: self.baseline_accuracy,
            cells: self.cells,
        }
    }

    /// Groups the cells into accuracy series over the axis labelled
    /// `x_axis`: one [`SweepSeries`] per distinct combination of the
    /// *other* coordinates (labelled by joining their values), with one
    /// point per cell in plan order. Cells without an `x_axis` coordinate
    /// are skipped.
    pub fn mean_series(&self, x_axis: &str) -> Vec<SweepSeries> {
        let mut series: Vec<SweepSeries> = Vec::new();
        for cell in &self.cells {
            let Some(x) = cell.coord(x_axis).map(AxisValue::as_f64) else {
                continue;
            };
            let rest: Vec<String> = cell
                .coords()
                .iter()
                .filter(|c| c.axis != x_axis)
                .map(|c| c.value.to_string())
                .collect();
            let label = if rest.is_empty() {
                x_axis.to_string()
            } else {
                rest.join("/")
            };
            let point = SweepPoint {
                x,
                accuracy: cell.accuracy,
                iterations: cell.scenarios,
            };
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.points.push(point),
                None => series.push(SweepSeries {
                    label,
                    points: vec![point],
                }),
            }
        }
        series
    }
}

impl IntoIterator for CampaignRun {
    type Item = CellResult;
    type IntoIter = std::vec::IntoIter<CellResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.into_iter()
    }
}

impl<'a> IntoIterator for &'a CampaignRun {
    type Item = &'a CellResult;
    type IntoIter = std::slice::Iter<'a, CellResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

/// The serde-serializable flat view of a [`CampaignRun`] — what figure code
/// and downstream tooling consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    /// Axis labels, in plan order.
    pub axes: Vec<String>,
    /// Fault-free baseline accuracy.
    pub baseline_accuracy: f32,
    /// One row per cell, in plan order.
    pub cells: Vec<CellResult>,
}

// ---------------------------------------------------------------------------
// The campaign builder and scheduler
// ---------------------------------------------------------------------------

/// Seed-mixing hook: `(campaign seed, cell spec) -> per-cell RNG seed`.
pub type SeedMixer = Arc<dyn Fn(u64, &CellSpec) -> u64 + Send + Sync>;

/// A declarative sweep plan over one prepared [`ExperimentContext`].
///
/// Build it with [`Campaign::new`], add [`Axis`] values (first axis
/// outermost), tune the per-cell scenario count / seed / engine preset, and
/// [`Campaign::run`] it. See the [module docs](crate::campaign) for what the
/// scheduler owns.
///
/// # Example
///
/// ```no_run
/// use falvolt::campaign::{Axis, Campaign};
/// use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
/// use falvolt::mitigation::MitigationStrategy;
///
/// # fn main() -> Result<(), falvolt::FalvoltError> {
/// let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)?;
/// // Figures 6/7 as data: strategies × fault rates, one chip per rate.
/// let run = Campaign::new(&mut ctx)
///     .axis(Axis::FaultRate(vec![0.10, 0.30]))
///     .axis(Axis::Mitigation(vec![
///         MitigationStrategy::FaP,
///         MitigationStrategy::fapit(8),
///         MitigationStrategy::falvolt(8),
///     ]))
///     .run()?;
/// for cell in &run {
///     let outcome = cell.outcome().expect("retraining cell");
///     println!("{:?} -> {:.1}%", cell.coords(), outcome.final_accuracy * 100.0);
/// }
/// # Ok(())
/// # }
/// ```
pub struct Campaign<'a> {
    ctx: &'a mut ExperimentContext,
    axes: Vec<Axis>,
    scenarios_per_cell: usize,
    seed: u64,
    mixer: SeedMixer,
    preset: EnginePreset,
    retrain_epochs: Option<usize>,
    retrain_config: RetrainConfig,
    budget: RunBudget,
    retry: RetryPolicy,
    cancel: Option<CancelToken>,
    checkpoint_every: Option<usize>,
    checkpoint_sink: Option<CheckpointSink>,
    resume_from: Option<CampaignCheckpoint>,
    injector: Option<CellHook>,
}

impl<'a> Campaign<'a> {
    /// Starts a plan over `ctx` with no axes, one scenario per cell, the
    /// context's seed, the default seed mixer, the full engine preset and
    /// the paper's retraining configuration.
    pub fn new(ctx: &'a mut ExperimentContext) -> Self {
        let seed = ctx.seed();
        Self {
            ctx,
            axes: Vec::new(),
            scenarios_per_cell: 1,
            seed,
            mixer: Arc::new(default_seed_mix),
            preset: EnginePreset::full(),
            retrain_epochs: None,
            retrain_config: RetrainConfig::paper_like(),
            budget: RunBudget::default(),
            retry: RetryPolicy::default(),
            cancel: None,
            checkpoint_every: None,
            checkpoint_sink: None,
            resume_from: None,
            injector: None,
        }
    }

    /// Adds a sweep axis (first added is outermost in the cell order).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Fault maps drawn (and averaged) per cell. The paper uses 8 for the
    /// vulnerability sweeps; retraining sweeps typically use 1 chip.
    pub fn scenarios_per_cell(mut self, scenarios: usize) -> Self {
        self.scenarios_per_cell = scenarios;
        self
    }

    /// Overrides the base seed cells mix from (default: the context seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a custom per-cell seed mixer. The default mixer hashes the
    /// cell's fault-drawing parameters (grid, rate / PE count, bit,
    /// polarity) — and deliberately *not* its payload (threshold,
    /// strategy), so the payload cells of one fault configuration share a
    /// once-per-configuration map pool.
    pub fn seed_mixer(
        mut self,
        mixer: impl Fn(u64, &CellSpec) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.mixer = Arc::new(mixer);
        self
    }

    /// Engine preset threaded through scenario views and backends
    /// (default: [`EnginePreset::full`]). Presets are execution strategies —
    /// results are bit-identical across them.
    pub fn preset(mut self, preset: EnginePreset) -> Self {
        self.preset = preset;
        self
    }

    /// Retraining epochs used by [`Axis::Threshold`] cells (strategies from
    /// an [`Axis::Mitigation`] carry their own epoch budget).
    pub fn retrain_epochs(mut self, epochs: usize) -> Self {
        self.retrain_epochs = Some(epochs);
        self
    }

    /// Overrides the retraining hyper-parameters (default:
    /// [`RetrainConfig::paper_like`]).
    pub fn retrain_config(mut self, config: RetrainConfig) -> Self {
        self.retrain_config = config;
        self
    }

    /// Applies a deserialized [`PlanSpec`] (axes, scenario count, optional
    /// seed and epoch budget) on top of the builder's current state.
    pub fn plan(mut self, spec: PlanSpec) -> Self {
        self.scenarios_per_cell = spec.scenarios_per_cell;
        if let Some(seed) = spec.seed {
            self.seed = seed;
        }
        if let Some(epochs) = spec.retrain_epochs {
            self.retrain_epochs = Some(epochs);
        }
        self.axes.extend(spec.axes);
        self
    }

    /// Installs a [`RunBudget`] (deadline, concurrent-cell cap, scenario
    /// byte budget). Default: [`RunBudget::unlimited`].
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a [`RetryPolicy`] for failed cells. Default:
    /// [`RetryPolicy::none`] (one attempt).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs an external cancellation token: trip it from another thread
    /// and the run winds down cooperatively, marking unexecuted cells
    /// [`CellStatus::Skipped`]`{ reason: `[`SkipReason::Cancelled`]` }`.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps execution waves at `cells` cells, emitting a checkpoint through
    /// the sink after each wave. Smaller values checkpoint more often at the
    /// cost of cross-cell scenario batching (clamped to at least 1).
    pub fn checkpoint_every(mut self, cells: usize) -> Self {
        self.checkpoint_every = Some(cells.max(1));
        self
    }

    /// Installs the checkpoint consumer called after every execution wave
    /// (and therefore at least once per run when the plan is non-empty).
    pub fn checkpoint_sink(
        mut self,
        sink: impl Fn(&CampaignCheckpoint) + Send + Sync + 'static,
    ) -> Self {
        self.checkpoint_sink = Some(Arc::new(sink));
        self
    }

    /// Resumes a previous partial run: completed cells recorded in the
    /// checkpoint are reused verbatim (their seeds replay identically, so
    /// the merged run is bit-identical to an uninterrupted one); failed and
    /// skipped cells are re-attempted. [`Campaign::run`] re-validates the
    /// checkpoint's plan fingerprint and returns
    /// [`CampaignError::CheckpointMismatch`] if the plan differs.
    pub fn resume(mut self, checkpoint: CampaignCheckpoint) -> Self {
        self.resume_from = Some(checkpoint);
        self
    }

    /// Test/chaos injection point: called as `(cell index, attempt)` before
    /// each cell attempt; an `Err` fails the cell, a panic exercises the
    /// isolation path.
    #[doc(hidden)]
    pub fn cell_hook(
        mut self,
        hook: impl Fn(usize, usize) -> std::result::Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.injector = Some(Arc::new(hook));
        self
    }

    /// Installs a deterministic chaos-injection plan (panics, errors, slow
    /// workers) driven by [`crate::chaos::ChaosPlan`].
    #[cfg(feature = "chaos")]
    pub fn chaos(mut self, plan: crate::chaos::ChaosPlan) -> Self {
        self.injector = Some(plan.into_hook());
        self
    }

    /// Executes the plan: expands the axes, mixes seeds, draws the fault-map
    /// pools sequentially (so results are worker-count-independent), fans
    /// evaluation cells out through the shared-cache scenario engine and
    /// retraining cells across scenario views, and returns the cells in
    /// plan order. The context's baseline is restored before and after.
    ///
    /// Execution proceeds in *waves* sized by [`Campaign::checkpoint_every`]
    /// and the [`RunBudget`] admission knobs (by default one wave holds the
    /// whole plan, preserving cross-cell scenario batching). Cell failures —
    /// worker panics included — are caught, retried per the
    /// [`RetryPolicy`], and recorded as [`CellStatus::Failed`] rows; deadline
    /// expiry and cancellation mark the unexecuted remainder
    /// [`CellStatus::Skipped`] and return the completed prefix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FalvoltError`] for invalid plans (zero scenarios per
    /// cell, invalid array sizes), fault-map draw failures, baseline
    /// restoration failures, and checkpoints that do not belong to this plan
    /// ([`CampaignError::CheckpointMismatch`]). Cell execution failures do
    /// NOT error the run.
    pub fn run(self) -> Result<CampaignRun> {
        let Campaign {
            ctx,
            axes,
            scenarios_per_cell,
            seed,
            mixer,
            preset,
            retrain_epochs,
            retrain_config,
            budget,
            retry,
            cancel,
            checkpoint_every,
            checkpoint_sink,
            resume_from,
            injector,
        } = self;
        if scenarios_per_cell == 0 {
            return Err(CampaignError::invalid_plan(
                "a campaign needs at least one scenario per cell",
            )
            .into());
        }

        // 1. Expand the axes into the cartesian cell-spec list.
        let mut specs = vec![CellSpec::base(*ctx.systolic_config())];
        for axis in &axes {
            let mut next = Vec::with_capacity(specs.len() * axis.len().max(1));
            for spec in &specs {
                next.extend(axis.expand(spec)?);
            }
            specs = next;
        }

        // 2. Mix seeds and draw the fault-map pools sequentially, in cell
        // order. Cells sharing every draw parameter and the mixed seed
        // borrow one pool (e.g. the strategies of one fault rate). Seed
        // mixing replays identically on resume — the pools a resumed run
        // draws are the pools the interrupted run drew.
        let mut pools: Vec<(PoolKey, Arc<Vec<FaultMap>>)> = Vec::new();
        let mut cell_pool = Vec::with_capacity(specs.len());
        let mut cell_seeds = Vec::with_capacity(specs.len());
        for spec in &specs {
            let mixed = mixer(seed, spec);
            cell_seeds.push(mixed);
            let key = PoolKey::of(spec, mixed);
            let index = match pools.iter().position(|(k, _)| *k == key) {
                Some(index) => index,
                None => {
                    pools.push((
                        key,
                        Arc::new(draw_pool(spec, key.seed, scenarios_per_cell)?),
                    ));
                    pools.len() - 1
                }
            };
            cell_pool.push(index);
        }
        let payloads: Vec<CellPayload> = specs
            .iter()
            .map(|s| s.payload(retrain_epochs))
            .collect::<Result<_>>()?;

        // 3. Fingerprint the plan and replay any checkpoint: completed cells
        // are reused verbatim, everything else is (re)executed.
        let fingerprint = plan_fingerprint(
            ctx,
            &specs,
            &payloads,
            &cell_seeds,
            scenarios_per_cell,
            &retrain_config,
        );
        let mut done: Vec<Option<CellResult>> = vec![None; specs.len()];
        if let Some(checkpoint) = resume_from {
            if checkpoint.fingerprint != fingerprint {
                return Err(CampaignError::CheckpointMismatch {
                    expected: fingerprint,
                    actual: checkpoint.fingerprint,
                }
                .into());
            }
            if checkpoint.total_cells != specs.len() {
                return Err(CampaignError::malformed(format!(
                    "checkpoint records a plan of {} cells, this plan has {}",
                    checkpoint.total_cells,
                    specs.len()
                ))
                .into());
            }
            for cell in checkpoint.cells {
                done[cell.index] = Some(CellResult {
                    spec: specs[cell.index].clone(),
                    accuracy: cell.accuracy,
                    scenarios: cell.scenarios,
                    outcomes: cell.outcomes,
                    status: CellStatus::Completed,
                });
            }
        }

        // 4. Partition the pending cells into execution waves: capped by the
        // checkpoint cadence and the budget's concurrency / byte admission
        // (with no caps set, one wave holds the whole plan — the fast path
        // with full cross-cell batching).
        let pending: Vec<usize> = (0..specs.len()).filter(|&i| done[i].is_none()).collect();
        let wave_cap = checkpoint_every
            .unwrap_or(usize::MAX)
            .min(budget.max_concurrent_cells.unwrap_or(usize::MAX))
            .max(1);
        let mut waves: Vec<Vec<usize>> = Vec::new();
        let mut wave: Vec<usize> = Vec::new();
        let mut wave_bytes = 0usize;
        for &cell in &pending {
            let bytes = pool_bytes(&pools[cell_pool[cell]].1);
            let over_bytes = budget
                .scenario_bytes_budget
                .is_some_and(|b| wave_bytes + bytes > b);
            if !wave.is_empty() && (wave.len() >= wave_cap || over_bytes) {
                waves.push(std::mem::take(&mut wave));
                wave_bytes = 0;
            }
            wave.push(cell);
            wave_bytes += bytes;
        }
        if !wave.is_empty() {
            waves.push(wave);
        }

        // 5. Execute the waves against the restored baseline, with a shared
        // deadline-aware cancel token and per-cell panic isolation.
        ctx.restore_baseline()?;
        let started = Instant::now();
        let deadline = budget.deadline.map(|d| started + d);
        let expired = move || deadline.is_some_and(|d| Instant::now() >= d);
        let run_token = cancel.unwrap_or_default();
        {
            let stop_reason = || -> Option<SkipReason> {
                if expired() {
                    // Deadline expiry trips the shared token so in-flight
                    // workers wind down at their next check.
                    run_token.cancel();
                    Some(SkipReason::Deadline)
                } else if run_token.is_cancelled() {
                    Some(SkipReason::Cancelled)
                } else {
                    None
                }
            };
            let mitigator = Mitigator::new(ctx.classes(), retrain_config);
            let retrain_cache = Arc::new(SweepCache::new());

            // One attempt over a set of cells: evaluation cells fan out
            // through the shared-cache scenario engine, retraining cells
            // across panic-isolated scenario views.
            let run_cells = |cells: &[usize], attempt: usize| -> Vec<(usize, CellTry)> {
                let mut out: Vec<(usize, CellTry)> = Vec::new();

                let eval_cells: Vec<usize> = cells
                    .iter()
                    .copied()
                    .filter(|&c| matches!(payloads[c], CellPayload::Eval))
                    .collect();
                if !eval_cells.is_empty() {
                    let mut scenarios = Vec::with_capacity(eval_cells.len() * scenarios_per_cell);
                    for &cell in &eval_cells {
                        for map in pools[cell_pool[cell]].1.iter() {
                            scenarios.push((specs[cell].systolic, map.clone()));
                        }
                    }
                    // The scenario hook runs at worker start: it surfaces
                    // deadline expiry to in-flight workers and routes the
                    // chaos/test injector to the first scenario of each cell.
                    let hook_owner: Option<Box<crate::vulnerability::ScenarioHook>> =
                        if deadline.is_some() || injector.is_some() {
                            let injector = injector.clone();
                            let token = run_token.clone();
                            let eval_cells = eval_cells.clone();
                            Some(Box::new(move |flat: usize| {
                                if expired() {
                                    token.cancel();
                                }
                                if flat.is_multiple_of(scenarios_per_cell) {
                                    if let Some(inject) = &injector {
                                        inject(eval_cells[flat / scenarios_per_cell], attempt)?;
                                    }
                                }
                                Ok(())
                            }))
                        } else {
                            None
                        };
                    let outcomes = scenario_outcomes(
                        ctx.network(),
                        scenarios,
                        ctx.test_batches(),
                        ctx.caches(),
                        &preset,
                        Some(&run_token),
                        hook_owner.as_deref(),
                    );
                    for (slot, chunk) in eval_cells.iter().zip(outcomes.chunks(scenarios_per_cell))
                    {
                        // Accumulate in chunk order — bit-identical to the
                        // pre-resilience `.sum()` over the same values.
                        let mut sum = 0.0f32;
                        let mut failed: Option<CellFailure> = None;
                        let mut cancelled = false;
                        for outcome in chunk {
                            match outcome {
                                ScenarioOutcome::Done(accuracy) => sum += accuracy,
                                ScenarioOutcome::Failed(cause) => {
                                    if failed.is_none() {
                                        failed = Some(cause.clone());
                                    }
                                }
                                ScenarioOutcome::Cancelled => cancelled = true,
                            }
                        }
                        let tried = if cancelled {
                            CellTry::Cancelled
                        } else if let Some(cause) = failed {
                            CellTry::Failed(cause)
                        } else {
                            CellTry::Done {
                                accuracy: sum / chunk.len() as f32,
                                scenarios: chunk.len(),
                                outcomes: Vec::new(),
                            }
                        };
                        out.push((*slot, tried));
                    }
                }

                let retrain_cells: Vec<usize> = cells
                    .iter()
                    .copied()
                    .filter(|&c| matches!(payloads[c], CellPayload::Retrain(_)))
                    .collect();
                if !retrain_cells.is_empty() {
                    let baseline = ctx.network();
                    let (train, test) = (ctx.train_batches(), ctx.test_batches());
                    let caches = ctx.caches();
                    let results: Vec<(usize, CellTry)> = retrain_cells
                        .into_par_iter()
                        .map(|cell| {
                            if expired() {
                                run_token.cancel();
                            }
                            if run_token.is_cancelled() {
                                return (cell, CellTry::Cancelled);
                            }
                            let CellPayload::Retrain(strategy) = payloads[cell] else {
                                return (
                                    cell,
                                    CellTry::Failed(CellFailure::Error {
                                        message: "scheduler misrouted an evaluation cell"
                                            .to_string(),
                                    }),
                                );
                            };
                            // The catch is INSIDE the worker body: the rayon
                            // shim poisons its work queue when a map closure
                            // unwinds through it. AssertUnwindSafe is sound
                            // because a caught panic quarantines every shared
                            // in-flight cache slot and the scenario view dies
                            // with the closure.
                            let caught = catch_unwind(AssertUnwindSafe(
                                || -> std::result::Result<Vec<MitigationOutcome>, CellTry> {
                                    if let Some(inject) = &injector {
                                        inject(cell, attempt).map_err(|message| {
                                            CellTry::Failed(CellFailure::Error { message })
                                        })?;
                                    }
                                    let mut outcomes =
                                        Vec::with_capacity(pools[cell_pool[cell]].1.len());
                                    for map in pools[cell_pool[cell]].1.iter() {
                                        if run_token.is_cancelled() {
                                            return Err(CellTry::Cancelled);
                                        }
                                        let mut network =
                                            retrain_view(baseline, &retrain_cache, &preset);
                                        let outcome = mitigator
                                            .run(&mut network, map, train, test, strategy)
                                            .map_err(|e| {
                                                CellTry::Failed(CellFailure::Error {
                                                    message: e.to_string(),
                                                })
                                            })?;
                                        outcomes.push(outcome);
                                    }
                                    Ok(outcomes)
                                },
                            ));
                            match caught {
                                Ok(Ok(outcomes)) => {
                                    let accuracy =
                                        outcomes.iter().map(|o| o.final_accuracy).sum::<f32>()
                                            / outcomes.len() as f32;
                                    (
                                        cell,
                                        CellTry::Done {
                                            accuracy,
                                            scenarios: outcomes.len(),
                                            outcomes,
                                        },
                                    )
                                }
                                Ok(Err(tried)) => (cell, tried),
                                Err(payload) => {
                                    retrain_cache.quarantine_in_flight();
                                    caches.sweep.quarantine_in_flight();
                                    caches.product.quarantine_in_flight();
                                    (
                                        cell,
                                        CellTry::Failed(CellFailure::Panic {
                                            message: panic_message(payload),
                                        }),
                                    )
                                }
                            }
                        })
                        .collect();
                    out.extend(results);
                }
                out
            };

            for wave in &waves {
                if let Some(reason) = stop_reason() {
                    for &cell in wave {
                        done[cell] = Some(CellResult {
                            spec: specs[cell].clone(),
                            accuracy: 0.0,
                            scenarios: 0,
                            outcomes: Vec::new(),
                            status: CellStatus::Skipped { reason },
                        });
                    }
                    continue;
                }
                let mut results: Vec<(usize, CellTry, usize)> = run_cells(wave, 1)
                    .into_iter()
                    .map(|(cell, tried)| (cell, tried, 1))
                    .collect();
                for attempt in 2..=retry.max_attempts {
                    let failed: Vec<usize> = results
                        .iter()
                        .filter(|(_, tried, _)| matches!(tried, CellTry::Failed(_)))
                        .map(|(cell, _, _)| *cell)
                        .collect();
                    if failed.is_empty() || stop_reason().is_some() {
                        break;
                    }
                    std::thread::sleep(retry.backoff_for(attempt));
                    for (cell, tried) in run_cells(&failed, attempt) {
                        if let Some(entry) = results.iter_mut().find(|(c, _, _)| *c == cell) {
                            *entry = (cell, tried, attempt);
                        }
                    }
                }
                for (cell, tried, attempts) in results {
                    done[cell] = Some(match tried {
                        CellTry::Done {
                            accuracy,
                            scenarios,
                            outcomes,
                        } => CellResult {
                            spec: specs[cell].clone(),
                            accuracy,
                            scenarios,
                            outcomes,
                            status: CellStatus::Completed,
                        },
                        CellTry::Failed(cause) => CellResult {
                            spec: specs[cell].clone(),
                            accuracy: 0.0,
                            scenarios: 0,
                            outcomes: Vec::new(),
                            status: CellStatus::Failed { cause, attempts },
                        },
                        CellTry::Cancelled => {
                            let reason = if expired() {
                                SkipReason::Deadline
                            } else {
                                SkipReason::Cancelled
                            };
                            CellResult {
                                spec: specs[cell].clone(),
                                accuracy: 0.0,
                                scenarios: 0,
                                outcomes: Vec::new(),
                                status: CellStatus::Skipped { reason },
                            }
                        }
                    });
                }
                if let Some(sink) = &checkpoint_sink {
                    sink(&checkpoint_of(
                        fingerprint,
                        ctx.baseline_accuracy(),
                        specs.len(),
                        &done,
                    ));
                }
            }
        }

        // 6. Restore the baseline (retraining mutates only scenario views,
        // but symmetric restore keeps the contract simple) and assemble the
        // cells back into plan order.
        ctx.restore_baseline()?;
        let cells: Vec<CellResult> = done
            .into_iter()
            .zip(specs)
            .map(|(slot, spec)| {
                slot.unwrap_or_else(|| CellResult {
                    spec,
                    accuracy: 0.0,
                    scenarios: 0,
                    outcomes: Vec::new(),
                    status: CellStatus::Failed {
                        cause: CellFailure::Error {
                            message: "the scheduler dropped this cell".to_string(),
                        },
                        attempts: 0,
                    },
                })
            })
            .collect();

        Ok(CampaignRun {
            axes: axes.iter().map(|a| a.label().to_string()).collect(),
            baseline_accuracy: ctx.baseline_accuracy(),
            cells,
        })
    }
}

/// The outcome of one attempt at one cell, before retry bookkeeping.
enum CellTry {
    /// The attempt finished; the payload mirrors [`CellResult`].
    Done {
        accuracy: f32,
        scenarios: usize,
        outcomes: Vec<MitigationOutcome>,
    },
    /// The attempt failed (error or caught panic) — retryable.
    Failed(CellFailure),
    /// The attempt was abandoned by cancellation or deadline — not retried.
    Cancelled,
}

/// Estimated bytes a cell's drawn fault-map pool holds in flight (used by
/// [`RunBudget::scenario_bytes_budget`] wave admission).
fn pool_bytes(maps: &[FaultMap]) -> usize {
    maps.iter()
        .map(|m| std::mem::size_of_val(m.faults()) + 96)
        .sum()
}

/// Content hash of everything that determines a plan's results: the context
/// seed and baseline, per-cell draw parameters, mixed seeds and payloads,
/// the scenario count and the retraining hyper-parameters. Two plans with
/// equal fingerprints execute identically cell for cell, which is what makes
/// a checkpoint safe to resume.
fn plan_fingerprint(
    ctx: &ExperimentContext,
    specs: &[CellSpec],
    payloads: &[CellPayload],
    cell_seeds: &[u64],
    scenarios_per_cell: usize,
    retrain_config: &RetrainConfig,
) -> u64 {
    let mut fp = falvolt_tensor::Fingerprint::new();
    fp.write_str("campaign-plan-v1");
    fp.write_u64(ctx.seed());
    fp.write_u64(u64::from(ctx.baseline_accuracy().to_bits()));
    fp.write_usize(scenarios_per_cell);
    fp.write_u64(u64::from(retrain_config.learning_rate.to_bits()));
    fp.write_u64(u64::from(retrain_config.track_history));
    fp.write_usize(specs.len());
    for ((spec, payload), &mixed) in specs.iter().zip(payloads).zip(cell_seeds) {
        fp.write_u64(mixed);
        fp.write_usize(spec.systolic.rows());
        fp.write_usize(spec.systolic.cols());
        fp.write_u64(spec.fault_rate.map_or(u64::MAX, f64::to_bits));
        fp.write_u64(spec.faulty_pes.map_or(u64::MAX, |p| p as u64));
        fp.write_u64(u64::from(spec.resolved_bit()));
        fp.write_u64(match spec.polarity {
            StuckAt::Zero => 0,
            StuckAt::One => 1,
        });
        match payload {
            CellPayload::Eval => fp.write_str("eval"),
            CellPayload::Retrain(strategy) => {
                fp.write_str("retrain");
                fp.write_str(strategy.label());
                fp.write_usize(strategy.epochs());
                let threshold = match strategy {
                    MitigationStrategy::FaPIT { threshold, .. } => *threshold,
                    _ => f32::NAN,
                };
                fp.write_u64(u64::from(threshold.to_bits()));
            }
        }
    }
    fp.finish() as u64
}

/// Snapshot of the completed cells in `done` as a [`CampaignCheckpoint`].
fn checkpoint_of(
    fingerprint: u64,
    baseline_accuracy: f32,
    total_cells: usize,
    done: &[Option<CellResult>],
) -> CampaignCheckpoint {
    let cells = done
        .iter()
        .enumerate()
        .filter_map(|(index, slot)| {
            slot.as_ref()
                .filter(|r| r.status.is_completed())
                .map(|r| CheckpointCell {
                    index,
                    accuracy: r.accuracy,
                    scenarios: r.scenarios,
                    outcomes: r.outcomes.clone(),
                })
        })
        .collect();
    CampaignCheckpoint {
        fingerprint,
        baseline_accuracy,
        total_cells,
        cells,
    }
}

// ---------------------------------------------------------------------------
// Plan specs at the serde boundary
// ---------------------------------------------------------------------------

/// A campaign plan deserialized from JSON — the serde boundary of the sweep
/// engine, with validation the in-process builder deliberately does not do
/// (an empty [`Axis`] from the builder means "zero cells", but an empty axis
/// arriving over the wire is almost certainly a producer bug and is
/// rejected).
///
/// ```json
/// {
///   "scenarios_per_cell": 8,
///   "seed": 42,
///   "retrain_epochs": 10,
///   "axes": [
///     {"kind": "fault_rate", "values": [0.1, 0.3]},
///     {"kind": "strategy", "values": ["fap", "fapit:8", "fapit:8@0.5", "falvolt:8"]},
///     {"kind": "polarity", "values": ["sa0", "sa1"]}
///   ]
/// }
/// ```
///
/// `seed` and `retrain_epochs` are optional. Axis kinds: `fault_rate`
/// (floats in `[0, 1]`), `bit` (non-negative integers), `faulty_pes`,
/// `array_size` (positive integers), `threshold` (finite non-negative
/// floats), `strategy` (`"fap"`, `"fapit:EPOCHS"`, `"fapit:EPOCHS@THRESHOLD"`,
/// `"falvolt:EPOCHS"`), `polarity` (`"sa0"` / `"sa1"`).
#[derive(Debug, Clone)]
pub struct PlanSpec {
    scenarios_per_cell: usize,
    seed: Option<u64>,
    retrain_epochs: Option<usize>,
    axes: Vec<Axis>,
}

impl PlanSpec {
    /// Parses and validates a JSON plan (see the type docs for the format).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidPlan`] for malformed JSON, missing
    /// fields, a zero `scenarios_per_cell`, an empty axes list, empty axis
    /// value lists, unknown axis kinds, NaN / negative / out-of-range
    /// numeric values, and unparseable strategy or polarity strings.
    pub fn from_json(text: &str) -> std::result::Result<Self, CampaignError> {
        // The shared JSON reader reports CheckpointMalformed; at the plan
        // boundary every decode problem is a plan rejection.
        let as_plan_error = |e: CampaignError| match e {
            CampaignError::CheckpointMalformed { reason } => CampaignError::InvalidPlan { reason },
            other => other,
        };
        let doc = json::parse(text).map_err(as_plan_error)?;
        let scenarios_per_cell = doc
            .field("scenarios_per_cell")
            .and_then(json::Value::as_usize)
            .map_err(as_plan_error)?;
        if scenarios_per_cell == 0 {
            return Err(CampaignError::invalid_plan(
                "scenarios_per_cell must be at least 1",
            ));
        }
        let seed = match doc.get("seed") {
            None | Some(json::Value::Null) => None,
            Some(v) => Some(v.as_usize().map_err(as_plan_error)? as u64),
        };
        let retrain_epochs = match doc.get("retrain_epochs") {
            None | Some(json::Value::Null) => None,
            Some(v) => Some(v.as_usize().map_err(as_plan_error)?),
        };
        let axis_docs = doc
            .field("axes")
            .and_then(json::Value::as_arr)
            .map_err(as_plan_error)?;
        if axis_docs.is_empty() {
            return Err(CampaignError::invalid_plan(
                "a plan needs at least one axis",
            ));
        }
        let mut axes = Vec::with_capacity(axis_docs.len());
        for axis in axis_docs {
            axes.push(parse_axis(axis).map_err(as_plan_error)?);
        }
        Ok(Self {
            scenarios_per_cell,
            seed,
            retrain_epochs,
            axes,
        })
    }

    /// Fault maps drawn (and averaged) per cell.
    pub fn scenarios_per_cell(&self) -> usize {
        self.scenarios_per_cell
    }

    /// The base seed override, if the plan carries one.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// The epoch budget for [`Axis::Threshold`] cells, if the plan carries
    /// one.
    pub fn retrain_epochs(&self) -> Option<usize> {
        self.retrain_epochs
    }

    /// The validated axes, in plan order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }
}

/// Decodes and validates one `{"kind": .., "values": [..]}` axis element.
fn parse_axis(axis: &json::Value) -> std::result::Result<Axis, CampaignError> {
    let kind = axis.field("kind")?.as_str()?;
    let values = axis.field("values")?.as_arr()?;
    if values.is_empty() {
        return Err(CampaignError::invalid_plan(format!(
            "axis `{kind}` has no values"
        )));
    }
    match kind {
        "fault_rate" => {
            let mut rates = Vec::with_capacity(values.len());
            for v in values {
                let rate = v.as_f64()?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(CampaignError::invalid_plan(format!(
                        "fault rate {rate} is outside [0, 1]"
                    )));
                }
                rates.push(rate);
            }
            Ok(Axis::FaultRate(rates))
        }
        "bit" => {
            let mut bits = Vec::with_capacity(values.len());
            for v in values {
                let bit = v.as_usize()?;
                let bit = u32::try_from(bit).map_err(|_| {
                    CampaignError::invalid_plan(format!("bit position {bit} does not fit in u32"))
                })?;
                bits.push(bit);
            }
            Ok(Axis::BitPosition(bits))
        }
        "faulty_pes" => Ok(Axis::FaultyPes(
            values
                .iter()
                .map(json::Value::as_usize)
                .collect::<std::result::Result<_, _>>()?,
        )),
        "array_size" => {
            let mut sizes = Vec::with_capacity(values.len());
            for v in values {
                let size = v.as_usize()?;
                if size == 0 {
                    return Err(CampaignError::invalid_plan("array size must be positive"));
                }
                sizes.push(size);
            }
            Ok(Axis::ArraySize(sizes))
        }
        "threshold" => {
            let mut thresholds = Vec::with_capacity(values.len());
            for v in values {
                thresholds.push(validate_threshold(v.as_f64()? as f32)?);
            }
            Ok(Axis::Threshold(thresholds))
        }
        "strategy" => {
            let mut strategies = Vec::with_capacity(values.len());
            for v in values {
                strategies.push(parse_strategy(v.as_str()?)?);
            }
            Ok(Axis::Mitigation(strategies))
        }
        "polarity" => {
            let mut polarities = Vec::with_capacity(values.len());
            for v in values {
                polarities.push(match v.as_str()? {
                    "sa0" => StuckAt::Zero,
                    "sa1" => StuckAt::One,
                    other => {
                        return Err(CampaignError::invalid_plan(format!(
                            "unknown polarity `{other}` (expected `sa0` or `sa1`)"
                        )))
                    }
                });
            }
            Ok(Axis::Polarity(polarities))
        }
        other => Err(CampaignError::invalid_plan(format!(
            "unknown axis kind `{other}`"
        ))),
    }
}

/// Rejects NaN, infinite and negative threshold voltages.
fn validate_threshold(threshold: f32) -> std::result::Result<f32, CampaignError> {
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(CampaignError::invalid_plan(format!(
            "threshold {threshold} must be finite and non-negative"
        )));
    }
    Ok(threshold)
}

/// Parses a strategy string: `fap`, `fapit:EPOCHS`, `fapit:EPOCHS@THRESHOLD`
/// or `falvolt:EPOCHS`.
fn parse_strategy(s: &str) -> std::result::Result<MitigationStrategy, CampaignError> {
    let epochs_of = |text: &str| {
        text.parse::<usize>().map_err(|_| {
            CampaignError::invalid_plan(format!("invalid epoch count `{text}` in strategy `{s}`"))
        })
    };
    if s == "fap" {
        return Ok(MitigationStrategy::FaP);
    }
    if let Some(rest) = s.strip_prefix("falvolt:") {
        return Ok(MitigationStrategy::falvolt(epochs_of(rest)?));
    }
    if let Some(rest) = s.strip_prefix("fapit:") {
        if let Some((epochs, threshold)) = rest.split_once('@') {
            let threshold = threshold.parse::<f32>().map_err(|_| {
                CampaignError::invalid_plan(format!(
                    "invalid threshold `{threshold}` in strategy `{s}`"
                ))
            })?;
            return Ok(MitigationStrategy::FaPIT {
                epochs: epochs_of(epochs)?,
                threshold: validate_threshold(threshold)?,
            });
        }
        return Ok(MitigationStrategy::fapit(epochs_of(rest)?));
    }
    Err(CampaignError::invalid_plan(format!(
        "unknown strategy `{s}` (expected `fap`, `fapit:EPOCHS`, `fapit:EPOCHS@THRESHOLD` or \
         `falvolt:EPOCHS`)"
    )))
}

/// Builds one retraining worker: a scenario view of the baseline with the
/// shared sweep cache and the campaign preset installed.
fn retrain_view(
    baseline: &SpikingNetwork,
    sweep_cache: &Arc<SweepCache>,
    preset: &EnginePreset,
) -> SpikingNetwork {
    let mut network = baseline.scenario_view();
    network.set_engine_preset(*preset);
    network.set_sweep_cache(if preset.prefix_cache() {
        Some(Arc::clone(sweep_cache))
    } else {
        None
    });
    network
}

/// Draws one cell pool: `scenarios` maps from a fresh RNG seeded with the
/// cell's mixed seed.
fn draw_pool(spec: &CellSpec, seed: u64, scenarios: usize) -> Result<Vec<FaultMap>> {
    let bit = spec.resolved_bit();
    let mut maps = Vec::with_capacity(scenarios);
    if let Some(rate) = spec.fault_rate {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..scenarios {
            maps.push(FaultMap::random_with_rate(
                &spec.systolic,
                rate,
                bit,
                spec.polarity,
                &mut rng,
            )?);
        }
    } else if let Some(pes) = spec.faulty_pes {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..scenarios {
            maps.push(FaultMap::random_faulty_pes(
                &spec.systolic,
                pes,
                bit,
                spec.polarity,
                &mut rng,
            )?);
        }
    } else {
        // No fault axis: the fault-free chip.
        maps.resize(scenarios, FaultMap::new(spec.systolic));
    }
    Ok(maps)
}

/// The historical per-figure seed mixers of the pre-campaign drivers.
///
/// Pass one to [`Campaign::seed_mixer`] to reproduce exactly the fault maps
/// a legacy driver drew — the deprecated `falvolt::experiment` wrappers, the
/// figure benches and the `reproduce` binary all install these, and the
/// campaign equivalence tests pin the formulas bit-for-bit. Plans that do
/// not need continuity with recorded series should keep the default mixer.
pub mod mixers {
    use super::CellSpec;

    /// Figure 2 (`threshold_sweep`): one chip per fault rate.
    pub fn per_fault_rate(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ spec.fault_rate.unwrap_or(0.0).to_bits()
    }

    /// Figures 6/7 (`mitigation_comparison`): one chip per fault rate,
    /// decorrelated from the Figure 2 pool by the rotation.
    pub fn per_fault_rate_rotated(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ spec.fault_rate.unwrap_or(0.0).to_bits().rotate_left(13)
    }

    /// Figure 5a (`bit_position_experiment`): one pool per bit position,
    /// shared by both polarities.
    pub fn per_bit(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ u64::from(spec.bit.unwrap_or(0)) << 8
    }

    /// Figure 5b (`faulty_pe_experiment`): one pool per faulty-PE count.
    pub fn per_faulty_pe_count(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ (spec.faulty_pes.unwrap_or(0) as u64) << 16
    }

    /// Figure 5c (`array_size_experiment`): one pool per array side length.
    pub fn per_array_size(seed: u64, spec: &CellSpec) -> u64 {
        seed ^ (spec.systolic.rows() as u64) << 24
    }

    /// Figure 8 (`convergence_experiment`): one fixed chip for every cell.
    pub fn convergence(seed: u64, _spec: &CellSpec) -> u64 {
        seed ^ 0xF168
    }
}

/// The default seed mixer: a content hash of the fault-drawing parameters.
/// The payload (threshold, strategy) is deliberately excluded so payload
/// variants of one fault configuration retrain against the same chips.
fn default_seed_mix(seed: u64, spec: &CellSpec) -> u64 {
    let mut fp = falvolt_tensor::Fingerprint::new();
    fp.write_str("campaign-cell");
    fp.write_u64(seed);
    fp.write_usize(spec.systolic.rows());
    fp.write_usize(spec.systolic.cols());
    fp.write_u64(spec.fault_rate.map_or(u64::MAX, f64::to_bits));
    fp.write_u64(spec.faulty_pes.map_or(u64::MAX, |p| p as u64));
    fp.write_u64(u64::from(spec.resolved_bit()));
    fp.write_u64(match spec.polarity {
        StuckAt::Zero => 0,
        StuckAt::One => 1,
    });
    fp.finish() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DatasetKind, ExperimentScale};

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::prepare_untrained(DatasetKind::Mnist, ExperimentScale::Tiny, 9)
            .expect("untrained context")
    }

    #[test]
    fn axes_expand_cartesian_first_axis_outermost() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultRate(vec![0.1, 0.3]))
            .axis(Axis::BitPosition(vec![0, 15]))
            .run()
            .unwrap();
        assert_eq!(run.axes(), &["fault_rate".to_string(), "bit".to_string()]);
        let coords: Vec<(f64, u32)> = run
            .cells()
            .iter()
            .map(|c| (c.spec.fault_rate.unwrap(), c.spec.bit.unwrap()))
            .collect();
        assert_eq!(coords, vec![(0.1, 0), (0.1, 15), (0.3, 0), (0.3, 15)]);
        for cell in &run {
            assert_eq!(cell.scenarios, 1);
            assert!(cell.outcomes.is_empty(), "eval cells have no outcomes");
            assert!((0.0..=1.0).contains(&cell.accuracy));
        }
    }

    #[test]
    fn payload_cells_share_a_once_per_rate_pool_and_seeds_are_stable() {
        // The default mixer excludes the payload, so the threshold cells of
        // one rate must retrain against the same drawn chip; and rerunning
        // the identical plan reproduces identical accuracies.
        let mut ctx = tiny_ctx();
        let plan = |ctx: &mut ExperimentContext| {
            Campaign::new(ctx)
                .axis(Axis::FaultRate(vec![0.4]))
                .axis(Axis::Threshold(vec![0.6, 1.0]))
                .retrain_epochs(1)
                .run()
                .unwrap()
        };
        let a = plan(&mut ctx);
        let b = plan(&mut ctx);
        assert_eq!(a.cells().len(), 2);
        for cell in &a {
            let outcome = cell.outcome().expect("retraining cell");
            assert_eq!(outcome.strategy, "FaPIT");
            assert_eq!(outcome.epochs_run, 1);
        }
        // Same chip for both thresholds: identical pruned fraction.
        assert_eq!(
            a.cells()[0].outcomes[0].pruned_weight_fraction,
            a.cells()[1].outcomes[0].pruned_weight_fraction
        );
        assert_eq!(a, b, "a campaign plan is a pure function of its inputs");
    }

    #[test]
    fn custom_axis_edits_the_spec_and_records_coords() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::custom("array_rows", vec![4.0, 8.0], |spec, rows| {
                spec.systolic = SystolicConfig::new(rows as usize, 8).unwrap();
            }))
            .run()
            .unwrap();
        assert_eq!(run.cells()[0].spec.systolic.rows(), 4);
        assert_eq!(run.cells()[1].spec.systolic.rows(), 8);
        assert_eq!(
            run.cells()[1].coord("array_rows"),
            Some(&AxisValue::Custom(8.0))
        );
        assert_eq!(run.mean_series("array_rows").len(), 1);
        assert_eq!(run.mean_series("array_rows")[0].points.len(), 2);
    }

    #[test]
    fn mean_series_groups_by_remaining_coords() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::Polarity(vec![StuckAt::Zero, StuckAt::One]))
            .axis(Axis::BitPosition(vec![0, 15]))
            .axis(Axis::FaultyPes(vec![4]))
            .scenarios_per_cell(2)
            .run()
            .unwrap();
        assert_eq!(run.len(), 4);
        let series = run.mean_series("bit");
        assert_eq!(series.len(), 2, "one series per polarity");
        assert_eq!(series[0].label, "sa0/4");
        assert_eq!(series[1].label, "sa1/4");
        assert!(series.iter().all(|s| s.points.len() == 2));
        assert!(series
            .iter()
            .all(|s| s.points.iter().all(|p| p.iterations == 2)));
        // The table serializes the same cells.
        let table = run.into_table();
        assert_eq!(table.cells.len(), 4);
        assert_eq!(table.axes.len(), 3);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut ctx = tiny_ctx();
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![1]))
            .scenarios_per_cell(0)
            .run()
            .is_err());
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::ArraySize(vec![0]))
            .run()
            .is_err());
        // A threshold cannot silently ride along with a strategy that has no
        // threshold knob — the coordinate would label cells by a parameter
        // that had no effect.
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::Threshold(vec![0.5]))
            .axis(Axis::Mitigation(vec![MitigationStrategy::FaP]))
            .run()
            .is_err());
        // A Threshold axis without an epoch budget would silently run
        // prune-only FaPIT; the plan is rejected instead.
        assert!(Campaign::new(&mut ctx)
            .axis(Axis::Threshold(vec![0.5]))
            .run()
            .is_err());
        // An empty axis expands to zero cells, not an error.
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultRate(Vec::new()))
            .run()
            .unwrap();
        assert!(run.is_empty());
        assert!(Axis::FaultRate(Vec::new()).is_empty());
    }

    #[test]
    fn failed_cells_are_rows_not_aborts() {
        let mut ctx = tiny_ctx();
        let clean = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4, 8]))
            .run()
            .unwrap();
        // Panic in the middle cell's worker: the run survives, the cell is a
        // Failed row, and its neighbours are bit-identical to a clean run.
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4, 8]))
            .cell_hook(|cell, _attempt| {
                if cell == 1 {
                    panic!("injected worker panic");
                }
                Ok(())
            })
            .run()
            .unwrap();
        assert_eq!(run.len(), 3);
        assert_eq!((run.completed(), run.failed(), run.skipped()), (2, 1, 0));
        match &run.cells()[1].status {
            CellStatus::Failed { cause, attempts } => {
                assert!(cause.is_panic());
                assert_eq!(cause.message(), "injected worker panic");
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected a failed cell, got {other:?}"),
        }
        assert_eq!(run.cells()[1].accuracy, 0.0);
        assert_eq!(run.cells()[0], clean.cells()[0]);
        assert_eq!(run.cells()[2], clean.cells()[2]);

        // The same isolation holds on the retraining path.
        let retrain = Campaign::new(&mut ctx)
            .axis(Axis::FaultRate(vec![0.2]))
            .axis(Axis::Mitigation(vec![MitigationStrategy::FaP]))
            .cell_hook(|_, _| panic!("retrain worker panic"))
            .run()
            .unwrap();
        assert!(retrain.cells()[0].status.is_failed());
    }

    #[test]
    fn retries_recover_flaky_cells_and_cap_attempts() {
        let mut ctx = tiny_ctx();
        let clean = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4]))
            .run()
            .unwrap();
        // Every cell fails its first attempt; one retry recovers them all
        // bit-identically (a retry sees a fresh scenario view).
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4]))
            .retry(RetryPolicy::attempts(2).backoff(Duration::ZERO, Duration::ZERO))
            .cell_hook(|_cell, attempt| {
                if attempt == 1 {
                    Err("transient failure".to_string())
                } else {
                    Ok(())
                }
            })
            .run()
            .unwrap();
        assert_eq!(run, clean);
        // Without retries the same hook fails the cells after one attempt.
        let once = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4]))
            .cell_hook(|_cell, attempt| {
                if attempt == 1 {
                    Err("transient failure".to_string())
                } else {
                    Ok(())
                }
            })
            .run()
            .unwrap();
        assert_eq!(once.failed(), 2);
        assert!(once.cells().iter().all(|c| matches!(
            &c.status,
            CellStatus::Failed { cause, attempts: 1 } if !cause.is_panic()
        )));
    }

    #[test]
    fn deadlines_and_cancellation_return_the_completed_prefix() {
        let mut ctx = tiny_ctx();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4]))
            .budget(RunBudget::unlimited().deadline(Duration::ZERO))
            .run()
            .unwrap();
        assert_eq!(run.len(), 2);
        assert_eq!(run.skipped(), 2);
        assert!(run.cells().iter().all(|c| matches!(
            c.status,
            CellStatus::Skipped {
                reason: SkipReason::Deadline
            }
        )));

        let token = CancelToken::new();
        token.cancel();
        let run = Campaign::new(&mut ctx)
            .axis(Axis::FaultyPes(vec![0, 4]))
            .cancel_token(token)
            .run()
            .unwrap();
        assert!(run.cells().iter().all(|c| matches!(
            c.status,
            CellStatus::Skipped {
                reason: SkipReason::Cancelled
            }
        )));
    }

    #[test]
    fn checkpoints_round_trip_and_resume_bit_identically() {
        use std::sync::Mutex;
        let mut ctx = tiny_ctx();
        fn plan(ctx: &mut ExperimentContext) -> Campaign<'_> {
            Campaign::new(ctx)
                .axis(Axis::FaultyPes(vec![0, 4, 8]))
                .scenarios_per_cell(2)
        }
        let full = plan(&mut ctx).run().unwrap();

        // Interrupt after the first 1-cell wave by tripping a token from
        // the checkpoint sink.
        let seen: Arc<Mutex<Vec<CampaignCheckpoint>>> = Arc::new(Mutex::new(Vec::new()));
        let token = CancelToken::new();
        let sink_seen = Arc::clone(&seen);
        let sink_token = token.clone();
        let partial = plan(&mut ctx)
            .checkpoint_every(1)
            .checkpoint_sink(move |cp| {
                sink_seen
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(cp.clone());
                sink_token.cancel();
            })
            .cancel_token(token)
            .run()
            .unwrap();
        assert!(partial.skipped() > 0, "the kill left unexecuted cells");
        let checkpoint = seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .first()
            .cloned()
            .expect("a checkpoint");
        assert_eq!(checkpoint.completed_cells(), 1);
        assert!(!checkpoint.is_complete());

        // Serialize, reload and resume: the merged run is bit-identical to
        // the uninterrupted one.
        let reloaded = CampaignCheckpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(reloaded, checkpoint);
        let resumed = plan(&mut ctx).resume(reloaded).run().unwrap();
        assert_eq!(resumed, full, "killed-and-resumed == uninterrupted");

        // A checkpoint does not resume a different plan.
        let err = plan(&mut ctx)
            .seed(999)
            .resume(checkpoint)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            crate::FalvoltError::Campaign(CampaignError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn plan_specs_validate_at_the_serde_boundary() {
        let good = r#"{
            "scenarios_per_cell": 2,
            "seed": 7,
            "retrain_epochs": 1,
            "axes": [
                {"kind": "fault_rate", "values": [0.1, 0.3]},
                {"kind": "strategy", "values": ["fap", "fapit:3", "fapit:3@0.5", "falvolt:2"]},
                {"kind": "polarity", "values": ["sa0", "sa1"]}
            ]
        }"#;
        let spec = PlanSpec::from_json(good).unwrap();
        assert_eq!(spec.scenarios_per_cell(), 2);
        assert_eq!(spec.seed(), Some(7));
        assert_eq!(spec.retrain_epochs(), Some(1));
        assert_eq!(spec.axes().len(), 3);
        assert_eq!(
            spec.axes()[1].label(),
            "strategy",
            "strategy strings parse into a Mitigation axis"
        );

        // A parsed plan actually runs.
        let mut ctx = tiny_ctx();
        let tiny = PlanSpec::from_json(
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "faulty_pes", "values": [0, 4]}]}"#,
        )
        .unwrap();
        let run = Campaign::new(&mut ctx).plan(tiny).run().unwrap();
        assert_eq!(run.len(), 2);
        assert_eq!(run.completed(), 2);

        for bad in [
            // zero scenarios
            r#"{"scenarios_per_cell": 0, "axes": [{"kind": "bit", "values": [0]}]}"#,
            // no axes at all
            r#"{"scenarios_per_cell": 1, "axes": []}"#,
            // an empty axis value list
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "bit", "values": []}]}"#,
            // unknown axis kind
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "voltage", "values": [1]}]}"#,
            // out-of-range fault rate
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "fault_rate", "values": [1.5]}]}"#,
            // negative threshold
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "threshold", "values": [-0.5]}]}"#,
            // NaN threshold smuggled through a strategy string
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "strategy", "values": ["fapit:3@nan"]}]}"#,
            // unknown strategy / polarity spellings
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "strategy", "values": ["prune-harder"]}]}"#,
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "polarity", "values": ["stuck-low"]}]}"#,
            // zero array size
            r#"{"scenarios_per_cell": 1, "axes": [{"kind": "array_size", "values": [0]}]}"#,
            // malformed JSON
            r#"{"scenarios_per_cell": 1, "axes": ["#,
        ] {
            assert!(
                matches!(
                    PlanSpec::from_json(bad),
                    Err(CampaignError::InvalidPlan { .. })
                ),
                "`{bad}` should be rejected as an invalid plan"
            );
        }
    }

    #[test]
    fn presets_are_execution_strategies_not_result_state() {
        let mut ctx = tiny_ctx();
        let plan = |ctx: &mut ExperimentContext, preset: EnginePreset| {
            Campaign::new(ctx)
                .axis(Axis::FaultyPes(vec![0, 6]))
                .scenarios_per_cell(2)
                .preset(preset)
                .run()
                .unwrap()
        };
        let full = plan(&mut ctx, EnginePreset::full());
        let replay = plan(&mut ctx, EnginePreset::event_driven());
        let seedlike = plan(&mut ctx, EnginePreset::seed_equivalent());
        let accuracies =
            |run: &CampaignRun| -> Vec<f32> { run.cells().iter().map(|c| c.accuracy).collect() };
        assert_eq!(accuracies(&full), accuracies(&replay));
        assert_eq!(accuracies(&full), accuracies(&seedlike));
    }
}
