//! Minimal JSON reader/writer for checkpoints and plan specs.
//!
//! The workspace's `serde` is an offline no-op shim (derives expand to empty
//! marker impls), so anything that must actually round-trip bytes —
//! campaign checkpoints, plan specs arriving at the serde boundary — is
//! encoded by hand against this module. The value model is deliberately
//! small: objects keep insertion order, numbers are `f64`, and callers
//! encode floats they need bit-exact as hex strings of their IEEE-754 bits
//! (see [`crate::campaign::CampaignCheckpoint`]).

use crate::error::CampaignError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included), as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field, with a typed error naming the key.
    pub(crate) fn field(&self, key: &str) -> Result<&Value, CampaignError> {
        self.get(key)
            .ok_or_else(|| CampaignError::malformed(format!("missing field `{key}`")))
    }

    /// The value as a string slice.
    pub(crate) fn as_str(&self) -> Result<&str, CampaignError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(CampaignError::malformed(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `f64`.
    pub(crate) fn as_f64(&self) -> Result<f64, CampaignError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(CampaignError::malformed(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a non-negative integer (rejects fractions and numbers
    /// too large for exact `f64` representation).
    pub(crate) fn as_usize(&self) -> Result<usize, CampaignError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return Err(CampaignError::malformed(format!(
                "expected a non-negative integer, found {n}"
            )));
        }
        Ok(n as usize)
    }

    /// The value as an array slice.
    pub(crate) fn as_arr(&self) -> Result<&[Value], CampaignError> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(CampaignError::malformed(format!(
                "expected an array, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Num(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        }
    }
}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
pub(crate) fn parse(text: &str) -> Result<Value, CampaignError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(CampaignError::malformed(format!(
            "trailing characters at byte {pos}"
        )));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), CampaignError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(CampaignError::malformed(format!(
            "expected `{}` at byte {pos}",
            byte as char
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, CampaignError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(CampaignError::malformed("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => {
                        return Err(CampaignError::malformed(format!(
                            "expected `,` or `}}` at byte {pos}"
                        )))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(CampaignError::malformed(format!(
                            "expected `,` or `]` at byte {pos}"
                        )))
                    }
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, CampaignError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(CampaignError::malformed(format!(
            "invalid literal at byte {pos}"
        )))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, CampaignError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| CampaignError::malformed("non-UTF-8 number"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| CampaignError::malformed(format!("invalid number `{text}` at byte {start}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, CampaignError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(CampaignError::malformed("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| CampaignError::malformed("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| CampaignError::malformed("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| CampaignError::malformed("invalid \\u escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(CampaignError::malformed("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (strings arrive as valid UTF-8).
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest)
                    .map_err(|_| CampaignError::malformed("non-UTF-8 string"))?;
                let ch = text.chars().next().expect("non-empty by match arm");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_objects_arrays_and_escapes() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"nested": "q\"uote\\n"}, "c": true, "d": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.field("a").unwrap().as_arr().unwrap()[2].as_f64().unwrap(),
            1e3
        );
        assert_eq!(
            v.field("b")
                .unwrap()
                .field("nested")
                .unwrap()
                .as_str()
                .unwrap(),
            "q\"uote\\n"
        );
        assert_eq!(v.field("c"), Ok(&Value::Bool(true)));
        assert_eq!(v.field("d"), Ok(&Value::Null));
        // quote() output parses back to the same string.
        let tricky = "line\nbreak \"and\" \\slash\\ \u{0001}";
        let parsed = parse(&quote(tricky)).unwrap();
        assert_eq!(parsed.as_str().unwrap(), tricky);
    }

    #[test]
    fn rejects_malformed_documents_with_typed_errors() {
        for bad in [
            "{",
            "[1, 2",
            "\"unterminated",
            "{\"a\": }",
            "12x",
            "[1] trailing",
            "",
        ] {
            assert!(
                matches!(parse(bad), Err(CampaignError::CheckpointMalformed { .. })),
                "`{bad}` should be rejected"
            );
        }
        assert!(Value::Num(1.5).as_usize().is_err());
        assert!(Value::Num(-1.0).as_usize().is_err());
        assert_eq!(Value::Num(7.0).as_usize().unwrap(), 7);
    }
}
