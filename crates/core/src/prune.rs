//! Fault-aware pruning: zero the weights that map onto faulty PEs.
//!
//! This is the first step of every mitigation strategy in the paper
//! (Algorithm 1, lines 1-2): the fault map obtained from post-fabrication
//! testing determines, through the weight-stationary mapping, which weights
//! of every convolutional and fully connected layer land on faulty PEs; those
//! weights are set to zero (equivalently, the faulty PEs are bypassed in
//! hardware, Figure 3b). Because the array is reused across layers and tiles,
//! one faulty PE generally prunes many weights.

use crate::Result;
use falvolt_snn::SpikingNetwork;
use falvolt_systolic::{FaultMap, WeightMapping};
use falvolt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-layer prune masks derived from one fault map.
///
/// A mask has the same `[out, in]` shape as the layer's weight matrix, with
/// `0.0` at pruned positions and `1.0` elsewhere. Keeping the masks around is
/// essential for retraining: Algorithm 1 (line 13) re-zeroes the pruned
/// weights at the end of every retraining epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneMasks {
    masks: Vec<(String, Tensor)>,
}

impl PruneMasks {
    /// Derives the prune masks of every prunable layer of `network` for the
    /// given fault map.
    pub fn derive(network: &mut SpikingNetwork, fault_map: &FaultMap) -> Self {
        let mapping = WeightMapping::new(fault_map.config());
        let mut masks = Vec::new();
        for (name, weight) in network.prunable_weights_mut() {
            let shape = weight.value().shape();
            let (out_dim, in_dim) = (shape[0], shape[1]);
            masks.push((name, mapping.prune_mask(out_dim, in_dim, fault_map)));
        }
        Self { masks }
    }

    /// Number of layers covered by the masks.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Returns `true` when no layer is covered.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Per-layer `(name, mask)` pairs.
    pub fn layers(&self) -> &[(String, Tensor)] {
        &self.masks
    }

    /// Multiplies every prunable weight of `network` by its mask, zeroing the
    /// weights mapped to faulty PEs. Call this once before retraining and
    /// again at the end of every retraining epoch (Algorithm 1, line 13).
    ///
    /// # Errors
    ///
    /// Returns an error when the network's layer structure no longer matches
    /// the masks (different layer count or weight shapes).
    pub fn apply(&self, network: &mut SpikingNetwork) -> Result<()> {
        let weights = network.prunable_weights_mut();
        if weights.len() != self.masks.len() {
            return Err(crate::FalvoltError::invalid_config(format!(
                "prune masks cover {} layers but the network has {} prunable layers",
                self.masks.len(),
                weights.len()
            )));
        }
        for ((name, mask), (layer_name, weight)) in self.masks.iter().zip(weights) {
            if name != &layer_name || weight.value().shape() != mask.shape() {
                return Err(crate::FalvoltError::invalid_config(format!(
                    "prune mask for layer '{name}' does not match network layer '{layer_name}'"
                )));
            }
            // `assign_value` swaps in the masked tensor without a
            // copy-on-write round trip on the (possibly shared) old buffer.
            let masked = weight.value().mul(mask)?;
            weight.assign_value(masked);
        }
        Ok(())
    }

    /// Overall fraction of weights pruned across all layers.
    pub fn pruned_fraction(&self) -> f64 {
        let mut total = 0usize;
        let mut pruned = 0usize;
        for (_, mask) in &self.masks {
            total += mask.len();
            pruned += mask.data().iter().filter(|&&v| v == 0.0).count();
        }
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }

    /// Per-layer pruned fractions, in network order.
    pub fn per_layer_fractions(&self) -> Vec<PrunedLayerReport> {
        self.masks
            .iter()
            .map(|(name, mask)| {
                let pruned = mask.data().iter().filter(|&&v| v == 0.0).count();
                PrunedLayerReport {
                    layer: name.clone(),
                    total_weights: mask.len(),
                    pruned_weights: pruned,
                }
            })
            .collect()
    }
}

/// Pruning statistics for one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrunedLayerReport {
    /// Layer name.
    pub layer: String,
    /// Total number of weights in the layer.
    pub total_weights: usize,
    /// Number of weights zeroed by fault-aware pruning.
    pub pruned_weights: usize,
}

impl PrunedLayerReport {
    /// Pruned fraction of this layer.
    pub fn fraction(&self) -> f64 {
        if self.total_weights == 0 {
            0.0
        } else {
            self.pruned_weights as f64 / self.total_weights as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_snn::config::ArchitectureConfig;
    use falvolt_systolic::{StuckAt, SystolicConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network() -> SpikingNetwork {
        ArchitectureConfig::tiny_test().build(3).unwrap()
    }

    #[test]
    fn empty_fault_map_prunes_nothing() {
        let mut net = network();
        let config = SystolicConfig::new(8, 8).unwrap();
        let masks = PruneMasks::derive(&mut net, &FaultMap::new(config));
        assert!(!masks.is_empty());
        assert_eq!(masks.pruned_fraction(), 0.0);
        let before: Vec<f32> = net.prunable_weights_mut()[0].1.value().data().to_vec();
        masks.apply(&mut net).unwrap();
        let after: Vec<f32> = net.prunable_weights_mut()[0].1.value().data().to_vec();
        assert_eq!(before, after);
    }

    #[test]
    fn faulty_pes_zero_the_mapped_weights_everywhere() {
        let mut net = network();
        let config = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let fault_map =
            FaultMap::random_with_rate(&config, 0.30, 15, StuckAt::One, &mut rng).unwrap();
        let masks = PruneMasks::derive(&mut net, &fault_map);
        masks.apply(&mut net).unwrap();

        // The pruned fraction should be close to the PE fault rate for large
        // layers (array reuse), and every masked position must now be zero.
        let frac = masks.pruned_fraction();
        assert!(frac > 0.15 && frac < 0.45, "pruned fraction {frac}");
        for ((_, mask), (_, weight)) in masks.layers().iter().zip(net.prunable_weights_mut()) {
            for (m, w) in mask.data().iter().zip(weight.value().data()) {
                if *m == 0.0 {
                    assert_eq!(*w, 0.0);
                }
            }
        }
        // Per-layer reports are consistent with the global fraction.
        let reports = masks.per_layer_fractions();
        assert_eq!(reports.len(), masks.len());
        let total_pruned: usize = reports.iter().map(|r| r.pruned_weights).sum();
        let total: usize = reports.iter().map(|r| r.total_weights).sum();
        assert!((total_pruned as f64 / total as f64 - frac).abs() < 1e-12);
        assert!(reports.iter().all(|r| r.fraction() <= 1.0));
    }

    #[test]
    fn apply_rejects_mismatched_networks() {
        let mut tiny = network();
        let mut other = ArchitectureConfig::mnist_like().build(1).unwrap();
        let config = SystolicConfig::new(4, 4).unwrap();
        let masks = PruneMasks::derive(&mut tiny, &FaultMap::new(config));
        assert!(masks.apply(&mut other).is_err());
    }

    #[test]
    fn reapplying_masks_after_weight_updates_rezeroes_them() {
        let mut net = network();
        let config = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let fault_map =
            FaultMap::random_with_rate(&config, 0.5, 15, StuckAt::One, &mut rng).unwrap();
        let masks = PruneMasks::derive(&mut net, &fault_map);
        masks.apply(&mut net).unwrap();
        // Simulate an optimizer step that perturbs every weight.
        for (_, weight) in net.prunable_weights_mut() {
            weight.value_mut().map_inplace(|w| w + 0.5);
        }
        masks.apply(&mut net).unwrap();
        for ((_, mask), (_, weight)) in masks.layers().iter().zip(net.prunable_weights_mut()) {
            for (m, w) in mask.data().iter().zip(weight.value().data()) {
                if *m == 0.0 {
                    assert_eq!(
                        *w, 0.0,
                        "pruned weights must stay zero after re-application"
                    );
                }
            }
        }
    }
}
