//! Error type of the FalVolt core crate.

use falvolt_snn::SnnError;
use falvolt_systolic::SystolicError;
use falvolt_tensor::TensorError;
use std::fmt;

/// Error returned by FalVolt experiments, mitigation and analysis routines.
#[derive(Debug, Clone, PartialEq)]
pub enum FalvoltError {
    /// An underlying SNN error (construction, forward, backward).
    Snn(SnnError),
    /// An underlying systolic-array error (fault maps, executor).
    Systolic(SystolicError),
    /// An underlying tensor error.
    Tensor(TensorError),
    /// An experiment or mitigation was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl FalvoltError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        FalvoltError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FalvoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FalvoltError::Snn(e) => write!(f, "snn error: {e}"),
            FalvoltError::Systolic(e) => write!(f, "systolic error: {e}"),
            FalvoltError::Tensor(e) => write!(f, "tensor error: {e}"),
            FalvoltError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for FalvoltError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FalvoltError::Snn(e) => Some(e),
            FalvoltError::Systolic(e) => Some(e),
            FalvoltError::Tensor(e) => Some(e),
            FalvoltError::InvalidConfig { .. } => None,
        }
    }
}

impl From<SnnError> for FalvoltError {
    fn from(e: SnnError) -> Self {
        FalvoltError::Snn(e)
    }
}

impl From<SystolicError> for FalvoltError {
    fn from(e: SystolicError) -> Self {
        FalvoltError::Systolic(e)
    }
}

impl From<TensorError> for FalvoltError {
    fn from(e: TensorError) -> Self {
        FalvoltError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FalvoltError = SnnError::invalid_config("x").into();
        assert!(matches!(e, FalvoltError::Snn(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: FalvoltError = SystolicError::InvalidGrid { rows: 0, cols: 1 }.into();
        assert!(e.to_string().contains("systolic"));

        let e: FalvoltError = TensorError::RankMismatch {
            expected: 2,
            actual: 1,
        }
        .into();
        assert!(e.to_string().contains("tensor"));

        let e = FalvoltError::invalid_config("bad scale");
        assert!(e.to_string().contains("bad scale"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
