//! Error type of the FalVolt core crate.

use falvolt_snn::SnnError;
use falvolt_systolic::SystolicError;
use falvolt_tensor::TensorError;
use std::fmt;

/// Error returned by FalVolt experiments, mitigation and analysis routines.
#[derive(Debug, Clone, PartialEq)]
pub enum FalvoltError {
    /// An underlying SNN error (construction, forward, backward).
    Snn(SnnError),
    /// An underlying systolic-array error (fault maps, executor).
    Systolic(SystolicError),
    /// An underlying tensor error.
    Tensor(TensorError),
    /// An experiment or mitigation was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A campaign-level failure: plan rejection, checkpoint problems,
    /// worker panics that escaped every retry (see [`CampaignError`]).
    Campaign(CampaignError),
}

/// Typed failure domain of the campaign scheduler.
///
/// The scheduler's contract is that a failing *cell* is data — a
/// [`crate::campaign::CellStatus::Failed`] row in the result table — never a
/// process abort. `CampaignError` covers the failures that sink the *run*
/// itself: a plan that cannot be executed, a checkpoint that does not belong
/// to this plan, or a malformed checkpoint payload.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The plan is not executable (zero scenarios per cell, NaN or negative
    /// threshold values at the serde boundary, no axes, unknown axis kind).
    InvalidPlan {
        /// Human-readable description of the rejected plan element.
        reason: String,
    },
    /// A checkpoint's plan fingerprint does not match the campaign it was
    /// offered to: resuming would silently mix results of different plans.
    CheckpointMismatch {
        /// Fingerprint of the plan being resumed.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        actual: u64,
    },
    /// A checkpoint payload could not be decoded.
    CheckpointMalformed {
        /// What the decoder stumbled on.
        reason: String,
    },
    /// A scenario worker panicked on a path with no per-cell isolation (the
    /// legacy accuracy entry points, which promise a flat `Vec<f32>` and
    /// cannot record a per-cell failure).
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl CampaignError {
    /// Convenience constructor for plan rejections.
    pub fn invalid_plan(reason: impl Into<String>) -> Self {
        CampaignError::InvalidPlan {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for malformed checkpoints.
    pub fn malformed(reason: impl Into<String>) -> Self {
        CampaignError::CheckpointMalformed {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            CampaignError::CheckpointMismatch { expected, actual } => write!(
                f,
                "checkpoint belongs to a different plan \
                 (expected fingerprint {expected:#018x}, found {actual:#018x})"
            ),
            CampaignError::CheckpointMalformed { reason } => {
                write!(f, "malformed checkpoint: {reason}")
            }
            CampaignError::WorkerPanic { message } => {
                write!(f, "scenario worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CampaignError> for FalvoltError {
    fn from(e: CampaignError) -> Self {
        FalvoltError::Campaign(e)
    }
}

/// Why one campaign cell failed — the `cause` carried by
/// [`crate::campaign::CellStatus::Failed`].
///
/// Both variants carry the failure as a string: a failed cell is result
/// *data* (serialized into checkpoints and tables), so the cause must be
/// cloneable, comparable and encodable rather than a live error value.
#[derive(Debug, Clone, PartialEq)]
pub enum CellFailure {
    /// A worker panicked; the panic was caught at the cell boundary and the
    /// shared caches were quarantined.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A worker returned a typed error (forward pass, fault-map draw,
    /// mitigation).
    Error {
        /// Display form of the underlying error.
        message: String,
    },
}

impl CellFailure {
    /// The failure message, whichever variant carries it.
    pub fn message(&self) -> &str {
        match self {
            CellFailure::Panic { message } | CellFailure::Error { message } => message,
        }
    }

    /// `true` for a caught panic (as opposed to a typed error).
    pub fn is_panic(&self) -> bool {
        matches!(self, CellFailure::Panic { .. })
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Panic { message } => write!(f, "panic: {message}"),
            CellFailure::Error { message } => write!(f, "error: {message}"),
        }
    }
}

impl FalvoltError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        FalvoltError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FalvoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FalvoltError::Snn(e) => write!(f, "snn error: {e}"),
            FalvoltError::Systolic(e) => write!(f, "systolic error: {e}"),
            FalvoltError::Tensor(e) => write!(f, "tensor error: {e}"),
            FalvoltError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            FalvoltError::Campaign(e) => write!(f, "campaign error: {e}"),
        }
    }
}

impl std::error::Error for FalvoltError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FalvoltError::Snn(e) => Some(e),
            FalvoltError::Systolic(e) => Some(e),
            FalvoltError::Tensor(e) => Some(e),
            FalvoltError::InvalidConfig { .. } => None,
            FalvoltError::Campaign(e) => Some(e),
        }
    }
}

impl From<SnnError> for FalvoltError {
    fn from(e: SnnError) -> Self {
        FalvoltError::Snn(e)
    }
}

impl From<SystolicError> for FalvoltError {
    fn from(e: SystolicError) -> Self {
        FalvoltError::Systolic(e)
    }
}

impl From<TensorError> for FalvoltError {
    fn from(e: TensorError) -> Self {
        FalvoltError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FalvoltError = SnnError::invalid_config("x").into();
        assert!(matches!(e, FalvoltError::Snn(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: FalvoltError = SystolicError::InvalidGrid { rows: 0, cols: 1 }.into();
        assert!(e.to_string().contains("systolic"));

        let e: FalvoltError = TensorError::RankMismatch {
            expected: 2,
            actual: 1,
        }
        .into();
        assert!(e.to_string().contains("tensor"));

        let e = FalvoltError::invalid_config("bad scale");
        assert!(e.to_string().contains("bad scale"));
        assert!(std::error::Error::source(&e).is_none());

        let e: FalvoltError = CampaignError::invalid_plan("no axes").into();
        assert!(e.to_string().contains("invalid plan: no axes"));
        assert!(std::error::Error::source(&e).is_some());
        let e: FalvoltError = CampaignError::CheckpointMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("different plan"));
    }

    #[test]
    fn cell_failures_carry_their_message() {
        let p = CellFailure::Panic {
            message: "boom".into(),
        };
        assert!(p.is_panic());
        assert_eq!(p.message(), "boom");
        assert_eq!(p.to_string(), "panic: boom");
        let e = CellFailure::Error {
            message: "shape".into(),
        };
        assert!(!e.is_panic());
        assert_eq!(e.to_string(), "error: shape");
    }
}
