//! Content fingerprints for cache keying.
//!
//! The scenario-throughput engine memoizes expensive intermediates (lowered
//! im2col matrices, stateless-prefix outputs, clean-column products) across
//! sweep workers. Cache keys must identify *content*, not identity: two
//! scenario workers lowering the same input batch must produce the same key.
//!
//! [`Fingerprint`] is a streaming 128-bit content hash built from two
//! independent 64-bit lanes (FNV-1a and a Murmur-style multiply-xorshift
//! lane). 128 bits make accidental collisions across the at-most-thousands
//! of keys a sweep produces vanishingly unlikely (~n²/2¹²⁸), which is what
//! lets the caches guarantee bit-identical sweep results in practice without
//! storing and comparing full operand copies.
//!
//! # Example
//!
//! ```
//! use falvolt_tensor::fingerprint::Fingerprint;
//!
//! let mut a = Fingerprint::new();
//! a.write_f32s(&[1.0, 2.0, 3.0]);
//! let mut b = Fingerprint::new();
//! b.write_f32s(&[1.0, 2.0, 3.0]);
//! assert_eq!(a.finish(), b.finish());
//! ```

/// Streaming 128-bit content hash (two independent 64-bit lanes).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    /// FNV-1a lane.
    a: u64,
    /// Multiply-xorshift lane, seeded differently so the two lanes do not
    /// collide together.
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const MIX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const MIX_PRIME: u64 = 0xff51_afd7_ed55_8ccd;

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Self {
            a: FNV_OFFSET,
            b: MIX_SEED,
        }
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(FNV_PRIME);
        let mut m = self.b ^ v.rotate_left(29);
        m = m.wrapping_mul(MIX_PRIME);
        m ^= m >> 33;
        self.b = m;
    }

    /// Absorbs a `usize` (as 64 bits).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a byte string (e.g. a layer or backend name).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut word = 0u64;
            for (i, &byte) in chunk.iter().enumerate() {
                word |= u64::from(byte) << (8 * i);
            }
            self.write_u64(word);
        }
    }

    /// Absorbs an `f32` slice by bit pattern (so `-0.0` and `0.0` hash
    /// differently — content keys must be exact, not numeric).
    pub fn write_f32s(&mut self, data: &[f32]) {
        self.write_u64(data.len() as u64);
        let mut pairs = data.chunks_exact(2);
        for pair in &mut pairs {
            let word = u64::from(pair[0].to_bits()) | (u64::from(pair[1].to_bits()) << 32);
            self.write_u64(word);
        }
        if let [last] = pairs.remainder() {
            self.write_u64(u64::from(last.to_bits()));
        }
    }

    /// Absorbs a shape (rank plus every dimension).
    pub fn write_dims(&mut self, dims: &[usize]) {
        self.write_u64(dims.len() as u64);
        for &d in dims {
            self.write_u64(d as u64);
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_agree() {
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        for fp in [&mut a, &mut b] {
            fp.write_str("layer");
            fp.write_dims(&[2, 3]);
            fp.write_f32s(&[1.0, -2.5, 0.25]);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn single_element_changes_digest() {
        let data: Vec<f32> = (0..257).map(|i| i as f32 * 0.5).collect();
        let mut a = Fingerprint::new();
        a.write_f32s(&data);
        let mut perturbed = data.clone();
        // Flip the lowest mantissa bit (adding a small float would round
        // away at this magnitude).
        perturbed[200] = f32::from_bits(perturbed[200].to_bits() ^ 1);
        let mut b = Fingerprint::new();
        b.write_f32s(&perturbed);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn zero_sign_and_length_are_distinguished() {
        let mut a = Fingerprint::new();
        a.write_f32s(&[0.0]);
        let mut b = Fingerprint::new();
        b.write_f32s(&[-0.0]);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fingerprint::new();
        c.write_f32s(&[0.0, 0.0]);
        let mut d = Fingerprint::new();
        d.write_f32s(&[0.0, 0.0, 0.0]);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        // "ab" + "c" must differ from "a" + "bc".
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
