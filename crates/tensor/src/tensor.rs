//! The dense, owned, row-major [`Tensor`] type.

use crate::spikes::SpikeIndex;
use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global content-id source. Ids are handed out once and never reused, so
/// `a.content_id() == b.content_id()` implies the two tensors hold the same
/// data bytes (the reverse does not hold — equal content may carry different
/// ids, which costs a cache miss, never a wrong hit).
static NEXT_CONTENT_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_content_id() -> u64 {
    NEXT_CONTENT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A dense, owned, row-major `f32` tensor with a dynamic shape.
///
/// `Tensor` is the workhorse value type of the FalVolt workspace: SNN layer
/// activations, weights, gradients, spike trains and dataset samples are all
/// `Tensor`s.
///
/// # Example
///
/// ```
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), falvolt_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = x.map(|v| v * 2.0);
/// assert_eq!(y.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok(())
/// # }
/// ```
/// # Content ids and spike indexes
///
/// Every tensor carries a **generation-tagged content id**: a token that is
/// minted once per distinct data buffer and re-minted by every mutable data
/// access, so two tensors with the same id are guaranteed to hold identical
/// bytes. Caches key on the id instead of hashing operand contents per
/// consult (O(1) vs O(len)); clones keep the id (their content is identical)
/// and mutation re-mints it, so a stale key can never alias new content.
///
/// Binary spike tensors may additionally carry a [`SpikeIndex`] — a CSR view
/// of their nonzero positions that event-driven consumers walk instead of
/// re-scanning the dense buffer. Any mutable data access drops the index.
/// Neither the id nor the index participates in equality or serialization.
#[derive(Debug, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
    // Skipped by (a real) serde: a deserialized id must be freshly minted —
    // an id that bypassed `NEXT_CONTENT_ID` could collide with a live
    // tensor's and certify a false content equality to the id-keyed caches.
    // The offline serde shim derives markers only, so nothing serializes at
    // runtime either way; the attributes document the contract for a future
    // real-serde swap.
    #[serde(skip, default = "fresh_content_id")]
    content_id: u64,
    // Skipped for the same reason: an index must only ever be attached
    // through `attach_spike_index`, which validates it against the data.
    #[serde(skip)]
    spike_index: Option<Arc<SpikeIndex>>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        // A clone holds the same bytes: it keeps the content id (and the
        // spike index); only mutation re-mints.
        Self {
            shape: self.shape.clone(),
            data: self.data.clone(),
            content_id: self.content_id,
            spike_index: self.spike_index.clone(),
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        // Equality is shape + content; the id is a cache token and the index
        // is derived structure, neither is state.
        self.shape == other.shape && self.data == other.data
    }
}

impl Tensor {
    /// Internal constructor: every new buffer gets a fresh content id and no
    /// spike index.
    fn from_shape_data(shape: Shape, data: Vec<f32>) -> Self {
        Self {
            shape,
            data,
            content_id: fresh_content_id(),
            spike_index: None,
        }
    }

    /// Re-mints the content id and drops the spike index — called by every
    /// mutable data access, so a previously issued id (or index) can never
    /// describe the new contents.
    fn invalidate_content(&mut self) {
        self.content_id = fresh_content_id();
        self.spike_index = None;
    }

    // ------------------------------------------------------------------
    // Content id and spike index
    // ------------------------------------------------------------------

    /// The tensor's generation-tagged content id. Two tensors with the same
    /// id hold identical data bytes (clones keep the id; any mutable data
    /// access re-mints it), so caches can key products on ids instead of
    /// hashing operands per consult. Ids say nothing about shape — key dims
    /// separately.
    pub fn content_id(&self) -> u64 {
        // Observe the id at the moment it escapes to a cache: the audit
        // registry panics if this id ever certified different bytes.
        #[cfg(feature = "audit")]
        crate::audit::observe(self.content_id, &self.data);
        self.content_id
    }

    /// The attached CSR spike index, if any (see [`SpikeIndex`]).
    pub fn spike_index(&self) -> Option<&Arc<SpikeIndex>> {
        self.spike_index.as_ref()
    }

    /// Attaches a CSR spike index describing this tensor's nonzero structure
    /// (metadata only — the content id is untouched).
    ///
    /// # Panics
    ///
    /// Panics when the index geometry does not match the tensor (`cols` must
    /// be the last dimension, `rows * cols` the element count). Debug builds
    /// additionally verify the listed positions against the data.
    pub fn attach_spike_index(&mut self, index: Arc<SpikeIndex>) {
        assert_eq!(
            index.len(),
            self.data.len(),
            "spike index covers {} elements, tensor has {}",
            index.len(),
            self.data.len()
        );
        let last_dim = self.shape.dims().last().copied().unwrap_or(1);
        assert_eq!(
            index.cols(),
            last_dim.max(1),
            "spike index rows must span the tensor's last dimension"
        );
        debug_assert!(
            index.matches_dense(&self.data),
            "spike index diverges from the tensor contents"
        );
        self.spike_index = Some(index);
    }

    /// Builder-style [`Tensor::attach_spike_index`].
    #[must_use]
    pub fn with_spike_index(mut self, index: Arc<SpikeIndex>) -> Self {
        self.attach_spike_index(index);
        self
    }

    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::from(shape);
        let len = shape.len();
        Self::from_shape_data(shape, vec![0.0; len])
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::from(shape);
        let len = shape.len();
        Self::from_shape_data(shape, vec![value; len])
    }

    /// Creates a rank-0 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_shape_data(Shape::new(vec![]), vec![value])
    }

    /// Creates a tensor from a shape and a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] when `data.len()` differs
    /// from the element count implied by `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let shape = Shape::new(shape);
        if shape.len() != data.len() {
            return Err(TensorError::DataLengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Self::from_shape_data(shape, data))
    }

    /// Creates a tensor by calling `f` with the flat index of every element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::from(shape);
        let len = shape.len();
        let data = (0..len).map(&mut f).collect();
        Self::from_shape_data(shape, data)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Returns the dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the shape object (with stride helpers).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Returns the number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the flat row-major data mutably. Re-mints the content id and
    /// drops any spike index — the caller may write anything.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.invalidate_content();
        &mut self.data
    }

    /// Consumes the tensor, returning its flat row-major data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds. Use [`Tensor::try_get`] for a
    /// fallible variant.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.try_get(index).expect("tensor index out of bounds")
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn try_get(&self, index: &[usize]) -> Result<f32> {
        let offset = self.shape.offset(index)?;
        Ok(self.data[offset])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds. Use [`Tensor::try_set`] for a
    /// fallible variant.
    pub fn set(&mut self, index: &[usize], value: f32) {
        self.try_set(index, value)
            .expect("tensor index out of bounds");
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn try_set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let offset = self.shape.offset(index)?;
        self.invalidate_content();
        self.data[offset] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a copy of the tensor with a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when the element counts
    /// differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        self.clone().into_reshaped(shape)
    }

    /// Consumes the tensor, returning it with a new shape (no copy of data).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when the element counts
    /// differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Result<Self> {
        let new_shape = Shape::from(shape);
        if new_shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: new_shape.len(),
            });
        }
        Ok(Self {
            shape: new_shape,
            data: self.data,
            // The bytes are untouched: a reshape keeps the content id (keys
            // that must distinguish shapes absorb dims separately). The
            // index describes last-dimension rows, which a reshape changes,
            // so it does not survive.
            content_id: self.content_id,
            spike_index: None,
        })
    }

    /// Returns a copy flattened to one dimension.
    pub fn flatten(&self) -> Self {
        Self {
            shape: Shape::new(vec![self.data.len()]),
            data: self.data.clone(),
            content_id: self.content_id,
            spike_index: None,
        }
    }

    // ------------------------------------------------------------------
    // Element-wise maps and arithmetic
    // ------------------------------------------------------------------

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        Self::from_shape_data(
            self.shape.clone(),
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        self.invalidate_content();
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors element-wise through `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip_map(&self, other: &Self, mut f: impl FnMut(f32, f32) -> f32) -> Result<Self> {
        self.check_same_shape(other)?;
        Ok(Self::from_shape_data(
            self.shape.clone(),
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        ))
    }

    /// Element-wise sum of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add_assign(&mut self, other: &Self) -> Result<()> {
        self.check_same_shape(other)?;
        self.invalidate_content();
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `scale * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Self, scale: f32) -> Result<()> {
        self.check_same_shape(other)?;
        self.invalidate_content();
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns `self + scalar`.
    pub fn add_scalar(&self, scalar: f32) -> Self {
        self.map(|v| v + scalar)
    }

    /// Returns `self * scalar`.
    pub fn mul_scalar(&self, scalar: f32) -> Self {
        self.map(|v| v * scalar)
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_inplace(&mut self, scalar: f32) {
        self.invalidate_content();
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.invalidate_content();
        for v in &mut self.data {
            *v = value;
        }
    }

    // ------------------------------------------------------------------
    // Batch (axis-0) helpers
    // ------------------------------------------------------------------

    /// Returns the sub-tensor `self[start..end]` along the first axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for scalars or when
    /// `start > end` or `end` exceeds the first-axis extent.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Result<Self> {
        if self.ndim() == 0 {
            return Err(TensorError::InvalidArgument {
                reason: "cannot slice a scalar tensor".into(),
            });
        }
        let dim0 = self.shape.dim(0);
        if start > end || end > dim0 {
            return Err(TensorError::InvalidArgument {
                reason: format!("slice range {start}..{end} out of bounds for axis of size {dim0}"),
            });
        }
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        let data = self.data[start * inner..end * inner].to_vec();
        Ok(Self::from_shape_data(Shape::new(dims), data))
    }

    /// Returns the `i`-th sub-tensor along the first axis (with that axis
    /// removed).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for scalars or out-of-range
    /// indices.
    pub fn index_axis0(&self, i: usize) -> Result<Self> {
        let sliced = self.slice_axis0(i, i + 1)?;
        let dims = self.shape.dims()[1..].to_vec();
        sliced.into_reshaped(&dims)
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `items` is empty and
    /// [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn stack_axis0(items: &[Self]) -> Result<Self> {
        let first = items.first().ok_or_else(|| TensorError::InvalidArgument {
            reason: "cannot stack an empty list of tensors".into(),
        })?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            first.check_same_shape(item)?;
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape());
        Ok(Self::from_shape_data(Shape::new(dims), data))
    }

    /// Concatenates tensors along the existing first axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `items` is empty or the
    /// trailing dimensions disagree.
    pub fn concat_axis0(items: &[Self]) -> Result<Self> {
        let first = items.first().ok_or_else(|| TensorError::InvalidArgument {
            reason: "cannot concatenate an empty list of tensors".into(),
        })?;
        if first.ndim() == 0 {
            return Err(TensorError::InvalidArgument {
                reason: "cannot concatenate scalar tensors".into(),
            });
        }
        let trailing = &first.shape()[1..];
        let mut dim0 = 0usize;
        let mut data = Vec::new();
        for item in items {
            if item.ndim() == 0 || &item.shape()[1..] != trailing {
                return Err(TensorError::InvalidArgument {
                    reason: format!(
                        "cannot concatenate shapes {:?} and {:?} along axis 0",
                        first.shape(),
                        item.shape()
                    ),
                });
            }
            dim0 += item.shape()[0];
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![dim0];
        dims.extend_from_slice(trailing);
        Ok(Self::from_shape_data(Shape::new(dims), data))
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn check_same_shape(&self, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    /// Returns an empty rank-1 tensor with zero elements.
    fn default() -> Self {
        Self::from_shape_data(Shape::new(vec![0]), Vec::new())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{}, {}, ... {} elements ...])",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_contents() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).get(&[]), 7.0);
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![2, 2], vec![1.0; 3]),
            Err(TensorError::DataLengthMismatch { .. })
        ));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
        assert_eq!(t.data()[5], 5.0);
        assert!(t.try_get(&[2, 0]).is_err());
        assert!(t.try_set(&[0, 3], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data_and_validates_count() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
        assert_eq!(t.flatten().shape(), &[6]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
        assert_eq!(a.mul_scalar(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn inplace_operations() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![3.0, 4.0]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.add_scaled_assign(&b, -1.0).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.scale_inplace(3.0);
        assert_eq!(a.data(), &[3.0, 6.0]);
        a.fill(0.5);
        assert_eq!(a.data(), &[0.5, 0.5]);
        a.map_inplace(|v| v + 1.0);
        assert_eq!(a.data(), &[1.5, 1.5]);
    }

    #[test]
    fn slice_and_index_axis0() {
        let t = Tensor::from_vec(vec![3, 2], (0..6).map(|i| i as f32).collect()).unwrap();
        let s = t.slice_axis0(1, 3).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 3.0, 4.0, 5.0]);
        let row = t.index_axis0(2).unwrap();
        assert_eq!(row.shape(), &[2]);
        assert_eq!(row.data(), &[4.0, 5.0]);
        assert!(t.slice_axis0(2, 5).is_err());
        assert!(Tensor::scalar(1.0).slice_axis0(0, 1).is_err());
    }

    #[test]
    fn stack_and_concat_axis0() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![3.0, 4.0]).unwrap();
        let stacked = Tensor::stack_axis0(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(stacked.shape(), &[2, 2]);
        assert_eq!(stacked.data(), &[1.0, 2.0, 3.0, 4.0]);

        let c = Tensor::from_vec(vec![1, 2], vec![5.0, 6.0]).unwrap();
        let cat = Tensor::concat_axis0(&[stacked, c]).unwrap();
        assert_eq!(cat.shape(), &[3, 2]);
        assert_eq!(cat.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);

        assert!(Tensor::stack_axis0(&[]).is_err());
        let d = Tensor::zeros(&[3]);
        assert!(Tensor::stack_axis0(&[a, d]).is_err());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.to_string().contains("shape"));
        let big = Tensor::zeros(&[100]);
        assert!(big.to_string().contains("elements"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let json = serde_json_like(&t);
        assert!(json.contains("shape"));
    }

    // serde_json is not an allowed dependency; this only checks that the
    // Serialize impl is derivable and callable through a trivial serializer.
    fn serde_json_like(t: &Tensor) -> String {
        format!("shape={:?} data={:?}", t.shape(), t.data())
    }
}
