//! Linear-algebra and convolution kernels.
//!
//! All functions operate on dense row-major [`Tensor`]s. Convolutions use the
//! classic `im2col` lowering so that the heavy lifting is a single matrix
//! multiplication — exactly the lowering a weight-stationary systolic array
//! executes, which lets the systolic simulator replace [`matmul`] with its
//! fault-injecting equivalent.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution (or pooling) over `[N, C, H, W]` inputs.
///
/// # Example
///
/// ```
/// use falvolt_tensor::ops::Conv2dDims;
///
/// # fn main() -> Result<(), falvolt_tensor::TensorError> {
/// let dims = Conv2dDims::new(1, 3, 8, 16, 16, 3, 1, 1)?;
/// assert_eq!(dims.out_h, 16);
/// assert_eq!(dims.out_w, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dDims {
    /// Batch size `N`.
    pub batch: usize,
    /// Input channels `C`.
    pub in_channels: usize,
    /// Output channels `O`.
    pub out_channels: usize,
    /// Input height `H`.
    pub in_h: usize,
    /// Input width `W`.
    pub in_w: usize,
    /// Kernel size (square kernels only).
    pub kernel: usize,
    /// Stride (same along both axes).
    pub stride: usize,
    /// Zero padding (same along both axes).
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dDims {
    /// Computes the full convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvConfig`] when the kernel does not fit
    /// into the padded input or when `stride == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: usize,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidConvConfig {
                reason: "stride must be non-zero".into(),
            });
        }
        if kernel == 0 {
            return Err(TensorError::InvalidConvConfig {
                reason: "kernel size must be non-zero".into(),
            });
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if kernel > padded_h || kernel > padded_w {
            return Err(TensorError::InvalidConvConfig {
                reason: format!("kernel {kernel} larger than padded input {padded_h}x{padded_w}"),
            });
        }
        let out_h = (padded_h - kernel) / stride + 1;
        let out_w = (padded_w - kernel) / stride + 1;
        Ok(Self {
            batch,
            in_channels,
            out_channels,
            in_h,
            in_w,
            kernel,
            stride,
            padding,
            out_h,
            out_w,
        })
    }

    /// Number of rows of the `im2col` matrix: `N * out_h * out_w`.
    pub fn col_rows(&self) -> usize {
        self.batch * self.out_h * self.out_w
    }

    /// Number of columns of the `im2col` matrix: `C * k * k`.
    pub fn col_cols(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// The raw geometry consumed by the `im2col` kernel layer.
    pub fn geom(&self) -> crate::kernels::Im2colGeom {
        crate::kernels::Im2colGeom {
            batch: self.batch,
            channels: self.in_channels,
            in_h: self.in_h,
            in_w: self.in_w,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            out_h: self.out_h,
            out_w: self.out_w,
        }
    }
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// Computes the matrix product `a @ b` of two rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use falvolt_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), falvolt_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// let b = Tensor::from_vec(vec![3, 1], vec![1.0, 1.0, 1.0])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.data(), &[6.0, 15.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    // All dense products run through the shared blocked-parallel kernel
    // layer ([`MatmulHint::Dense`] pins the dispatcher to it).
    matmul_hinted(a, b, crate::kernels::MatmulHint::Dense)
}

/// Structure-aware matrix product: like [`matmul`], but routes through the
/// kernel dispatcher so sparse/binary left operands (spike activations) take
/// the event-driven gather-accumulate kernel. [`MatmulHint::Dense`]
/// reproduces [`matmul`] exactly.
///
/// [`MatmulHint::Dense`]: crate::kernels::MatmulHint::Dense
///
/// # Errors
///
/// Returns the same errors as [`matmul`].
pub fn matmul_hinted(a: &Tensor, b: &Tensor, hint: crate::kernels::MatmulHint) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a)?;
    let (k2, n) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    // A spike tensor's CSR index turns the structure probe into an O(1)
    // density read and the sparse kernel into a pure index walk; the
    // dispatcher produces bit-identical results either way.
    let index = a
        .spike_index()
        .filter(|ix| ix.rows() == m && ix.cols() == k)
        .map(|ix| ix.as_ref());
    let out = crate::kernels::matmul_dispatch_indexed(a.data(), index, b.data(), m, k, n, hint);
    Tensor::from_vec(vec![m, n], out)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = as_matrix_dims(a)?;
    let data = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = data[i * n + j];
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

impl Tensor {
    /// Matrix product of two rank-2 tensors; see [`matmul`].
    ///
    /// # Errors
    ///
    /// Returns the same errors as the free function [`matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Transpose of a rank-2 tensor; see [`transpose2d`].
    ///
    /// # Errors
    ///
    /// Returns the same errors as the free function [`transpose2d`].
    pub fn transposed(&self) -> Result<Tensor> {
        transpose2d(self)
    }
}

fn as_matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

// ---------------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------------

/// Lowers an `[N, C, H, W]` input into the `im2col` matrix
/// `[N * out_h * out_w, C * k * k]` described by `dims`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the input shape disagrees with
/// `dims`.
pub fn im2col(input: &Tensor, dims: &Conv2dDims) -> Result<Tensor> {
    check_input_shape(input, dims)?;
    let geom = dims.geom();
    let mut out = vec![0.0f32; dims.col_rows() * dims.col_cols()];
    crate::kernels::im2col_into(input.data(), &mut out, &geom);
    Tensor::from_vec(vec![dims.col_rows(), dims.col_cols()], out)
}

/// Structure-aware im2col lowering: when `profile` reports an event-sparse
/// input (spike frames), scatters only the nonzero pixels
/// ([`crate::kernels::im2col_sparse_into`]); otherwise performs the dense
/// copy. Both paths produce the identical matrix.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the input shape disagrees with
/// `dims`.
pub fn im2col_with_profile(
    input: &Tensor,
    dims: &Conv2dDims,
    profile: crate::kernels::OperandProfile,
) -> Result<Tensor> {
    check_input_shape(input, dims)?;
    // A spike frame carrying a CSR index lowers as an index transform: the
    // input's spike positions are mapped straight to their window cells and
    // the produced matrix carries its own index, so the downstream product
    // (and the systolic executor's event walk) never re-probes. The dense
    // bytes are identical to the probe-based lowerings.
    if let Some(index) = input
        .spike_index()
        .filter(|ix| ix.rows() == dims.batch * dims.in_channels * dims.in_h)
    {
        let geom = dims.geom();
        let (out, out_index) = crate::kernels::im2col_indexed(index, &geom);
        let cols = Tensor::from_vec(vec![dims.col_rows(), dims.col_cols()], out)?;
        if dims.col_cols() > 0 {
            return Ok(cols.with_spike_index(std::sync::Arc::new(out_index)));
        }
        return Ok(cols);
    }
    let geom = dims.geom();
    let mut out = vec![0.0f32; dims.col_rows() * dims.col_cols()];
    if profile.is_event_sparse() {
        crate::kernels::im2col_sparse_into(input.data(), &mut out, &geom);
    } else {
        crate::kernels::im2col_into(input.data(), &mut out, &geom);
    }
    Tensor::from_vec(vec![dims.col_rows(), dims.col_cols()], out)
}

/// Scatters an `im2col`-shaped gradient back onto the `[N, C, H, W]` input
/// layout (the adjoint of [`im2col`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` does not have the
/// `[N * out_h * out_w, C * k * k]` shape implied by `dims`.
pub fn col2im(cols: &Tensor, dims: &Conv2dDims) -> Result<Tensor> {
    if cols.shape() != [dims.col_rows(), dims.col_cols()] {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().to_vec(),
            right: vec![dims.col_rows(), dims.col_cols()],
        });
    }
    let (n, c, h, w) = (dims.batch, dims.in_channels, dims.in_h, dims.in_w);
    let k = dims.kernel;
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    let ncols = dims.col_cols();
    for b in 0..n {
        for oy in 0..dims.out_h {
            for ox in 0..dims.out_w {
                let row = (b * dims.out_h + oy) * dims.out_w + ox;
                let base = row * ncols;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * dims.stride + ky) as isize - dims.padding as isize;
                        for kx in 0..k {
                            let ix = (ox * dims.stride + kx) as isize - dims.padding as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                let col = (ch * k + ky) * k + kx;
                                out[((b * c + ch) * h + iy as usize) * w + ix as usize] +=
                                    data[base + col];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![n, c, h, w], out)
}

fn check_input_shape(input: &Tensor, dims: &Conv2dDims) -> Result<()> {
    let expected = [dims.batch, dims.in_channels, dims.in_h, dims.in_w];
    if input.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().to_vec(),
            right: expected.to_vec(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Convolution built on im2col + matmul
// ---------------------------------------------------------------------------

/// Reorders a `[N * out_h * out_w, O]` matrix-multiply result into the
/// `[N, O, out_h, out_w]` feature-map layout.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `rows` does not have the shape
/// implied by `dims`.
pub fn rows_to_feature_map(rows: &Tensor, dims: &Conv2dDims) -> Result<Tensor> {
    let expected = [dims.col_rows(), dims.out_channels];
    if rows.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: rows.shape().to_vec(),
            right: expected.to_vec(),
        });
    }
    let (n, o, oh, ow) = (dims.batch, dims.out_channels, dims.out_h, dims.out_w);
    let data = rows.data();
    let mut out = vec![0.0f32; n * o * oh * ow];
    for b in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = (b * oh + y) * ow + x;
                for ch in 0..o {
                    out[((b * o + ch) * oh + y) * ow + x] = data[row * o + ch];
                }
            }
        }
    }
    Tensor::from_vec(vec![n, o, oh, ow], out)
}

/// Reorders a `[N, O, out_h, out_w]` feature map into the row layout
/// `[N * out_h * out_w, O]` (the adjoint of [`rows_to_feature_map`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `fm` does not have the shape
/// implied by `dims`.
pub fn feature_map_to_rows(fm: &Tensor, dims: &Conv2dDims) -> Result<Tensor> {
    let expected = [dims.batch, dims.out_channels, dims.out_h, dims.out_w];
    if fm.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: fm.shape().to_vec(),
            right: expected.to_vec(),
        });
    }
    let (n, o, oh, ow) = (dims.batch, dims.out_channels, dims.out_h, dims.out_w);
    let data = fm.data();
    let mut out = vec![0.0f32; n * o * oh * ow];
    for b in 0..n {
        for ch in 0..o {
            for y in 0..oh {
                for x in 0..ow {
                    let row = (b * oh + y) * ow + x;
                    out[row * o + ch] = data[((b * o + ch) * oh + y) * ow + x];
                }
            }
        }
    }
    Tensor::from_vec(vec![dims.col_rows(), o], out)
}

/// Direct 2-D convolution forward pass: `input [N,C,H,W]`, `weight [O, C*k*k]`
/// and optional `bias [O]`, producing `[N, O, out_h, out_w]`.
///
/// # Errors
///
/// Propagates shape errors from the underlying `im2col`/`matmul` steps.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    dims: &Conv2dDims,
) -> Result<Tensor> {
    let cols = im2col(input, dims)?;
    let w_t = transpose2d(weight)?;
    let rows = matmul(&cols, &w_t)?;
    let mut fm = rows_to_feature_map(&rows, dims)?;
    if let Some(bias) = bias {
        add_channel_bias(&mut fm, bias)?;
    }
    Ok(fm)
}

/// Adds a per-channel bias `[O]` onto a `[N, O, H, W]` feature map in place.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the bias length differs from
/// the channel count.
pub fn add_channel_bias(fm: &mut Tensor, bias: &Tensor) -> Result<()> {
    if fm.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: fm.ndim(),
        });
    }
    let (n, o, h, w) = (fm.shape()[0], fm.shape()[1], fm.shape()[2], fm.shape()[3]);
    if bias.shape() != [o] {
        return Err(TensorError::ShapeMismatch {
            left: bias.shape().to_vec(),
            right: vec![o],
        });
    }
    let bias_data = bias.data().to_vec();
    let data = fm.data_mut();
    for b in 0..n {
        for (ch, &bias_ch) in bias_data.iter().enumerate() {
            let base = ((b * o) + ch) * h * w;
            for v in &mut data[base..base + h * w] {
                *v += bias_ch;
            }
        }
    }
    Ok(())
}

/// Gradients of a 2-D convolution.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the weight, `[O, C*k*k]`.
    pub grad_weight: Tensor,
    /// Gradient w.r.t. the bias, `[O]`.
    pub grad_bias: Tensor,
}

/// Backward pass of [`conv2d_forward`].
///
/// `grad_output` has shape `[N, O, out_h, out_w]`; `cols` is the `im2col`
/// matrix saved from the forward pass.
///
/// # Errors
///
/// Propagates shape errors from the underlying matrix operations.
pub fn conv2d_backward(
    grad_output: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    dims: &Conv2dDims,
) -> Result<Conv2dGrads> {
    let grad_rows = feature_map_to_rows(grad_output, dims)?; // [R, O]
    let grad_rows_t = transpose2d(&grad_rows)?; // [O, R]
    let grad_weight = matmul(&grad_rows_t, cols)?; // [O, C*k*k]
    let grad_cols = matmul(&grad_rows, weight)?; // [R, C*k*k]
    let grad_input = col2im(&grad_cols, dims)?;
    // Bias gradient: sum of grad_output over batch and spatial positions.
    let o = dims.out_channels;
    let mut grad_bias = vec![0.0f32; o];
    let rows = grad_rows.data();
    for r in 0..dims.col_rows() {
        for ch in 0..o {
            grad_bias[ch] += rows[r * o + ch];
        }
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias: Tensor::from_vec(vec![o], grad_bias)?,
    })
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

/// Average-pools a `[N, C, H, W]` tensor with a square window and equal
/// stride (`kernel == stride`, non-overlapping), producing
/// `[N, C, H/kernel, W/kernel]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidConvConfig`] when the spatial extents are not
/// divisible by `kernel`.
pub fn avg_pool2d_forward(input: &Tensor, kernel: usize) -> Result<Tensor> {
    let (n, c, h, w) = as_nchw(input)?;
    if kernel == 0 || h % kernel != 0 || w % kernel != 0 {
        return Err(TensorError::InvalidConvConfig {
            reason: format!("pool kernel {kernel} does not evenly divide {h}x{w}"),
        });
    }
    let oh = h / kernel;
    let ow = w / kernel;
    let scale = 1.0 / (kernel * kernel) as f32;
    let data = input.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * kernel + ky;
                            let ix = ox * kernel + kx;
                            acc += data[((b * c + ch) * h + iy) * w + ix];
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = acc * scale;
                }
            }
        }
    }
    Tensor::from_vec(vec![n, c, oh, ow], out)
}

/// Backward pass of [`avg_pool2d_forward`]: spreads each output gradient
/// uniformly over its pooling window.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `grad_output` does not match
/// the pooled shape of `input_shape`.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    input_shape: &[usize],
    kernel: usize,
) -> Result<Tensor> {
    if input_shape.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_shape.len(),
        });
    }
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let oh = h / kernel;
    let ow = w / kernel;
    if grad_output.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_output.shape().to_vec(),
            right: vec![n, c, oh, ow],
        });
    }
    let scale = 1.0 / (kernel * kernel) as f32;
    let go = grad_output.data();
    let mut out = vec![0.0f32; n * c * h * w];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[((b * c + ch) * oh + oy) * ow + ox] * scale;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * kernel + ky;
                            let ix = ox * kernel + kx;
                            out[((b * c + ch) * h + iy) * w + ix] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![n, c, h, w], out)
}

/// Max-pools a `[N, C, H, W]` tensor, returning the pooled tensor and the
/// flat argmax index of every window (used by the backward pass).
///
/// # Errors
///
/// Returns [`TensorError::InvalidConvConfig`] when the spatial extents are not
/// divisible by `kernel`.
pub fn max_pool2d_forward(input: &Tensor, kernel: usize) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = as_nchw(input)?;
    if kernel == 0 || h % kernel != 0 || w % kernel != 0 {
        return Err(TensorError::InvalidConvConfig {
            reason: format!("pool kernel {kernel} does not evenly divide {h}x{w}"),
        });
    }
    let oh = h / kernel;
    let ow = w / kernel;
    let data = input.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * kernel + ky;
                            let ix = ox * kernel + kx;
                            let idx = ((b * c + ch) * h + iy) * w + ix;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((b * c + ch) * oh + oy) * ow + ox;
                    out[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
    }
    Ok((Tensor::from_vec(vec![n, c, oh, ow], out)?, argmax))
}

/// Backward pass of [`max_pool2d_forward`]: routes each output gradient to the
/// input position recorded in `argmax`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when `argmax` length differs from
/// `grad_output`.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    input_shape: &[usize],
    argmax: &[usize],
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::InvalidArgument {
            reason: "argmax length must match grad_output".into(),
        });
    }
    let total: usize = input_shape.iter().product();
    let mut out = vec![0.0f32; total];
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        out[idx] += g;
    }
    Tensor::from_vec(input_shape.to_vec(), out)
}

fn as_nchw(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.ndim(),
        });
    }
    Ok((t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        approx_eq(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_validates_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = transpose2d(&a).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), 6.0);
        let tt = transpose2d(&t).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn conv_dims_validate() {
        assert!(Conv2dDims::new(1, 1, 1, 4, 4, 3, 1, 0).is_ok());
        assert!(Conv2dDims::new(1, 1, 1, 2, 2, 3, 1, 0).is_err());
        assert!(Conv2dDims::new(1, 1, 1, 4, 4, 3, 0, 0).is_err());
        assert!(Conv2dDims::new(1, 1, 1, 4, 4, 0, 1, 0).is_err());
        let d = Conv2dDims::new(2, 3, 8, 16, 16, 3, 1, 1).unwrap();
        assert_eq!((d.out_h, d.out_w), (16, 16));
        assert_eq!(d.col_rows(), 2 * 16 * 16);
        assert_eq!(d.col_cols(), 3 * 9);
    }

    #[test]
    fn identity_kernel_convolution_reproduces_input() {
        // 1x1 kernel with weight 1.0 must reproduce the input exactly.
        let dims = Conv2dDims::new(1, 1, 1, 3, 3, 1, 1, 0).unwrap();
        let input =
            Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let weight = Tensor::ones(&[1, 1]);
        let out = conv2d_forward(&input, &weight, None, &dims).unwrap();
        approx_eq(out.data(), input.data());
    }

    #[test]
    fn conv_forward_matches_manual_3x3() {
        // Single 3x3 all-ones kernel, no padding: output is the sum of the
        // 3x3 neighbourhood.
        let dims = Conv2dDims::new(1, 1, 1, 3, 3, 3, 1, 0).unwrap();
        let input =
            Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let weight = Tensor::ones(&[1, 9]);
        let out = conv2d_forward(&input, &weight, None, &dims).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        approx_eq(out.data(), &[45.0]);
    }

    #[test]
    fn conv_bias_is_added_per_channel() {
        let dims = Conv2dDims::new(1, 1, 2, 2, 2, 1, 1, 0).unwrap();
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let weight = Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]).unwrap();
        let bias = Tensor::from_vec(vec![2], vec![10.0, 20.0]).unwrap();
        let out = conv2d_forward(&input, &weight, Some(&bias), &dims).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2, 2]);
        approx_eq(
            out.data(),
            &[11.0, 11.0, 11.0, 11.0, 22.0, 22.0, 22.0, 22.0],
        );
    }

    #[test]
    fn conv_backward_weight_gradient_matches_finite_difference() {
        let dims = Conv2dDims::new(1, 1, 1, 3, 3, 2, 1, 0).unwrap();
        let input = Tensor::from_fn(&[1, 1, 3, 3], |i| (i as f32 * 0.37).sin());
        let weight = Tensor::from_fn(&[1, 4], |i| 0.1 * (i as f32 + 1.0));
        let cols = im2col(&input, &dims).unwrap();

        // Loss = sum of outputs; analytic gradient.
        let grad_output = Tensor::ones(&[1, 1, 2, 2]);
        let grads = conv2d_backward(&grad_output, &cols, &weight, &dims).unwrap();

        // Finite differences on each weight element.
        let eps = 1e-3;
        for wi in 0..4 {
            let mut wp = weight.clone();
            wp.data_mut()[wi] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[wi] -= eps;
            let lp: f32 = conv2d_forward(&input, &wp, None, &dims)
                .unwrap()
                .data()
                .iter()
                .sum();
            let lm: f32 = conv2d_forward(&input, &wm, None, &dims)
                .unwrap()
                .data()
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.grad_weight.data()[wi];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "weight grad mismatch at {wi}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_backward_input_gradient_matches_finite_difference() {
        let dims = Conv2dDims::new(1, 1, 1, 3, 3, 2, 1, 0).unwrap();
        let input = Tensor::from_fn(&[1, 1, 3, 3], |i| (i as f32 * 0.31).cos());
        let weight = Tensor::from_fn(&[1, 4], |i| 0.2 * (i as f32 + 1.0));
        let cols = im2col(&input, &dims).unwrap();
        let grad_output = Tensor::ones(&[1, 1, 2, 2]);
        let grads = conv2d_backward(&grad_output, &cols, &weight, &dims).unwrap();

        let eps = 1e-3;
        for xi in 0..9 {
            let mut xp = input.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = input.clone();
            xm.data_mut()[xi] -= eps;
            let lp: f32 = conv2d_forward(&xp, &weight, None, &dims)
                .unwrap()
                .data()
                .iter()
                .sum();
            let lm: f32 = conv2d_forward(&xm, &weight, None, &dims)
                .unwrap()
                .data()
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.grad_input.data()[xi];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad mismatch at {xi}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let dims = Conv2dDims::new(2, 1, 3, 4, 4, 3, 1, 1).unwrap();
        let input = Tensor::ones(&[2, 1, 4, 4]);
        let weight = Tensor::zeros(&[3, 9]);
        let cols = im2col(&input, &dims).unwrap();
        let grad_output = Tensor::ones(&[2, 3, 4, 4]);
        let grads = conv2d_backward(&grad_output, &cols, &weight, &dims).unwrap();
        // Each channel receives N * out_h * out_w = 2*4*4 = 32 unit gradients.
        approx_eq(grads.grad_bias.data(), &[32.0, 32.0, 32.0]);
    }

    #[test]
    fn padding_produces_same_spatial_size() {
        let dims = Conv2dDims::new(1, 2, 4, 8, 8, 3, 1, 1).unwrap();
        let input = Tensor::ones(&[1, 2, 8, 8]);
        let weight = Tensor::ones(&[4, 18]);
        let out = conv2d_forward(&input, &weight, None, &dims).unwrap();
        assert_eq!(out.shape(), &[1, 4, 8, 8]);
        // Centre pixels see the full 3x3x2 = 18 ones; corners see 2x2x2 = 8.
        assert_eq!(out.get(&[0, 0, 4, 4]), 18.0);
        assert_eq!(out.get(&[0, 0, 0, 0]), 8.0);
    }

    #[test]
    fn im2col_col2im_are_adjoint_on_counts() {
        // col2im(im2col(ones)) counts how many windows each input position
        // participates in; with stride 1, kernel 2 on 3x3, the centre is hit
        // 4 times.
        let dims = Conv2dDims::new(1, 1, 1, 3, 3, 2, 1, 0).unwrap();
        let ones = Tensor::ones(&[1, 1, 3, 3]);
        let cols = im2col(&ones, &dims).unwrap();
        let counts = col2im(&cols, &dims).unwrap();
        approx_eq(
            counts.data(),
            &[1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0],
        );
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = avg_pool2d_forward(&input, 2).unwrap();
        approx_eq(out.data(), &[2.5]);
        let grad = avg_pool2d_backward(&Tensor::ones(&[1, 1, 1, 1]), &[1, 1, 2, 2], 2).unwrap();
        approx_eq(grad.data(), &[0.25; 4]);
        assert!(avg_pool2d_forward(&Tensor::ones(&[1, 1, 3, 3]), 2).is_err());
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 4.0]).unwrap();
        let (out, argmax) = max_pool2d_forward(&input, 2).unwrap();
        approx_eq(out.data(), &[5.0]);
        assert_eq!(argmax, vec![1]);
        let grad =
            max_pool2d_backward(&Tensor::ones(&[1, 1, 1, 1]), &[1, 1, 2, 2], &argmax).unwrap();
        approx_eq(grad.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn feature_map_row_roundtrip() {
        let dims = Conv2dDims::new(2, 1, 3, 4, 4, 3, 1, 1).unwrap();
        let fm = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let rows = feature_map_to_rows(&fm, &dims).unwrap();
        let back = rows_to_feature_map(&rows, &dims).unwrap();
        assert_eq!(back, fm);
    }
}
