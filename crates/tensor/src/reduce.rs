//! Reductions and classification helpers.

use crate::{Result, Tensor, TensorError};

/// Returns the sum of all elements.
///
/// # Example
///
/// ```
/// use falvolt_tensor::{reduce, Tensor};
///
/// let t = Tensor::ones(&[2, 3]);
/// assert_eq!(reduce::sum(&t), 6.0);
/// ```
pub fn sum(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// Returns the arithmetic mean of all elements (`0.0` for empty tensors).
pub fn mean(t: &Tensor) -> f32 {
    if t.is_empty() {
        0.0
    } else {
        sum(t) / t.len() as f32
    }
}

/// Returns the maximum element (`f32::NEG_INFINITY` for empty tensors).
pub fn max(t: &Tensor) -> f32 {
    t.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Returns the minimum element (`f32::INFINITY` for empty tensors).
pub fn min(t: &Tensor) -> f32 {
    t.data().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Sums a `[N, M]` matrix over its rows, producing `[M]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn sum_axis0(t: &Tensor) -> Result<Tensor> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        });
    }
    let (n, m) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; m];
    for i in 0..n {
        let row = &t.data()[i * m..(i + 1) * m];
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    Tensor::from_vec(vec![m], out)
}

/// Averages a `[N, M]` matrix over its rows, producing `[M]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn mean_axis0(t: &Tensor) -> Result<Tensor> {
    let n = if t.ndim() == 2 { t.shape()[0] } else { 0 };
    let mut s = sum_axis0(t)?;
    if n > 0 {
        s.scale_inplace(1.0 / n as f32);
    }
    Ok(s)
}

/// Returns the per-row argmax of a `[N, M]` matrix.
///
/// Ties resolve to the lowest index, matching the behaviour expected of a
/// classifier readout.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        });
    }
    let (n, m) = (t.shape()[0], t.shape()[1]);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let row = &t.data()[i * m..(i + 1) * m];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Builds a `[N, classes]` one-hot matrix from class labels.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when any label is out of range.
pub fn one_hot(labels: &[usize], classes: usize) -> Result<Tensor> {
    let mut out = vec![0.0f32; labels.len() * classes];
    for (i, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(TensorError::InvalidArgument {
                reason: format!("label {label} out of range for {classes} classes"),
            });
        }
        out[i * classes + label] = 1.0;
    }
    Tensor::from_vec(vec![labels.len(), classes], out)
}

/// Fraction of rows of `scores` (shape `[N, classes]`) whose argmax equals the
/// corresponding label.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when the number of labels differs
/// from the number of rows.
pub fn classification_accuracy(scores: &Tensor, labels: &[usize]) -> Result<f32> {
    let predictions = argmax_rows(scores)?;
    if predictions.len() != labels.len() {
        return Err(TensorError::InvalidArgument {
            reason: format!(
                "{} predictions but {} labels",
                predictions.len(),
                labels.len()
            ),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_vec(vec![4], vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(sum(&t), 2.5);
        assert_eq!(mean(&t), 0.625);
        assert_eq!(max(&t), 3.0);
        assert_eq!(min(&t), -2.0);
        let empty = Tensor::zeros(&[0]);
        assert_eq!(mean(&empty), 0.0);
    }

    #[test]
    fn axis0_reductions() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(sum_axis0(&t).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(mean_axis0(&t).unwrap().data(), &[2.5, 3.5, 4.5]);
        assert!(sum_axis0(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn argmax_rows_picks_first_on_ties() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 3.0, 3.0, 0.0, -1.0, 2.0]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 2]);
    }

    #[test]
    fn one_hot_encodes_and_validates() {
        let t = one_hot(&[0, 2], 3).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn accuracy_counts_matches() {
        let scores = Tensor::from_vec(vec![3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        let acc = classification_accuracy(&scores, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert!(classification_accuracy(&scores, &[0, 1]).is_err());
    }
}
