//! # falvolt-tensor
//!
//! Dense `f32` tensor and linear-algebra substrate for the FalVolt
//! systolic-array SNN reproduction.
//!
//! The crate deliberately implements only what the rest of the workspace
//! needs, from scratch and without external array libraries:
//!
//! * an owned, row-major, dynamically shaped [`Tensor`],
//! * element-wise arithmetic and mapping helpers,
//! * 2-D matrix multiplication and transposition ([`ops`]),
//! * `im2col`/`col2im` and convolution / pooling kernels used by the SNN
//!   layers ([`ops`]),
//! * reductions and classification helpers ([`reduce`]),
//! * random initializers ([`init`]).
//!
//! # Example
//!
//! ```
//! use falvolt_tensor::Tensor;
//!
//! # fn main() -> Result<(), falvolt_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::ones(&[3, 2]);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.get(&[0, 0]), 6.0);
//! # Ok(())
//! # }
//! ```

// `deny` instead of `forbid`: the `simd` module scopes an allow around the
// one unsafe pattern in the workspace — calling `#[target_feature]`
// trampolines after runtime CPU detection. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

#[cfg(feature = "audit")]
pub mod audit;
pub mod cancel;
pub mod fingerprint;
pub mod init;
pub mod kernels;
pub mod ops;
pub mod reduce;
pub mod simd;
pub mod spikes;

pub use cancel::CancelToken;
pub use error::TensorError;
pub use fingerprint::Fingerprint;
pub use kernels::{MatmulHint, OperandProfile};
pub use shape::Shape;
pub use spikes::{SharedSpikeIndex, SpikeIndex};
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
