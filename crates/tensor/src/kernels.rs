//! Cache-blocked, row-parallel compute kernels.
//!
//! This module is the single execution layer behind every dense matrix
//! product in the workspace: [`crate::ops::matmul`], the convolution lowering
//! ([`crate::ops::im2col`] + matmul), the SNN `FloatBackend`, and the clean
//! path of the systolic executor all route here.
//!
//! The matmul kernel combines three classic levers:
//!
//! * **row parallelism** — output rows are independent, so the matrix is cut
//!   into row panels processed across threads (`rayon`),
//! * **k-blocking** — the reduction dimension is walked in [`KC`]-sized
//!   blocks so the active panel of `b` stays cache-resident,
//! * **register tiling** — an [`MR`]x[`NR`] accumulator tile lives in
//!   registers across the whole k-block, turning the inner loop from a
//!   load/store-bound axpy into an FMA-bound tile update.
//!
//! Accumulation visits `k` in increasing order for every output element, so
//! results differ from the naive triple loop only by floating-point
//! re-association across k-block boundaries (bounded by ~`k * eps`).

use rayon::prelude::*;

/// Rows per register tile.
pub const MR: usize = 4;
/// Columns per register tile (kept SIMD-width friendly).
pub const NR: usize = 8;
/// Reduction-dimension block size: one `KC x NR` panel of `b` is about
/// 8 KiB, comfortably L1-resident while a row panel streams through.
pub const KC: usize = 256;

/// Work threshold (in multiply-adds) below which the serial path is used;
/// spawning threads for tiny products costs more than the product.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 16;

/// Reference matrix product — the seed's straightforward `i-k-j` triple loop
/// (contiguous over `b` and `out`, zero-skip on `a`). Kept as the baseline
/// for benchmarks and property tests; use [`matmul`] everywhere else.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
    out
}

/// Cache-blocked, row-parallel matrix product `a (m x k) @ b (k x n)`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_into(a, b, &mut out, m, k, n);
    out
}

/// Cache-blocked, row-parallel matrix product accumulating into `out`
/// (`out` must be zero-initialised for a plain product).
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, m, k, n);
    assert_eq!(out.len(), m * n, "output buffer has the wrong length");
    if m == 0 || n == 0 {
        return;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || m * n * k < PARALLEL_FLOP_THRESHOLD {
        matmul_panel(a, b, out, m, k, n);
        return;
    }
    // Split output rows into per-thread panels; a few panels per thread keep
    // the queue balanced when row costs vary (e.g. sparse spike rows).
    let rows_per_panel = m.div_ceil(threads * 2).max(MR);
    out.par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, out_panel)| {
            let row0 = panel * rows_per_panel;
            let rows = out_panel.len() / n;
            matmul_panel(&a[row0 * k..(row0 + rows) * k], b, out_panel, rows, k, n);
        });
}

/// Serial blocked product of one row panel: `a_panel` is `rows x k`,
/// `out_panel` is `rows x n`.
fn matmul_panel(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < k {
        let kb_end = (kb + KC).min(k);
        let mut i = 0;
        // Full MR-row tiles, register-tiled across NR-column strips.
        while i + MR <= rows {
            row_tile(a_panel, b, out_panel, i, kb, kb_end, k, n);
            i += MR;
        }
        // Remaining rows: plain axpy walk of the same k-block.
        while i < rows {
            let a_row = &a_panel[i * k..(i + 1) * k];
            let out_row = &mut out_panel[i * n..(i + 1) * n];
            for p in kb..kb_end {
                let a_ip = a_row[p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
            i += 1;
        }
        kb = kb_end;
    }
}

/// Updates MR output rows for one k-block, walking NR-column strips with the
/// accumulator tile held in registers across the whole block.
#[allow(clippy::too_many_arguments)]
fn row_tile(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    i: usize,
    kb: usize,
    kb_end: usize,
    k: usize,
    n: usize,
) {
    let a0 = &a_panel[i * k..(i + 1) * k];
    let a1 = &a_panel[(i + 1) * k..(i + 2) * k];
    let a2 = &a_panel[(i + 2) * k..(i + 3) * k];
    let a3 = &a_panel[(i + 3) * k..(i + 4) * k];

    let mut jc = 0;
    // NR-wide strips: fixed-size array views hoist every bounds check out of
    // the p-loop and let the strip live in registers.
    while jc + NR <= n {
        let mut acc = [[0.0f32; NR]; MR];
        for p in kb..kb_end {
            let b_strip: &[f32; NR] = b[p * n + jc..p * n + jc + NR]
                .try_into()
                .expect("strip width is NR");
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (acc_row, &a_rp) in acc.iter_mut().zip(&av) {
                for (s, &b_pj) in acc_row.iter_mut().zip(b_strip) {
                    *s += a_rp * b_pj;
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let out_strip = &mut out_panel[(i + r) * n + jc..(i + r) * n + jc + NR];
            for (o, &s) in out_strip.iter_mut().zip(acc_row) {
                *o += s;
            }
        }
        jc += NR;
    }
    // Column tail (n % NR): scalar accumulators per remaining column.
    if jc < n {
        for p in kb..kb_end {
            let b_row = &b[p * n..(p + 1) * n];
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (r, &a_rp) in av.iter().enumerate() {
                if a_rp == 0.0 {
                    continue;
                }
                let out_row = &mut out_panel[(i + r) * n..(i + r) * n + n];
                for j in jc..n {
                    out_row[j] += a_rp * b_row[j];
                }
            }
        }
    }
}

fn check_dims(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs has the wrong length");
    assert_eq!(b.len(), k * n, "rhs has the wrong length");
}

// ---------------------------------------------------------------------------
// im2col
// ---------------------------------------------------------------------------

/// Geometry subset needed by the raw `im2col` kernel (mirrors
/// [`crate::ops::Conv2dDims`] without the tensor-level bookkeeping).
#[derive(Debug, Clone, Copy)]
pub struct Im2colGeom {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Im2colGeom {
    /// Rows of the lowered matrix: `batch * out_h * out_w`.
    pub fn rows(&self) -> usize {
        self.batch * self.out_h * self.out_w
    }

    /// Columns of the lowered matrix: `channels * kernel^2`.
    pub fn cols(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }
}

/// Lowers an `[N, C, H, W]` input (flat, row-major) into the im2col matrix,
/// parallelised over `(batch, out_y)` stripes.
///
/// # Panics
///
/// Panics if the buffer lengths disagree with `geom`.
pub fn im2col_into(input: &[f32], out: &mut [f32], geom: &Im2colGeom) {
    assert_eq!(
        input.len(),
        geom.batch * geom.channels * geom.in_h * geom.in_w,
        "input buffer has the wrong length"
    );
    assert_eq!(
        out.len(),
        geom.rows() * geom.cols(),
        "output buffer has the wrong length"
    );
    let stripe = geom.out_w * geom.cols();
    if stripe == 0 {
        return;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || out.len() < PARALLEL_FLOP_THRESHOLD {
        for (stripe_idx, out_stripe) in out.chunks_mut(stripe).enumerate() {
            im2col_stripe(input, out_stripe, geom, stripe_idx);
        }
    } else {
        out.par_chunks_mut(stripe)
            .enumerate()
            .for_each(|(stripe_idx, out_stripe)| {
                im2col_stripe(input, out_stripe, geom, stripe_idx);
            });
    }
}

/// Fills one `(batch, out_y)` stripe (`out_w` rows) of the im2col matrix.
fn im2col_stripe(input: &[f32], out_stripe: &mut [f32], geom: &Im2colGeom, stripe_idx: usize) {
    let (c, h, w, k) = (geom.channels, geom.in_h, geom.in_w, geom.kernel);
    let b = stripe_idx / geom.out_h;
    let oy = stripe_idx % geom.out_h;
    let cols = geom.cols();
    for ox in 0..geom.out_w {
        let row = &mut out_stripe[ox * cols..(ox + 1) * cols];
        for ch in 0..c {
            for ky in 0..k {
                let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                for kx in 0..k {
                    let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                    let col = (ch * k + ky) * k + kx;
                    row[col] = if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                        input[((b * c + ch) * h + iy as usize) * w + ix as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    fn pseudo(i: usize, salt: usize) -> f32 {
        // Deterministic, sign-mixing pattern without an RNG dependency.
        (((i * 2654435761 + salt * 40503) % 2048) as f32 - 1024.0) / 512.0
    }

    #[test]
    fn blocked_matches_naive_on_awkward_shapes() {
        // Shapes straddling every tile boundary: MR, NR and KC tails.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (16, 300, 33),
            (37, 64, 40),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| pseudo(i, 1)).collect();
            let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 2)).collect();
            let fast = matmul(&a, &b, m, k, n);
            let slow = matmul_naive(&a, &b, m, k, n);
            assert_close(&fast, &slow, 1e-5);
        }
    }

    #[test]
    fn blocked_handles_sparse_spike_rows() {
        let (m, k, n) = (9, 70, 13);
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 3) == 0) as u8 as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 3)).collect();
        assert_close(
            &matmul(&a, &b, m, k, n),
            &matmul_naive(&a, &b, m, k, n),
            1e-5,
        );
    }

    #[test]
    fn matmul_into_accumulates() {
        let (m, k, n) = (2, 3, 2);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut out = vec![10.0; m * n];
        matmul_into(&a, &b, &mut out, m, k, n);
        assert_eq!(out, vec![13.0; m * n]);
    }

    #[test]
    fn empty_dims_are_noops() {
        assert!(matmul(&[], &[], 0, 0, 5).is_empty());
        let out = matmul(&[], &[0.0; 6], 0, 2, 3);
        assert!(out.is_empty());
        let out = matmul(&[0.0; 4], &[], 2, 2, 0);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn dimension_mismatch_panics() {
        let _ = matmul(&[0.0; 5], &[0.0; 6], 2, 3, 2);
    }
}
