//! Cache-blocked, row-parallel compute kernels.
//!
//! This module is the single execution layer behind every dense matrix
//! product in the workspace: [`crate::ops::matmul`], the convolution lowering
//! ([`crate::ops::im2col`] + matmul), the SNN `FloatBackend`, and the clean
//! path of the systolic executor all route here.
//!
//! The matmul kernel combines three classic levers:
//!
//! * **row parallelism** — output rows are independent, so the matrix is cut
//!   into row panels processed across threads (`rayon`),
//! * **k-blocking** — the reduction dimension is walked in [`KC`]-sized
//!   blocks so the active panel of `b` stays cache-resident,
//! * **register tiling** — an [`MR`]x[`NR`] accumulator tile lives in
//!   registers across the whole k-block, turning the inner loop from a
//!   load/store-bound axpy into an FMA-bound tile update.
//!
//! Accumulation visits `k` in increasing order for every output element, so
//! results differ from the naive triple loop only by floating-point
//! re-association across k-block boundaries (bounded by ~`k * eps`).
//!
//! # Event-driven kernels
//!
//! Activations downstream of a spiking layer are binary `{0, 1}` tensors
//! that are mostly zero, so multiplying them through the dense kernel wastes
//! nearly all of its FLOPs. [`matmul_dispatch`] probes the left operand
//! ([`OperandProfile`], optionally short-circuited by a caller-supplied
//! [`MatmulHint`]) and routes products whose lhs density is at most
//! [`sparse_density_cutoff`] (ISA-aware: [`SPARSE_DENSITY_CUTOFF`] under the
//! scalar reference kernels, [`SPARSE_DENSITY_CUTOFF_SIMD`] once the dense
//! tile runs vectorised) to [`matmul_sparse`], a gather-accumulate kernel
//! that walks only the nonzero activations and turns binary entries into
//! plain row additions (no multiply at all). [`im2col_sparse_into`] is the
//! matching lowering for convolutions: it scatters only the nonzero input
//! pixels into the (pre-zeroed) im2col matrix instead of copying every
//! window cell.

use crate::simd::{self, Isa, SimdLevel, SimdOp};
use crate::spikes::SpikeIndex;
use rayon::prelude::*;

/// Rows per register tile.
pub const MR: usize = 4;
/// Columns per register tile (kept SIMD-width friendly).
pub const NR: usize = 8;
/// Reduction-dimension block size: one `KC x NR` panel of `b` is about
/// 8 KiB, comfortably L1-resident while a row panel streams through.
pub const KC: usize = 256;

/// Work threshold (in multiply-adds) below which the serial path is used;
/// spawning threads for tiny products costs more than the product.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 16;

/// Reference matrix product — the seed's straightforward `i-k-j` triple loop
/// (contiguous over `b` and `out`, zero-skip on `a`). Kept as the baseline
/// for benchmarks and property tests; use [`matmul`] everywhere else.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
    out
}

/// Cache-blocked, row-parallel matrix product `a (m x k) @ b (k x n)`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_into(a, b, &mut out, m, k, n);
    out
}

/// Cache-blocked, row-parallel matrix product accumulating into `out`
/// (`out` must be zero-initialised for a plain product).
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, m, k, n);
    assert_eq!(out.len(), m * n, "output buffer has the wrong length");
    if m == 0 || n == 0 {
        return;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || m * n * k < PARALLEL_FLOP_THRESHOLD {
        matmul_panel(a, b, out, m, k, n);
        return;
    }
    // Split output rows into per-thread panels; a few panels per thread keep
    // the queue balanced when row costs vary (e.g. sparse spike rows).
    let rows_per_panel = m.div_ceil(threads * 2).max(MR);
    out.par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, out_panel)| {
            let row0 = panel * rows_per_panel;
            let rows = out_panel.len() / n;
            matmul_panel(&a[row0 * k..(row0 + rows) * k], b, out_panel, rows, k, n);
        });
}

/// Serial blocked product of one row panel: `a_panel` is `rows x k`,
/// `out_panel` is `rows x n`. Dispatched to the active SIMD level
/// ([`crate::simd`]); [`Isa::Scalar`] runs the original scalar tile
/// unchanged.
fn matmul_panel(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    match simd::active() {
        Isa::Scalar => matmul_panel_scalar(a_panel, b, out_panel, rows, k, n),
        _ => simd::dispatch(PanelOp {
            a_panel,
            b,
            out_panel,
            rows,
            k,
            n,
        }),
    }
}

struct PanelOp<'a> {
    a_panel: &'a [f32],
    b: &'a [f32],
    out_panel: &'a mut [f32],
    rows: usize,
    k: usize,
    n: usize,
}

impl SimdOp for PanelOp<'_> {
    type Output = ();

    #[inline(always)]
    fn run<S: SimdLevel>(self) {
        matmul_panel_blocks::<S>(
            self.a_panel,
            self.b,
            self.out_panel,
            self.rows,
            self.k,
            self.n,
        );
    }
}

/// The blocked panel product in lane-block form: same k-blocking and MR-row
/// tiling as the scalar kernel, with the NR strip widened to the level's
/// vector width (two blocks per row) and FMA accumulation. Differs from the
/// scalar tile only by fused-multiply rounding (within the dense kernels'
/// 1e-5 tolerance).
#[inline(always)]
fn matmul_panel_blocks<S: SimdLevel>(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < k {
        let kb_end = (kb + KC).min(k);
        let mut i = 0;
        while i + MR <= rows {
            row_tile_blocks::<S>(a_panel, b, out_panel, i, kb, kb_end, k, n);
            i += MR;
        }
        // Remaining rows: vector axpy walk of the same k-block.
        while i < rows {
            row_axpy_blocks::<S>(
                &a_panel[i * k..(i + 1) * k],
                b,
                &mut out_panel[i * n..(i + 1) * n],
                kb,
                kb_end,
                n,
            );
            i += 1;
        }
        kb = kb_end;
    }
}

/// Updates MR output rows for one k-block at level `S`: double-width vector
/// strips (2 accumulator blocks per row live across the block), then a
/// single-width strip, then scalar column tails.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn row_tile_blocks<S: SimdLevel>(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    i: usize,
    kb: usize,
    kb_end: usize,
    k: usize,
    n: usize,
) {
    let w = S::F32_LANES;
    let a0 = &a_panel[i * k..(i + 1) * k];
    let a1 = &a_panel[(i + 1) * k..(i + 2) * k];
    let a2 = &a_panel[(i + 2) * k..(i + 3) * k];
    let a3 = &a_panel[(i + 3) * k..(i + 4) * k];

    let mut jc = 0;
    while jc + 2 * w <= n {
        let mut acc = [[S::f32_zero(); 2]; MR];
        for p in kb..kb_end {
            let b_row = &b[p * n + jc..];
            let b0 = S::f32_load(b_row);
            let b1 = S::f32_load(&b_row[w..]);
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (acc_row, &a_rp) in acc.iter_mut().zip(&av) {
                let s = S::f32_splat(a_rp);
                acc_row[0] = S::f32_muladd(s, b0, acc_row[0]);
                acc_row[1] = S::f32_muladd(s, b1, acc_row[1]);
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let out_row = &mut out_panel[(i + r) * n + jc..];
            S::f32_accum(out_row, acc_row[0]);
            S::f32_accum(&mut out_row[w..], acc_row[1]);
        }
        jc += 2 * w;
    }
    while jc + w <= n {
        let mut acc = [S::f32_zero(); MR];
        for p in kb..kb_end {
            let bv = S::f32_load(&b[p * n + jc..]);
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (acc_r, &a_rp) in acc.iter_mut().zip(&av) {
                *acc_r = S::f32_muladd(S::f32_splat(a_rp), bv, *acc_r);
            }
        }
        for (r, &acc_r) in acc.iter().enumerate() {
            S::f32_accum(&mut out_panel[(i + r) * n + jc..], acc_r);
        }
        jc += w;
    }
    // Column tail (n % lane width): scalar accumulators per remaining column.
    if jc < n {
        for p in kb..kb_end {
            let b_row = &b[p * n..(p + 1) * n];
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (r, &a_rp) in av.iter().enumerate() {
                if a_rp == 0.0 {
                    continue;
                }
                let out_row = &mut out_panel[(i + r) * n..(i + r) * n + n];
                for j in jc..n {
                    out_row[j] += a_rp * b_row[j];
                }
            }
        }
    }
}

/// Tail rows (fewer than MR) of one k-block: vector axpy per nonzero
/// activation (fused like the tile), scalar column tail.
#[inline(always)]
fn row_axpy_blocks<S: SimdLevel>(
    a_row: &[f32],
    b: &[f32],
    out_row: &mut [f32],
    kb: usize,
    kb_end: usize,
    n: usize,
) {
    let w = S::F32_LANES;
    for p in kb..kb_end {
        let a_ip = a_row[p];
        if a_ip == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        let s = S::f32_splat(a_ip);
        let mut j = 0;
        while j + w <= n {
            let acc = S::f32_muladd(s, S::f32_load(&b_row[j..]), S::f32_load(&out_row[j..]));
            S::f32_store(acc, &mut out_row[j..]);
            j += w;
        }
        while j < n {
            out_row[j] += a_ip * b_row[j];
            j += 1;
        }
    }
}

/// The original scalar panel product, kept verbatim as the [`Isa::Scalar`]
/// engine (forced-scalar runs execute exactly the pre-SIMD code).
fn matmul_panel_scalar(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < k {
        let kb_end = (kb + KC).min(k);
        let mut i = 0;
        // Full MR-row tiles, register-tiled across NR-column strips.
        while i + MR <= rows {
            row_tile(a_panel, b, out_panel, i, kb, kb_end, k, n);
            i += MR;
        }
        // Remaining rows: plain axpy walk of the same k-block.
        while i < rows {
            let a_row = &a_panel[i * k..(i + 1) * k];
            let out_row = &mut out_panel[i * n..(i + 1) * n];
            for p in kb..kb_end {
                let a_ip = a_row[p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
            i += 1;
        }
        kb = kb_end;
    }
}

/// Updates MR output rows for one k-block, walking NR-column strips with the
/// accumulator tile held in registers across the whole block.
#[allow(clippy::too_many_arguments)]
fn row_tile(
    a_panel: &[f32],
    b: &[f32],
    out_panel: &mut [f32],
    i: usize,
    kb: usize,
    kb_end: usize,
    k: usize,
    n: usize,
) {
    let a0 = &a_panel[i * k..(i + 1) * k];
    let a1 = &a_panel[(i + 1) * k..(i + 2) * k];
    let a2 = &a_panel[(i + 2) * k..(i + 3) * k];
    let a3 = &a_panel[(i + 3) * k..(i + 4) * k];

    let mut jc = 0;
    // NR-wide strips: fixed-size array views hoist every bounds check out of
    // the p-loop and let the strip live in registers.
    while jc + NR <= n {
        let mut acc = [[0.0f32; NR]; MR];
        for p in kb..kb_end {
            let b_strip: &[f32; NR] = b[p * n + jc..p * n + jc + NR]
                .try_into()
                .expect("strip width is NR");
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (acc_row, &a_rp) in acc.iter_mut().zip(&av) {
                for (s, &b_pj) in acc_row.iter_mut().zip(b_strip) {
                    *s += a_rp * b_pj;
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let out_strip = &mut out_panel[(i + r) * n + jc..(i + r) * n + jc + NR];
            for (o, &s) in out_strip.iter_mut().zip(acc_row) {
                *o += s;
            }
        }
        jc += NR;
    }
    // Column tail (n % NR): scalar accumulators per remaining column.
    if jc < n {
        for p in kb..kb_end {
            let b_row = &b[p * n..(p + 1) * n];
            let av = [a0[p], a1[p], a2[p], a3[p]];
            for (r, &a_rp) in av.iter().enumerate() {
                if a_rp == 0.0 {
                    continue;
                }
                let out_row = &mut out_panel[(i + r) * n..(i + r) * n + n];
                for j in jc..n {
                    out_row[j] += a_rp * b_row[j];
                }
            }
        }
    }
}

fn check_dims(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs has the wrong length");
    assert_eq!(b.len(), k * n, "rhs has the wrong length");
}

// ---------------------------------------------------------------------------
// Event-driven (spike-sparse) kernels
// ---------------------------------------------------------------------------

/// Lhs density at or below which [`matmul_dispatch`] selects the
/// gather-accumulate kernel **when the scalar reference kernels are
/// active**. The row-walk kernel does `density * k` row updates where the
/// blocked kernel always does `k`; with the scalar blocked kernel's register
/// tiling worth roughly a 1.5-2x constant factor, the crossover sits well
/// above 25%, so this cutoff only ever picks the sparse kernel where it
/// clearly wins. Paper-typical spike densities are <= 20%.
pub const SPARSE_DENSITY_CUTOFF: f32 = 0.25;

/// Event-kernel cutoff when a vector SIMD level is active. The SIMD dense
/// tile is ~3x faster than the scalar blocked kernel, which drags the probe
/// kernel's measured crossover down to ~10-15% lhs density (see the
/// `sparse_matmul` sweep in `BENCH_kernels.json` on AVX-512), so the
/// dispatchers tighten the cutoff rather than route break-even densities to
/// the event walk. Real spiking-layer operands sit at or below ~11% density
/// (the `kernel_choice` sweeps), so in practice this changes no layer's
/// routing — it only stops mid-density operands from losing to the faster
/// dense tile.
pub const SPARSE_DENSITY_CUTOFF_SIMD: f32 = 0.15;

/// The event-kernel density cutoff under the currently active SIMD level:
/// [`SPARSE_DENSITY_CUTOFF`] for [`Isa::Scalar`] (the pre-SIMD behaviour,
/// unchanged under `FALVOLT_SIMD=scalar`), [`SPARSE_DENSITY_CUTOFF_SIMD`]
/// for every vector level. Both dispatchers ([`matmul_dispatch`] and
/// [`matmul_dispatch_indexed`]) consult this single function, so the probe
/// and CSR paths always agree on routing — the foundation of their
/// bit-identity contract.
pub fn sparse_density_cutoff() -> f32 {
    match simd::active() {
        Isa::Scalar => SPARSE_DENSITY_CUTOFF,
        _ => SPARSE_DENSITY_CUTOFF_SIMD,
    }
}

/// Measured structure of a matmul operand (one `O(len)` pass — negligible
/// next to the `O(len * n)` product it steers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperandProfile {
    /// Fraction of nonzero elements, in `[0, 1]` (1.0 for empty operands).
    pub density: f32,
    /// `true` when every element is exactly `0.0` or `1.0` — the shape of a
    /// spike tensor, where accumulation needs no multiplications.
    pub binary: bool,
}

impl OperandProfile {
    /// The profile assumed when structure analysis is skipped: fully dense.
    pub fn dense() -> Self {
        Self {
            density: 1.0,
            binary: false,
        }
    }

    /// Scans `data` once, counting nonzeros and checking binariness. The
    /// counts are exact on every SIMD level, so the measured profile is
    /// identical to the scalar scan by construction.
    pub fn measure(data: &[f32]) -> Self {
        if data.is_empty() {
            return Self::dense();
        }
        let (nonzero, binary) = match simd::active() {
            Isa::Scalar => Self::count_scalar(data),
            _ => simd::dispatch(MeasureOp { data }),
        };
        Self {
            density: nonzero as f32 / data.len() as f32,
            binary,
        }
    }

    /// The original branchy scalar scan — the [`Isa::Scalar`] reference.
    fn count_scalar(data: &[f32]) -> (usize, bool) {
        let mut nonzero = 0usize;
        let mut binary = true;
        for &v in data {
            if v != 0.0 {
                nonzero += 1;
                binary &= v == 1.0;
            }
        }
        (nonzero, binary)
    }

    /// `true` when the operand is sparse enough for the event-driven kernel
    /// under the active SIMD level (see [`sparse_density_cutoff`]).
    pub fn is_event_sparse(&self) -> bool {
        self.density <= sparse_density_cutoff()
    }
}

/// Lane-parallel operand scan: per-lane nonzero counters and a per-lane
/// non-binariness flag, reduced after the pass. Counting is exact, so the
/// result matches the scalar scan bit-for-bit; the fixed 16-wide stripes
/// vectorise under whichever `#[target_feature]` trampoline dispatch picks.
struct MeasureOp<'a> {
    data: &'a [f32],
}

impl SimdOp for MeasureOp<'_> {
    type Output = (usize, bool);

    #[inline(always)]
    fn run<S: SimdLevel>(self) -> (usize, bool) {
        const STRIPE: usize = 16;
        let mut nonzero_lanes = [0u64; STRIPE];
        let mut nonbinary_lanes = [0u32; STRIPE];
        let mut chunks = self.data.chunks_exact(STRIPE);
        for chunk in chunks.by_ref() {
            for j in 0..STRIPE {
                let v = chunk[j];
                nonzero_lanes[j] += u64::from(v != 0.0);
                nonbinary_lanes[j] |= u32::from(v != 0.0 && v != 1.0);
            }
        }
        let mut nonzero = nonzero_lanes.iter().sum::<u64>() as usize;
        let mut binary = nonbinary_lanes.iter().all(|&flag| flag == 0);
        for &v in chunks.remainder() {
            if v != 0.0 {
                nonzero += 1;
                binary &= v == 1.0;
            }
        }
        (nonzero, binary)
    }
}

/// Caller-supplied structure hint for the left operand of a matrix product.
///
/// Layers that know what they feed the backend (e.g. a convolution whose
/// input is the output of a spiking layer) pass the hint down so the
/// dispatcher can skip or shrink the probe; [`MatmulHint::Dense`] is also the
/// "engine off" switch that pins execution to the blocked dense kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatmulHint {
    /// No structural knowledge: probe the operand and dispatch on density.
    #[default]
    Auto,
    /// Operand known (or required to be treated as) dense: use the blocked
    /// kernel unconditionally, no probe.
    Dense,
    /// Operand known to be a binary spike tensor. Informational: dispatch
    /// still measures the operand (the probe is one cheap pass), but
    /// backends may use the claim to pick spike-specialised paths.
    Spikes,
}

/// Structure-aware matrix product `a (m x k) @ b (k x n)`: probes `a` as
/// directed by `hint` and routes to [`matmul_sparse`] or the blocked
/// [`matmul`].
///
/// Both kernels visit `k` in increasing order per output element, so they
/// agree to within floating-point re-association (~`k * eps`); for `k <=`
/// [`KC`] they agree bit-for-bit.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_dispatch(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    hint: MatmulHint,
) -> Vec<f32> {
    let profile = match hint {
        MatmulHint::Dense => return matmul(a, b, m, k, n),
        // A Spikes claim is informational (the sparse kernel handles
        // non-binary nonzeros anyway); dispatch measures the operand either
        // way so there is a single source of truth for the density logic.
        MatmulHint::Auto | MatmulHint::Spikes => OperandProfile::measure(a),
    };
    if profile.is_event_sparse() {
        matmul_sparse(a, b, m, k, n)
    } else {
        matmul(a, b, m, k, n)
    }
}

/// Event-driven matrix product for a sparse left operand: each output row is
/// the sum of the `b` rows selected by the nonzero entries of the matching
/// `a` row. Binary entries (`1.0`) skip the multiplication entirely and
/// reduce to a row addition; other nonzeros fall back to an axpy update.
/// Zero rows of `a` cost nothing.
///
/// Accumulation visits the nonzero `k` indices in increasing order, matching
/// the naive kernel's order exactly and the blocked kernel's within k-block
/// re-association.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_sparse(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n);
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || m * n * k < PARALLEL_FLOP_THRESHOLD {
        sparse_panel(a, b, &mut out, k, n);
        return out;
    }
    let rows_per_panel = m.div_ceil(threads * 2).max(1);
    out.par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, out_panel)| {
            let row0 = panel * rows_per_panel;
            let rows = out_panel.len() / n;
            sparse_panel(&a[row0 * k..(row0 + rows) * k], b, out_panel, k, n);
        });
    out
}

/// Gather-accumulate update of one row panel (`a_panel` is `rows x k`
/// aligned with `out_panel`), dispatched to the active SIMD level;
/// [`Isa::Scalar`] runs the original row walk unchanged. Vector levels are
/// bit-identical to scalar here: the row additions use unfused lane adds in
/// the same per-element order.
fn sparse_panel(a_panel: &[f32], b: &[f32], out_panel: &mut [f32], k: usize, n: usize) {
    match simd::active() {
        Isa::Scalar => {
            for (r, out_row) in out_panel.chunks_mut(n).enumerate() {
                sparse_row(&a_panel[r * k..(r + 1) * k], b, out_row, n);
            }
        }
        _ => simd::dispatch(SparsePanelOp {
            a_panel,
            b,
            out_panel,
            k,
            n,
        }),
    }
}

struct SparsePanelOp<'a> {
    a_panel: &'a [f32],
    b: &'a [f32],
    out_panel: &'a mut [f32],
    k: usize,
    n: usize,
}

impl SimdOp for SparsePanelOp<'_> {
    type Output = ();

    #[inline(always)]
    fn run<S: SimdLevel>(self) {
        // Three tricks over the scalar scan-and-add walk, none changing
        // per-element operation order:
        //
        // * the nonzero scan tests 16-wide stripes with a vectorised
        //   any-nonzero OR-reduction first and skips all-zero stripes —
        //   at spike densities most stripes are empty, so the scan cost
        //   collapses from one store per element to one compare per lane;
        // * within the stripes that do hold spikes, positions are compacted
        //   branchlessly into a scratch list (the dense element-by-element
        //   scan branch-mispredicts at spike densities) and the event walk
        //   reads values back by position;
        // * at classifier-head widths the whole output row lives in
        //   register accumulators across that walk (same as the CSR
        //   kernel), so the row is stored once instead of once per event.
        const STRIPE: usize = 16;
        let blocks = self.n / S::F32_LANES;
        // STRIPE slack so each non-empty stripe can slice a full-width
        // compaction window at `count` even near the end of the list.
        let mut events: Vec<u32> = vec![0; self.k + STRIPE];
        for (r, out_row) in self.out_panel.chunks_mut(self.n).enumerate() {
            let a_row = &self.a_panel[r * self.k..(r + 1) * self.k];
            let mut count = 0usize;
            let mut chunks = a_row.chunks_exact(STRIPE);
            let mut base = 0u32;
            for chunk in chunks.by_ref() {
                let mut any = false;
                for &v in chunk {
                    any |= v != 0.0;
                }
                if any {
                    let slot = &mut events[count..count + STRIPE];
                    let mut c = 0usize;
                    for (j, &v) in chunk.iter().enumerate() {
                        slot[c] = base + j as u32;
                        c += usize::from(v != 0.0);
                    }
                    count += c;
                }
                base += STRIPE as u32;
            }
            for (j, &v) in chunks.remainder().iter().enumerate() {
                events[count] = base + j as u32;
                count += usize::from(v != 0.0);
            }
            let row_events = &events[..count];
            match blocks {
                1 => sparse_row_resident::<S, 1>(a_row, row_events, self.b, out_row),
                2 => sparse_row_resident::<S, 2>(a_row, row_events, self.b, out_row),
                3 => sparse_row_resident::<S, 3>(a_row, row_events, self.b, out_row),
                4 => sparse_row_resident::<S, 4>(a_row, row_events, self.b, out_row),
                5 => sparse_row_resident::<S, 5>(a_row, row_events, self.b, out_row),
                6 => sparse_row_resident::<S, 6>(a_row, row_events, self.b, out_row),
                7 => sparse_row_resident::<S, 7>(a_row, row_events, self.b, out_row),
                8 => sparse_row_resident::<S, 8>(a_row, row_events, self.b, out_row),
                _ => {
                    for &p in row_events {
                        let p = p as usize;
                        let v = a_row[p];
                        let b_row = &self.b[p * self.n..(p + 1) * self.n];
                        if v == 1.0 {
                            row_add_blocks::<S>(out_row, b_row);
                        } else {
                            row_axpy_value_blocks::<S>(out_row, b_row, v);
                        }
                    }
                }
            }
        }
    }
}

/// One gather-accumulate output row over a pre-compacted nonzero position
/// list, with the first `BLOCKS` lane blocks held in register accumulators
/// across the whole walk. Per-element add and axpy order (unfused mul then
/// add) is identical to driving [`row_add_blocks`] /
/// [`row_axpy_value_blocks`] once per nonzero of the dense scan.
#[inline(always)]
fn sparse_row_resident<S: SimdLevel, const BLOCKS: usize>(
    a_row: &[f32],
    events: &[u32],
    b: &[f32],
    out_row: &mut [f32],
) {
    let w = S::F32_LANES;
    let n = out_row.len();
    let tail = BLOCKS * w;
    let mut acc = [S::f32_zero(); BLOCKS];
    for (blk, a) in acc.iter_mut().enumerate() {
        *a = S::f32_load(&out_row[blk * w..]);
    }
    for &p in events {
        let p = p as usize;
        let v = a_row[p];
        let b_row = &b[p * n..(p + 1) * n];
        if v == 1.0 {
            for (blk, a) in acc.iter_mut().enumerate() {
                *a = S::f32_add(*a, S::f32_load(&b_row[blk * w..]));
            }
            for j in tail..n {
                out_row[j] += b_row[j];
            }
        } else {
            let s = S::f32_splat(v);
            for (blk, a) in acc.iter_mut().enumerate() {
                *a = S::f32_add(*a, S::f32_mul(s, S::f32_load(&b_row[blk * w..])));
            }
            for j in tail..n {
                out_row[j] += v * b_row[j];
            }
        }
    }
    for (blk, a) in acc.iter().enumerate() {
        S::f32_store(*a, &mut out_row[blk * w..]);
    }
}

/// `out_row += b_row` in lane blocks — unfused adds, bit-identical to the
/// scalar spike row addition.
#[inline(always)]
fn row_add_blocks<S: SimdLevel>(out_row: &mut [f32], b_row: &[f32]) {
    let w = S::F32_LANES;
    let n = out_row.len();
    let mut j = 0;
    while j + w <= n {
        let sum = S::f32_add(S::f32_load(&out_row[j..]), S::f32_load(&b_row[j..]));
        S::f32_store(sum, &mut out_row[j..]);
        j += w;
    }
    while j < n {
        out_row[j] += b_row[j];
        j += 1;
    }
}

/// `out_row += v * b_row` in lane blocks — separate mul and add roundings,
/// bit-identical to the scalar axpy.
#[inline(always)]
fn row_axpy_value_blocks<S: SimdLevel>(out_row: &mut [f32], b_row: &[f32], v: f32) {
    let w = S::F32_LANES;
    let n = out_row.len();
    let s = S::f32_splat(v);
    let mut j = 0;
    while j + w <= n {
        let sum = S::f32_add(
            S::f32_load(&out_row[j..]),
            S::f32_mul(s, S::f32_load(&b_row[j..])),
        );
        S::f32_store(sum, &mut out_row[j..]);
        j += w;
    }
    while j < n {
        out_row[j] += v * b_row[j];
        j += 1;
    }
}

/// Structure-aware product that may consume a pre-built CSR spike index for
/// the left operand. With `index = None` this is exactly [`matmul_dispatch`];
/// with an index, the density decision is O(1) (`nnz / len`, the same number
/// the probe would measure) and the sparse branch walks the index instead of
/// re-scanning rows — bit-identical to [`matmul_sparse`] because listed
/// positions are exactly the nonzeros, all `1.0`, visited in the same order.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`, or if the index
/// geometry does not match `m x k`.
pub fn matmul_dispatch_indexed(
    a: &[f32],
    index: Option<&SpikeIndex>,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    hint: MatmulHint,
) -> Vec<f32> {
    let Some(index) = index else {
        return matmul_dispatch(a, b, m, k, n, hint);
    };
    if matches!(hint, MatmulHint::Dense) {
        return matmul(a, b, m, k, n);
    }
    // The index was validated against the data when it was attached (and
    // any mutable access drops it), so only the geometry is re-checked here.
    assert_eq!(index.rows(), m, "spike index row count must be m");
    assert_eq!(index.cols(), k, "spike index row width must be k");
    if index.density() <= sparse_density_cutoff() {
        matmul_spikes_indexed(index, b, m, k, n)
    } else {
        matmul(a, b, m, k, n)
    }
}

/// Event-stream matrix product: each output row is the sum of the `b` rows
/// listed in the CSR index row (binary spikes — pure row additions, no
/// multiply and no scan of the dense operand at all). Identical accumulation
/// order to [`matmul_sparse`] on the same operand.
///
/// # Panics
///
/// Panics if the buffer lengths disagree with `m`, `k`, `n` or the index.
pub fn matmul_spikes_indexed(
    index: &SpikeIndex,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    assert_eq!(index.rows(), m, "spike index row count must be m");
    assert_eq!(index.cols(), k, "spike index row width must be k");
    assert_eq!(b.len(), k * n, "rhs has the wrong length");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || m * n * k < PARALLEL_FLOP_THRESHOLD {
        indexed_panel(index, 0, b, &mut out, n);
        return out;
    }
    let rows_per_panel = m.div_ceil(threads * 2).max(1);
    out.par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, out_panel)| {
            indexed_panel(index, panel * rows_per_panel, b, out_panel, n);
        });
    out
}

/// CSR row-add update of one row panel starting at `row0`, dispatched to the
/// active SIMD level; [`Isa::Scalar`] runs the original row walk unchanged.
/// Vector levels share [`row_add_blocks`] with the sparse probe kernel, so
/// the two stay bit-identical on the same operand at every level.
fn indexed_panel(index: &SpikeIndex, row0: usize, b: &[f32], out_panel: &mut [f32], n: usize) {
    match simd::active() {
        Isa::Scalar => {
            for (r, out_row) in out_panel.chunks_mut(n).enumerate() {
                indexed_row(index.row(row0 + r), b, out_row, n);
            }
        }
        _ => simd::dispatch(IndexedPanelOp {
            index,
            row0,
            b,
            out_panel,
            n,
        }),
    }
}

struct IndexedPanelOp<'a> {
    index: &'a SpikeIndex,
    row0: usize,
    b: &'a [f32],
    out_panel: &'a mut [f32],
    n: usize,
}

impl SimdOp for IndexedPanelOp<'_> {
    type Output = ();

    #[inline(always)]
    fn run<S: SimdLevel>(self) {
        // Classifier-head widths fit the whole output row in registers, so
        // keep the accumulators resident across the event walk instead of
        // storing and reloading `out_row` once per event. The const-generic
        // block count lets the block loop unroll completely; per-element add
        // order is unchanged, so every variant stays bit-identical.
        let blocks = self.n / S::F32_LANES;
        for (r, out_row) in self.out_panel.chunks_mut(self.n).enumerate() {
            let events = self.index.row(self.row0 + r);
            match blocks {
                1 => indexed_row_resident::<S, 1>(events, self.b, out_row),
                2 => indexed_row_resident::<S, 2>(events, self.b, out_row),
                3 => indexed_row_resident::<S, 3>(events, self.b, out_row),
                4 => indexed_row_resident::<S, 4>(events, self.b, out_row),
                5 => indexed_row_resident::<S, 5>(events, self.b, out_row),
                6 => indexed_row_resident::<S, 6>(events, self.b, out_row),
                7 => indexed_row_resident::<S, 7>(events, self.b, out_row),
                8 => indexed_row_resident::<S, 8>(events, self.b, out_row),
                _ => {
                    for &p in events {
                        let b_row = &self.b[p as usize * self.n..(p as usize + 1) * self.n];
                        row_add_blocks::<S>(out_row, b_row);
                    }
                }
            }
        }
    }
}

/// One CSR output row with the first `BLOCKS` lane blocks held in register
/// accumulators across the whole event walk; the sub-lane tail (and nothing
/// else) still goes through memory per event. Identical per-element add
/// order to [`row_add_blocks`] driven once per event.
#[inline(always)]
fn indexed_row_resident<S: SimdLevel, const BLOCKS: usize>(
    events: &[u32],
    b: &[f32],
    out_row: &mut [f32],
) {
    let w = S::F32_LANES;
    let n = out_row.len();
    let tail = BLOCKS * w;
    let mut acc = [S::f32_zero(); BLOCKS];
    for (blk, a) in acc.iter_mut().enumerate() {
        *a = S::f32_load(&out_row[blk * w..]);
    }
    for &p in events {
        let b_row = &b[p as usize * n..(p as usize + 1) * n];
        for (blk, a) in acc.iter_mut().enumerate() {
            *a = S::f32_add(*a, S::f32_load(&b_row[blk * w..]));
        }
        for j in tail..n {
            out_row[j] += b_row[j];
        }
    }
    for (blk, a) in acc.iter().enumerate() {
        S::f32_store(*a, &mut out_row[blk * w..]);
    }
}

/// Adds the `b` rows listed in `cols` (a CSR row of spike positions) into
/// `out_row`.
fn indexed_row(cols: &[u32], b: &[f32], out_row: &mut [f32], n: usize) {
    for &p in cols {
        let b_row = &b[p as usize * n..(p as usize + 1) * n];
        for (o, &w) in out_row.iter_mut().zip(b_row) {
            *o += w;
        }
    }
}

/// Gather-accumulate update of one output row from the nonzeros of `a_row`.
fn sparse_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], n: usize) {
    for (p, &v) in a_row.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        if v == 1.0 {
            // Spike: pure row addition, no multiply in the inner loop.
            for (o, &w) in out_row.iter_mut().zip(b_row) {
                *o += w;
            }
        } else {
            for (o, &w) in out_row.iter_mut().zip(b_row) {
                *o += v * w;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// im2col
// ---------------------------------------------------------------------------

/// Geometry subset needed by the raw `im2col` kernel (mirrors
/// [`crate::ops::Conv2dDims`] without the tensor-level bookkeeping).
#[derive(Debug, Clone, Copy)]
pub struct Im2colGeom {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Im2colGeom {
    /// Rows of the lowered matrix: `batch * out_h * out_w`.
    pub fn rows(&self) -> usize {
        self.batch * self.out_h * self.out_w
    }

    /// Columns of the lowered matrix: `channels * kernel^2`.
    pub fn cols(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }
}

/// Lowers an `[N, C, H, W]` input (flat, row-major) into the im2col matrix,
/// parallelised over `(batch, out_y)` stripes.
///
/// # Panics
///
/// Panics if the buffer lengths disagree with `geom`.
pub fn im2col_into(input: &[f32], out: &mut [f32], geom: &Im2colGeom) {
    assert_eq!(
        input.len(),
        geom.batch * geom.channels * geom.in_h * geom.in_w,
        "input buffer has the wrong length"
    );
    assert_eq!(
        out.len(),
        geom.rows() * geom.cols(),
        "output buffer has the wrong length"
    );
    let stripe = geom.out_w * geom.cols();
    if stripe == 0 {
        return;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || out.len() < PARALLEL_FLOP_THRESHOLD {
        for (stripe_idx, out_stripe) in out.chunks_mut(stripe).enumerate() {
            im2col_stripe(input, out_stripe, geom, stripe_idx);
        }
    } else {
        out.par_chunks_mut(stripe)
            .enumerate()
            .for_each(|(stripe_idx, out_stripe)| {
                im2col_stripe(input, out_stripe, geom, stripe_idx);
            });
    }
}

/// Fills one `(batch, out_y)` stripe (`out_w` rows) of the im2col matrix.
fn im2col_stripe(input: &[f32], out_stripe: &mut [f32], geom: &Im2colGeom, stripe_idx: usize) {
    let (c, h, w, k) = (geom.channels, geom.in_h, geom.in_w, geom.kernel);
    let b = stripe_idx / geom.out_h;
    let oy = stripe_idx % geom.out_h;
    let cols = geom.cols();
    for ox in 0..geom.out_w {
        let row = &mut out_stripe[ox * cols..(ox + 1) * cols];
        for ch in 0..c {
            for ky in 0..k {
                let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                for kx in 0..k {
                    let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                    let col = (ch * k + ky) * k + kx;
                    row[col] = if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                        input[((b * c + ch) * h + iy as usize) * w + ix as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Spike-aware im2col: assumes `out` is zero-filled and scatters only the
/// nonzero input pixels into their window positions, costing
/// `O(nnz * kernel^2)` instead of `O(rows * cols)`. Produces exactly the
/// matrix [`im2col_into`] builds (distinct pixels land in distinct cells).
///
/// Parallelised over batches when the output is large enough.
///
/// # Panics
///
/// Panics if the buffer lengths disagree with `geom`.
pub fn im2col_sparse_into(input: &[f32], out: &mut [f32], geom: &Im2colGeom) {
    assert_eq!(
        input.len(),
        geom.batch * geom.channels * geom.in_h * geom.in_w,
        "input buffer has the wrong length"
    );
    assert_eq!(
        out.len(),
        geom.rows() * geom.cols(),
        "output buffer has the wrong length"
    );
    let batch_stride = geom.out_h * geom.out_w * geom.cols();
    if batch_stride == 0 {
        return;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 || out.len() < PARALLEL_FLOP_THRESHOLD {
        for (b, out_batch) in out.chunks_mut(batch_stride).enumerate() {
            im2col_scatter_batch(input, out_batch, geom, b);
        }
    } else {
        out.par_chunks_mut(batch_stride)
            .enumerate()
            .for_each(|(b, out_batch)| {
                im2col_scatter_batch(input, out_batch, geom, b);
            });
    }
}

/// Scatters the nonzero pixels of batch `b` into its slice of the im2col
/// matrix. For pixel `(ch, iy, ix)` and kernel offset `(ky, kx)`, the output
/// position `(oy, ox)` satisfies `iy = oy * stride + ky - padding`, so the
/// pixel lands in row `(oy * out_w + ox)`, column `(ch * k + ky) * k + kx`.
fn im2col_scatter_batch(input: &[f32], out_batch: &mut [f32], geom: &Im2colGeom, b: usize) {
    let (c, h, w, k) = (geom.channels, geom.in_h, geom.in_w, geom.kernel);
    let (stride, padding) = (geom.stride, geom.padding);
    let cols = geom.cols();
    for ch in 0..c {
        for iy in 0..h {
            let in_row = &input[((b * c + ch) * h + iy) * w..((b * c + ch) * h + iy + 1) * w];
            for (ix, &v) in in_row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                for ky in 0..k {
                    let oy_num = iy + padding;
                    if oy_num < ky || (oy_num - ky) % stride != 0 {
                        continue;
                    }
                    let oy = (oy_num - ky) / stride;
                    if oy >= geom.out_h {
                        continue;
                    }
                    for kx in 0..k {
                        let ox_num = ix + padding;
                        if ox_num < kx || (ox_num - kx) % stride != 0 {
                            continue;
                        }
                        let ox = (ox_num - kx) / stride;
                        if ox >= geom.out_w {
                            continue;
                        }
                        let row = oy * geom.out_w + ox;
                        let col = (ch * k + ky) * k + kx;
                        out_batch[row * cols + col] = v;
                    }
                }
            }
        }
    }
}

/// Index-transform im2col for spike frames: consumes the input's CSR spike
/// index (rows of the `[N, C, H]` pixel grid, width `W`) and produces both
/// the dense im2col matrix and *its* CSR index in one pass — the lowering of
/// a spike tensor is itself a spike tensor, so downstream products keep the
/// event stream without ever re-probing.
///
/// Output rows are visited in order and columns are emitted ascending within
/// each row, so the produced index is valid CSR; the dense matrix is exactly
/// what [`im2col_into`] / [`im2col_sparse_into`] build for the same input.
///
/// # Panics
///
/// Panics if the index geometry disagrees with `geom`.
pub fn im2col_indexed(index: &SpikeIndex, geom: &Im2colGeom) -> (Vec<f32>, SpikeIndex) {
    assert_eq!(
        index.rows(),
        geom.batch * geom.channels * geom.in_h,
        "spike index rows must cover the [N, C, H] pixel grid"
    );
    assert_eq!(index.cols(), geom.in_w, "spike index width must be W");
    let rows = geom.rows();
    let cols = geom.cols();
    let mut out = vec![0.0f32; rows * cols];
    let batch_rows = geom.out_h * geom.out_w;
    let batch_stride = batch_rows * cols;
    if batch_stride == 0 {
        let row_ptr = vec![0u32; rows + 1];
        return (
            out,
            SpikeIndex::from_parts(rows, cols.max(1), row_ptr, Vec::new()),
        );
    }
    let threads = rayon::current_num_threads();
    let parts: Vec<(Vec<u32>, Vec<u32>)> = if threads <= 1 || out.len() < PARALLEL_FLOP_THRESHOLD {
        (0..geom.batch)
            .map(|b| im2col_index_batch(index, geom, b))
            .collect()
    } else {
        (0..geom.batch)
            .into_par_iter()
            .map(|b| im2col_index_batch(index, geom, b))
            .collect()
    };
    // Scatter the listed positions into the dense matrix (O(nnz)) and stitch
    // the per-batch CSR parts together.
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0u32);
    let mut col_idx = Vec::new();
    for (b, (rp, ci)) in parts.into_iter().enumerate() {
        let out_batch = &mut out[b * batch_stride..(b + 1) * batch_stride];
        for local_row in 0..batch_rows {
            let row = &ci[rp[local_row] as usize..rp[local_row + 1] as usize];
            for &col in row {
                out_batch[local_row * cols + col as usize] = 1.0;
            }
        }
        let base = col_idx.len() as u32;
        for &offset in &rp[1..] {
            row_ptr.push(base + offset);
        }
        col_idx.extend_from_slice(&ci);
    }
    (out, SpikeIndex::from_parts(rows, cols, row_ptr, col_idx))
}

/// Builds one batch's CSR part of the indexed im2col matrix: walks the
/// output rows in order and, per `(channel, ky)` block, gathers the input
/// row's spike positions inside the window via the sorted CSR row. For
/// window base `x0 = ox * stride - padding`, pixel `ix` lands at
/// `kx = ix - x0`, column `(ch * k + ky) * k + kx` — emitted ascending, so
/// the part is valid CSR.
fn im2col_index_batch(index: &SpikeIndex, geom: &Im2colGeom, b: usize) -> (Vec<u32>, Vec<u32>) {
    let (c, h, w, k) = (geom.channels, geom.in_h, geom.in_w, geom.kernel);
    let mut row_ptr = Vec::with_capacity(geom.out_h * geom.out_w + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    row_ptr.push(0u32);
    for oy in 0..geom.out_h {
        for ox in 0..geom.out_w {
            let x0 = (ox * geom.stride) as isize - geom.padding as isize;
            let lo = x0.max(0) as u32;
            let hi = (x0 + k as isize).min(w as isize);
            for ch in 0..c {
                for ky in 0..k {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy as usize >= h || hi <= lo as isize {
                        continue;
                    }
                    let src = index.row((b * c + ch) * h + iy as usize);
                    let start = src.partition_point(|&ix| ix < lo);
                    for &ix in &src[start..] {
                        if (ix as isize) >= hi {
                            break;
                        }
                        let kx = (ix as isize - x0) as usize;
                        col_idx.push(((ch * k + ky) * k + kx) as u32);
                    }
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
    }
    (row_ptr, col_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    fn pseudo(i: usize, salt: usize) -> f32 {
        // Deterministic, sign-mixing pattern without an RNG dependency.
        (((i * 2654435761 + salt * 40503) % 2048) as f32 - 1024.0) / 512.0
    }

    #[test]
    fn blocked_matches_naive_on_awkward_shapes() {
        // Shapes straddling every tile boundary: MR, NR and KC tails.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (16, 300, 33),
            (37, 64, 40),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| pseudo(i, 1)).collect();
            let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 2)).collect();
            let fast = matmul(&a, &b, m, k, n);
            let slow = matmul_naive(&a, &b, m, k, n);
            assert_close(&fast, &slow, 1e-5);
        }
    }

    #[test]
    fn blocked_handles_sparse_spike_rows() {
        let (m, k, n) = (9, 70, 13);
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 3) == 0) as u8 as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 3)).collect();
        assert_close(
            &matmul(&a, &b, m, k, n),
            &matmul_naive(&a, &b, m, k, n),
            1e-5,
        );
    }

    #[test]
    fn matmul_into_accumulates() {
        let (m, k, n) = (2, 3, 2);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut out = vec![10.0; m * n];
        matmul_into(&a, &b, &mut out, m, k, n);
        assert_eq!(out, vec![13.0; m * n]);
    }

    #[test]
    fn empty_dims_are_noops() {
        assert!(matmul(&[], &[], 0, 0, 5).is_empty());
        let out = matmul(&[], &[0.0; 6], 0, 2, 3);
        assert!(out.is_empty());
        let out = matmul(&[0.0; 4], &[], 2, 2, 0);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn dimension_mismatch_panics() {
        let _ = matmul(&[0.0; 5], &[0.0; 6], 2, 3, 2);
    }

    fn spike_matrix(len: usize, density: f32, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let r = ((i * 2654435761 + salt * 97) % 1000) as f32 / 1000.0;
                (r < density) as u8 as f32
            })
            .collect()
    }

    #[test]
    fn operand_profile_measures_density_and_binariness() {
        let spikes = spike_matrix(1000, 0.1, 1);
        let profile = OperandProfile::measure(&spikes);
        assert!(profile.binary);
        assert!((profile.density - 0.1).abs() < 0.05);
        assert!(profile.is_event_sparse());

        let dense: Vec<f32> = (0..100).map(|i| pseudo(i, 4)).collect();
        let profile = OperandProfile::measure(&dense);
        assert!(!profile.binary);
        assert!(profile.density > 0.9);
        assert!(!profile.is_event_sparse());

        assert_eq!(OperandProfile::measure(&[]), OperandProfile::dense());
    }

    #[test]
    fn sparse_matmul_matches_dense_across_densities() {
        let (m, k, n) = (13, 90, 17);
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 5)).collect();
        for &density in &[0.0f32, 0.05, 0.5, 1.0] {
            let a = spike_matrix(m * k, density, 9);
            let sparse = matmul_sparse(&a, &b, m, k, n);
            let dense = matmul(&a, &b, m, k, n);
            assert_close(&sparse, &dense, 1e-5);
        }
    }

    #[test]
    fn sparse_matmul_handles_nonbinary_values() {
        let (m, k, n) = (5, 40, 7);
        let a: Vec<f32> = (0..m * k)
            .map(|i| if i % 6 == 0 { pseudo(i, 6) } else { 0.0 })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 7)).collect();
        assert_close(
            &matmul_sparse(&a, &b, m, k, n),
            &matmul_naive(&a, &b, m, k, n),
            1e-5,
        );
    }

    #[test]
    fn dispatch_honours_hints_and_density() {
        let (m, k, n) = (9, 50, 11);
        let sparse_a = spike_matrix(m * k, 0.08, 3);
        let dense_a: Vec<f32> = (0..m * k).map(|i| pseudo(i, 8)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 9)).collect();
        for a in [&sparse_a, &dense_a] {
            let reference = matmul(a, &b, m, k, n);
            for hint in [MatmulHint::Auto, MatmulHint::Dense, MatmulHint::Spikes] {
                assert_close(&matmul_dispatch(a, &b, m, k, n, hint), &reference, 1e-5);
            }
        }
    }

    #[test]
    fn indexed_matmul_is_bit_identical_to_sparse_probe_kernel() {
        let (m, k, n) = (13, 90, 17);
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 5)).collect();
        for &density in &[0.0f32, 0.05, 0.2, 0.6] {
            let a = spike_matrix(m * k, density, 11);
            let index = SpikeIndex::from_dense(&a, k).unwrap();
            let via_index = matmul_spikes_indexed(&index, &b, m, k, n);
            let via_probe = matmul_sparse(&a, &b, m, k, n);
            assert_eq!(via_index, via_probe, "density {density}");
        }
    }

    #[test]
    fn indexed_dispatch_matches_probe_dispatch_decisions() {
        let (m, k, n) = (9, 50, 11);
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, 9)).collect();
        for &density in &[0.05f32, 0.6] {
            let a = spike_matrix(m * k, density, 3);
            let index = SpikeIndex::from_dense(&a, k).unwrap();
            for hint in [MatmulHint::Auto, MatmulHint::Dense, MatmulHint::Spikes] {
                let with_index = matmul_dispatch_indexed(&a, Some(&index), &b, m, k, n, hint);
                let without = matmul_dispatch(&a, &b, m, k, n, hint);
                assert_eq!(with_index, without, "density {density}, hint {hint:?}");
            }
        }
    }

    #[test]
    fn indexed_im2col_matches_dense_lowering_and_emits_valid_index() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let (batch, channels, in_h, in_w, kernel) = (2, 3, 6, 5, 3);
            let out_h = (in_h + 2 * padding - kernel) / stride + 1;
            let out_w = (in_w + 2 * padding - kernel) / stride + 1;
            let geom = Im2colGeom {
                batch,
                channels,
                in_h,
                in_w,
                kernel,
                stride,
                padding,
                out_h,
                out_w,
            };
            let input = spike_matrix(batch * channels * in_h * in_w, 0.25, 17);
            let index = SpikeIndex::from_dense(&input, in_w).unwrap();
            let mut dense_out = vec![0.0f32; geom.rows() * geom.cols()];
            im2col_into(&input, &mut dense_out, &geom);
            let (indexed_out, out_index) = im2col_indexed(&index, &geom);
            assert_eq!(dense_out, indexed_out, "stride {stride} padding {padding}");
            assert!(
                out_index.matches_dense(&indexed_out),
                "stride {stride} padding {padding}: output index diverges"
            );
        }
    }

    #[test]
    fn sparse_im2col_matches_dense_lowering() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let (batch, channels, in_h, in_w, kernel) = (2, 3, 6, 5, 3);
            let out_h = (in_h + 2 * padding - kernel) / stride + 1;
            let out_w = (in_w + 2 * padding - kernel) / stride + 1;
            let geom = Im2colGeom {
                batch,
                channels,
                in_h,
                in_w,
                kernel,
                stride,
                padding,
                out_h,
                out_w,
            };
            let input = spike_matrix(batch * channels * in_h * in_w, 0.2, 13);
            let mut dense_out = vec![0.0f32; geom.rows() * geom.cols()];
            im2col_into(&input, &mut dense_out, &geom);
            let mut sparse_out = vec![0.0f32; geom.rows() * geom.cols()];
            im2col_sparse_into(&input, &mut sparse_out, &geom);
            assert_eq!(
                dense_out, sparse_out,
                "stride {stride} padding {padding} mismatch"
            );
        }
    }
}
