//! Compressed spike-structure index (CSR) for binary tensors.
//!
//! Activations downstream of a spiking layer are `{0, 1}` tensors that are
//! overwhelmingly zero. The engine previously recovered that structure by
//! *probing*: every consumer re-scanned the dense buffer (the density probe in
//! the convolution layers, the per-row nonzero scratch lists in the systolic
//! executor — rebuilt once per fault scenario). A [`SpikeIndex`] makes the
//! event stream first-class instead: the layer that fires the spikes records
//! their positions once, in CSR form, and every consumer walks the index.
//!
//! # Representation rules
//!
//! * The index is a **companion view** of a dense [`crate::Tensor`], not a
//!   replacement: the dense buffer stays the single source of truth, which is
//!   what keeps every dense fallback (training, engine-off baselines, layers
//!   that never learned about spikes) bit-identical for free.
//! * The matrix view is *rows of the last dimension*: a `[m, k]` activation
//!   matrix indexes as `m` rows of width `k`, and an `[N, C, H, W]` spike
//!   frame as `N*C*H` pixel rows of width `W` — exactly the row walks the
//!   matmul and im2col consumers perform.
//! * An index is only ever attached to **binary** tensors (every nonzero is
//!   exactly `1.0`), so consumers may treat a listed position as "add the
//!   weight row" with no multiplication, and the index alone determines the
//!   tensor's nonzero content.
//! * Any mutable access to the tensor's data drops the index
//!   (see [`crate::Tensor::data_mut`]); a stale index cannot survive a write.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// CSR-style row index of the nonzero (spike) positions of a binary tensor.
///
/// # Example
///
/// ```
/// use falvolt_tensor::SpikeIndex;
///
/// let data = [0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
/// let index = SpikeIndex::from_dense(&data, 3).unwrap();
/// assert_eq!(index.rows(), 2);
/// assert_eq!(index.nnz(), 3);
/// assert_eq!(index.row(0), &[1]);
/// assert_eq!(index.row(1), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeIndex {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx`.
    row_ptr: Vec<u32>,
    /// Column of every nonzero, sorted ascending within each row.
    col_idx: Vec<u32>,
}

impl SpikeIndex {
    /// Builds the index by scanning a dense row-major buffer of `rows x cols`
    /// (`rows` inferred from the length). Returns `None` when any nonzero is
    /// not exactly `1.0` — only genuinely binary tensors may carry an index.
    ///
    /// # Panics
    ///
    /// Panics when `cols == 0` or `data.len()` is not a multiple of `cols`.
    pub fn from_dense(data: &[f32], cols: usize) -> Option<Self> {
        assert!(cols > 0, "spike index needs a non-zero row width");
        assert_eq!(
            data.len() % cols,
            0,
            "data length {} is not a multiple of the row width {cols}",
            data.len()
        );
        let rows = data.len() / cols;
        let mut row_ptr = Vec::with_capacity(rows + 1);
        // Paper-typical spike densities are well under 25%; reserving a
        // quarter of the element count avoids regrowth in the common case.
        let mut col_idx = Vec::with_capacity(data.len() / 4 + 8);
        row_ptr.push(0u32);
        for row in data.chunks_exact(cols) {
            for (c, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                if v != 1.0 {
                    return None;
                }
                col_idx.push(c as u32);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Some(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
        })
    }

    /// Assembles an index from raw CSR parts (used by kernels that derive one
    /// index from another, e.g. the im2col index transform).
    ///
    /// # Panics
    ///
    /// Panics when the parts are inconsistent (wrong `row_ptr` length, offsets
    /// not monotone, or columns out of range) — derived indexes are built by
    /// trusted kernels and must be exact.
    pub fn from_parts(rows: usize, cols: usize, row_ptr: Vec<u32>, col_idx: Vec<u32>) -> Self {
        assert_eq!(
            row_ptr.len(),
            rows + 1,
            "row_ptr must have rows + 1 entries"
        );
        assert_eq!(*row_ptr.first().unwrap_or(&1), 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap_or(&1) as usize,
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(col_idx.iter().all(|&c| (c as usize) < cols));
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
        }
    }

    /// Number of index rows (the product of every dimension but the last).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width (the tensor's last dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements of the indexed tensor.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` for an index over zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of nonzero (spike) positions.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of nonzero elements, in `[0, 1]` (`1.0` for empty tensors,
    /// matching [`crate::kernels::OperandProfile::dense`]).
    pub fn density(&self) -> f32 {
        if self.is_empty() {
            return 1.0;
        }
        self.nnz() as f32 / self.len() as f32
    }

    /// The sorted nonzero columns of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> &[u32] {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        &self.col_idx[start..end]
    }

    /// `true` when the index lists exactly the nonzeros of `data` (and all of
    /// them are `1.0`). Used by consumers' debug assertions.
    pub fn matches_dense(&self, data: &[f32]) -> bool {
        if data.len() != self.len() {
            return false;
        }
        let mut next = 0usize;
        for (r, row) in data.chunks_exact(self.cols.max(1)).enumerate() {
            let cols = self.row(r);
            let mut ci = 0usize;
            for (c, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                if v != 1.0 || ci >= cols.len() || cols[ci] as usize != c {
                    return false;
                }
                ci += 1;
            }
            if ci != cols.len() {
                return false;
            }
            next += cols.len();
        }
        next == self.nnz()
    }

    /// Merges every `group` consecutive rows into one row of width
    /// `group * cols` — the index counterpart of flattening `[N, C, H, W]`
    /// into `[N, C*H*W]` (with `group = C*H`). Columns stay sorted because
    /// source rows are visited in order and offsets grow with the row.
    ///
    /// # Panics
    ///
    /// Panics when `group` is zero or does not divide the row count.
    pub fn flatten_rows(&self, group: usize) -> SpikeIndex {
        assert!(group > 0, "row group must be non-zero");
        assert_eq!(
            self.rows % group,
            0,
            "row group {group} does not divide {} rows",
            self.rows
        );
        let out_rows = self.rows / group;
        let out_cols = group * self.cols;
        let mut row_ptr = Vec::with_capacity(out_rows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        row_ptr.push(0u32);
        for out_row in 0..out_rows {
            for within in 0..group {
                let src = out_row * group + within;
                let offset = (within * self.cols) as u32;
                for &c in self.row(src) {
                    col_idx.push(offset + c);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        SpikeIndex::from_parts(out_rows, out_cols, row_ptr, col_idx)
    }
}

/// Shared handle to a spike index, the form [`crate::Tensor`] carries.
pub type SharedSpikeIndex = Arc<SpikeIndex>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_indexes_binary_rows() {
        let data = [1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let idx = SpikeIndex::from_dense(&data, 4).unwrap();
        assert_eq!(idx.rows(), 2);
        assert_eq!(idx.cols(), 4);
        assert_eq!(idx.nnz(), 4);
        assert_eq!(idx.row(0), &[0]);
        assert_eq!(idx.row(1), &[1, 2, 3]);
        assert!((idx.density() - 0.5).abs() < 1e-6);
        assert!(idx.matches_dense(&data));
    }

    #[test]
    fn from_dense_rejects_non_binary() {
        assert!(SpikeIndex::from_dense(&[0.0, 0.5], 2).is_none());
        assert!(SpikeIndex::from_dense(&[2.0], 1).is_none());
    }

    #[test]
    fn matches_dense_detects_divergence() {
        let data = [0.0, 1.0, 1.0, 0.0];
        let idx = SpikeIndex::from_dense(&data, 2).unwrap();
        assert!(idx.matches_dense(&data));
        assert!(!idx.matches_dense(&[1.0, 1.0, 1.0, 0.0]));
        assert!(!idx.matches_dense(&[0.0, 0.0, 1.0, 0.0]));
        assert!(!idx.matches_dense(&[0.0, 1.0, 1.0]));
    }

    #[test]
    fn flatten_rows_concatenates_groups() {
        // Two samples of 2x3 rows -> two rows of width 6.
        let data = [
            0.0, 1.0, 0.0, /* | */ 1.0, 0.0, 1.0, // sample 0
            1.0, 0.0, 0.0, /* | */ 0.0, 0.0, 0.0, // sample 1
        ];
        let idx = SpikeIndex::from_dense(&data, 3).unwrap();
        let flat = idx.flatten_rows(2);
        assert_eq!(flat.rows(), 2);
        assert_eq!(flat.cols(), 6);
        assert_eq!(flat.row(0), &[1, 3, 5]);
        assert_eq!(flat.row(1), &[0]);
        assert!(flat.matches_dense(&data));
    }

    #[test]
    fn empty_rows_and_all_zero_tensors_are_fine() {
        let idx = SpikeIndex::from_dense(&[0.0; 6], 3).unwrap();
        assert_eq!(idx.nnz(), 0);
        assert_eq!(idx.row(1), &[] as &[u32]);
        assert_eq!(idx.density(), 0.0);
    }
}
