//! Shape handling for row-major dense tensors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// A shape is an ordered list of dimension extents. The empty shape `[]`
/// denotes a scalar with exactly one element.
///
/// # Example
///
/// ```
/// use falvolt_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Self { dims }
    }

    /// Returns the dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the row-major strides of the shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index rank or any
    /// coordinate exceeds the shape.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut offset = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            offset += i * s;
        }
        Ok(offset)
    }

    /// Returns the extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_ndim() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndim(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ndim(), 0);
    }

    #[test]
    fn zero_extent_dim_is_empty() {
        let s = Shape::new(vec![3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::new(vec![5]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_computes_row_major_position() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn conversion_from_arrays_and_slices() {
        let a: Shape = [2, 3].into();
        let b: Shape = vec![2, 3].into();
        let c: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn display_shows_dims() {
        let s = Shape::new(vec![4, 5]);
        assert_eq!(s.to_string(), "[4, 5]");
    }
}
