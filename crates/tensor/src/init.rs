//! Random tensor initializers.
//!
//! The SNN layers use Kaiming-style initialisation (the PLIF reference
//! implementation the paper builds on does the same); the synthetic datasets
//! use uniform noise. All initialisers take an explicit RNG so experiments are
//! reproducible from a seed.

use crate::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Samples every element from `U(low, high)`.
///
/// # Example
///
/// ```
/// use falvolt_tensor::init;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = init::uniform(&[4, 4], -1.0, 1.0, &mut rng);
/// assert!(t.data().iter().all(|v| (-1.0..1.0).contains(v)));
/// ```
pub fn uniform(shape: &[usize], low: f32, high: f32, rng: &mut impl Rng) -> Tensor {
    let dist = Uniform::new(low, high);
    Tensor::from_fn(shape, |_| dist.sample(rng))
}

/// Samples every element from a normal distribution `N(mean, std^2)` using the
/// Box-Muller transform (avoids needing `rand_distr`).
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| mean + std * sample_standard_normal(rng))
}

/// Kaiming/He uniform initialisation for a weight of shape
/// `[fan_out, fan_in]`: `U(-bound, bound)` with `bound = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform(fan_out: usize, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be non-zero");
    let bound = (6.0f32 / fan_in as f32).sqrt();
    uniform(&[fan_out, fan_in], -bound, bound, rng)
}

/// Samples one standard-normal value via Box-Muller.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(a.data().iter().all(|v| (-0.5..0.5).contains(v)));
        let mut rng2 = StdRng::seed_from_u64(42);
        let b = uniform(&[100], -0.5, 0.5, &mut rng2);
        assert_eq!(a, b, "same seed must reproduce the same tensor");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = normal(&[10_000], 2.0, 0.5, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 0.25).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_uniform(8, 600, &mut rng);
        let bound = (6.0f32 / 600.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        assert_eq!(t.shape(), &[8, 600]);
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn kaiming_rejects_zero_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = kaiming_uniform(8, 0, &mut rng);
    }
}
