//! Cooperative cancellation shared by every execution layer.
//!
//! A [`CancelToken`] is a cheap, cloneable flag a scheduler hands down into
//! long-running work (campaign cells, scenario evaluations, systolic fold
//! chains). Workers poll [`CancelToken::is_cancelled`] at natural
//! granularity boundaries and return [`crate::TensorError::Cancelled`]
//! instead of finishing; the layer that owns the work item translates that
//! into a *skipped* result rather than a failure.
//!
//! The token lives in `falvolt_tensor` because it must be visible both to
//! the systolic executor (fold-chain granularity checks) and to the
//! campaign/evaluation layers above, and this crate is their only common
//! dependency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between a scheduler and its
/// workers.
///
/// Cloning shares the underlying flag: cancelling any clone cancels them
/// all. The default token is never cancelled and costs one relaxed atomic
/// load per poll.
///
/// # Example
///
/// ```
/// use falvolt_tensor::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// let worker = token.clone();
/// assert!(!worker.is_cancelled());
/// token.cancel();
/// assert!(worker.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag; every clone observes it on its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Polls the flag as a `Result`: `Err(TensorError::Cancelled)` once
    /// tripped, so deep loops can use `token.check()?`.
    pub fn check(&self) -> Result<(), crate::TensorError> {
        if self.is_cancelled() {
            Err(crate::TensorError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(token.check().is_ok());
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(crate::TensorError::Cancelled));
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
