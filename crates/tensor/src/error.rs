//! Error type shared by all tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied
    /// by the shape.
    DataLengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The tensor does not have the number of dimensions the operation needs.
    RankMismatch {
        /// Expected number of dimensions.
        expected: usize,
        /// Actual number of dimensions.
        actual: usize,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A convolution/pooling configuration is invalid for the given input.
    InvalidConvConfig {
        /// Human readable description of what was wrong.
        reason: String,
    },
    /// A generic invalid-argument error with a description.
    InvalidArgument {
        /// Human readable description of what was wrong.
        reason: String,
    },
    /// The operation observed a tripped [`crate::cancel::CancelToken`] and
    /// stopped cooperatively. Not a failure of the computation itself:
    /// schedulers translate it into a skipped work item, never a process
    /// abort.
    Cancelled,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected a rank-{expected} tensor, got rank {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor with {from} elements into shape with {to} elements"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidConvConfig { reason } => {
                write!(f, "invalid convolution configuration: {reason}")
            }
            TensorError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            TensorError::Cancelled => write!(f, "operation cancelled cooperatively"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = TensorError::DataLengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(err.to_string().contains('6'));
        assert!(err.to_string().contains('5'));

        let err = TensorError::MatmulDimMismatch {
            left_cols: 3,
            right_rows: 4,
        };
        assert!(err.to_string().contains("columns"));

        let err = TensorError::InvalidConvConfig {
            reason: "kernel larger than input".into(),
        };
        assert!(err.to_string().contains("kernel larger"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
