//! Runtime-dispatched SIMD kernel substrate.
//!
//! The workspace's hot loops (the blocked dense tile, the spike row-add
//! kernels, the systolic executor's quantized accumulator chains) are written
//! once as generic *lane-block* code over a [`SimdLevel`] and monomorphised
//! per instruction set behind [`dispatch`]. Each level fixes the lane counts
//! (`[f32; W]` / `[i64; L]` blocks) and every lane operation is an
//! `#[inline(always)]` fixed-trip loop, so when a kernel body is inlined into
//! one of the `#[target_feature]` trampolines the compiler vectorises it with
//! that ISA's registers — no per-intrinsic code, no external crates, and a
//! fallback level that compiles on every target.
//!
//! # Dispatch rules
//!
//! The active [`Isa`] is resolved once per process (first use) as:
//!
//! 1. a programmatic override installed via [`force`] / [`set_forced`]
//!    (tests and benches), else
//! 2. the `FALVOLT_SIMD` environment variable (`auto`, `scalar`, `avx2`,
//!    `avx512`, `neon`), else
//! 3. the best instruction set the CPU reports (AVX-512 > AVX2 on `x86_64`,
//!    NEON on `aarch64`, scalar otherwise).
//!
//! Requests for an ISA the CPU does not support are clamped to [`Isa::Scalar`]
//! (with a one-time warning for the environment variable), so [`dispatch`]
//! never executes instructions the hardware lacks.
//!
//! # Numerical contract
//!
//! * Integer lanes (`i64` add/clamp chains, mask application) are
//!   **bit-identical** to the scalar code on every level: each output element
//!   keeps its own accumulator and the per-element operation order is
//!   unchanged — lanes only run independent elements side by side.
//! * Float kernels that use [`SimdLevel::f32_muladd`] fuse the
//!   multiply-add on vector levels, so they may differ from the scalar
//!   kernels by the usual fused-rounding reassociation — within the
//!   workspace-wide `1e-5` relative tolerance that all dense-kernel tests
//!   already allow. Kernels that need bit-identity with their scalar
//!   counterparts (the spike row-adds) use separate mul/add lanes instead.

// The only unsafe in the crate: calling the `#[target_feature]` trampolines
// after runtime detection has proven the features present.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// An instruction set the kernel layer can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// The original scalar kernels (always available; also the clamp target
    /// for unsupported requests).
    Scalar,
    /// AVX2 + FMA: 8 `f32` lanes, 4 `i64` lanes.
    Avx2,
    /// AVX-512 (F/DQ/BW/VL): 16 `f32` lanes, 8 `i64` lanes.
    Avx512,
    /// AArch64 NEON: 4 `f32` lanes, 2 `i64` lanes.
    Neon,
}

impl Isa {
    /// Stable lower-case name (the `FALVOLT_SIMD` vocabulary and the label
    /// recorded in bench entries).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Parses [`Isa::name`] (case-insensitive). `None` for unknown names
    /// (including `auto`, which is not an ISA).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "neon" => Some(Isa::Neon),
            _ => None,
        }
    }

    /// `f32` lanes of this ISA's level.
    pub fn f32_lanes(self) -> usize {
        match self {
            Isa::Scalar => Fallback::F32_LANES,
            Isa::Avx2 => Avx2Level::F32_LANES,
            Isa::Avx512 => Avx512Level::F32_LANES,
            Isa::Neon => NeonLevel::F32_LANES,
        }
    }

    /// `i64` lanes of this ISA's level.
    pub fn i64_lanes(self) -> usize {
        match self {
            Isa::Scalar => Fallback::I64_LANES,
            Isa::Avx2 => Avx2Level::I64_LANES,
            Isa::Avx512 => Avx512Level::I64_LANES,
            Isa::Neon => NeonLevel::I64_LANES,
        }
    }

    /// `true` when the running CPU can execute this ISA.
    pub fn supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx2 => cpu_has_avx2(),
            Isa::Avx512 => cpu_has_avx512(),
            Isa::Neon => cpu_has_neon(),
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx2() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512bw")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx512() -> bool {
    false
}

#[cfg(target_arch = "aarch64")]
fn cpu_has_neon() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

#[cfg(not(target_arch = "aarch64"))]
fn cpu_has_neon() -> bool {
    false
}

/// The best ISA the running CPU supports.
pub fn detected() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if cpu_has_avx512() {
            Isa::Avx512
        } else if cpu_has_avx2() {
            Isa::Avx2
        } else if cpu_has_neon() {
            Isa::Neon
        } else {
            Isa::Scalar
        }
    })
}

/// Every ISA the running CPU supports (always includes [`Isa::Scalar`]), in
/// ascending width order — what the `simd == scalar` property tests iterate.
pub fn available() -> Vec<Isa> {
    [Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|isa| isa.supported())
        .collect()
}

/// The `FALVOLT_SIMD` choice, resolved once. `None` means auto.
fn env_choice() -> Option<Isa> {
    static CHOICE: OnceLock<Option<Isa>> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        let raw = std::env::var("FALVOLT_SIMD").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("auto") {
            return None;
        }
        match Isa::from_name(trimmed) {
            Some(isa) if isa.supported() => Some(isa),
            Some(isa) => {
                eprintln!(
                    "falvolt: FALVOLT_SIMD={} not supported by this CPU; using scalar kernels",
                    isa.name()
                );
                Some(Isa::Scalar)
            }
            None => {
                eprintln!("falvolt: unknown FALVOLT_SIMD value {trimmed:?}; using auto dispatch");
                None
            }
        }
    })
}

/// Programmatic override: 0 = none, otherwise `isa as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn encode_force(isa: Option<Isa>) -> u8 {
    match isa {
        None => 0,
        Some(Isa::Scalar) => 1,
        Some(Isa::Avx2) => 2,
        Some(Isa::Avx512) => 3,
        Some(Isa::Neon) => 4,
    }
}

fn decode_force(code: u8) -> Option<Isa> {
    match code {
        1 => Some(Isa::Scalar),
        2 => Some(Isa::Avx2),
        3 => Some(Isa::Avx512),
        4 => Some(Isa::Neon),
        _ => None,
    }
}

/// Installs (or clears, with `None`) a process-wide ISA override that takes
/// precedence over `FALVOLT_SIMD` and auto detection. Unsupported requests
/// clamp to scalar at resolution time. Prefer the RAII [`force`] in tests.
pub fn set_forced(isa: Option<Isa>) {
    FORCED.store(encode_force(isa), Ordering::Release);
}

/// The currently installed programmatic override, if any.
pub fn forced() -> Option<Isa> {
    decode_force(FORCED.load(Ordering::Acquire))
}

/// RAII override guard: restores the previous override when dropped.
///
/// The override is process-global, so concurrent guards forcing different
/// ISAs interleave — callers that need determinism (the property tests)
/// serialise guard lifetimes.
#[must_use = "the override lasts only while the guard is alive"]
#[derive(Debug)]
pub struct ForceGuard {
    prev: u8,
}

/// Forces `isa` (or clears the override with `None`) for the lifetime of the
/// returned guard.
pub fn force(isa: Option<Isa>) -> ForceGuard {
    let prev = FORCED.swap(encode_force(isa), Ordering::AcqRel);
    ForceGuard { prev }
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        FORCED.store(self.prev, Ordering::Release);
    }
}

/// Serialises tests around the process-global dispatch override: hold the
/// returned guard for the whole test in (a) any test that installs an
/// override and (b) any test asserting cross-call bit-identity of *float*
/// kernels, which an override flipping mid-test would break (the integer
/// chains are bit-identical across ISAs by construction). Poisoning is
/// ignored so one failing test does not cascade.
pub fn test_override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The ISA kernels dispatch to right now (override, then environment, then
/// detection; always supported by the running CPU).
pub fn active() -> Isa {
    let requested = forced().or_else(env_choice).unwrap_or_else(detected);
    if requested.supported() {
        requested
    } else {
        Isa::Scalar
    }
}

// ---------------------------------------------------------------------------
// Lane levels
// ---------------------------------------------------------------------------

/// One ISA's lane geometry plus the lane operations the kernels are written
/// against. Implementations are plain arrays with fixed-trip loops; the
/// `#[target_feature]` trampolines give the compiler license to turn them
/// into vector instructions.
pub trait SimdLevel {
    /// Block of `F32_LANES` floats.
    type F32: Copy;
    /// Block of `I64_LANES` accumulator words.
    type I64: Copy;
    /// Block of `I64_LANES` floats (the float block matching the integer
    /// lane count, for quantize/dequantize conversions).
    type F32H: Copy;
    /// Float lanes per block.
    const F32_LANES: usize;
    /// Integer lanes per block.
    const I64_LANES: usize;

    /// All-zero float block.
    fn f32_zero() -> Self::F32;
    /// Broadcast `v` to every lane.
    fn f32_splat(v: f32) -> Self::F32;
    /// Loads the first `F32_LANES` elements of `src`.
    fn f32_load(src: &[f32]) -> Self::F32;
    /// Stores the block to the first `F32_LANES` elements of `dst`.
    fn f32_store(v: Self::F32, dst: &mut [f32]);
    /// Lane-wise `a + b`.
    fn f32_add(a: Self::F32, b: Self::F32) -> Self::F32;
    /// Lane-wise `a * b`.
    fn f32_mul(a: Self::F32, b: Self::F32) -> Self::F32;
    /// Lane-wise multiply-add `a * b + acc` — fused on vector levels (see the
    /// module-level tolerance note), unfused on [`Fallback`].
    fn f32_muladd(a: Self::F32, b: Self::F32, acc: Self::F32) -> Self::F32;
    /// `dst[..F32_LANES] += v` (load, add, store) with unfused rounding —
    /// bit-identical to the scalar `+=` loop.
    fn f32_accum(dst: &mut [f32], v: Self::F32);

    /// All-zero accumulator block.
    fn i64_zero() -> Self::I64;
    /// Lane-wise `a + b`.
    fn i64_add(a: Self::I64, b: Self::I64) -> Self::I64;
    /// Lane-wise `v.clamp(lo, hi)`.
    fn i64_clamp(v: Self::I64, lo: i64, hi: i64) -> Self::I64;
    /// Loads the first `I64_LANES` words of `src`.
    fn i64_load(src: &[i64]) -> Self::I64;
    /// Sign-extends the first `I64_LANES` elements of `src`.
    fn i64_load_i32(src: &[i32]) -> Self::I64;
    /// Builds a block from a per-lane generator (strided gathers).
    fn i64_from_fn(f: impl FnMut(usize) -> i64) -> Self::I64;
    /// Applies a scalar function to every lane (exact mask application).
    fn i64_map(v: Self::I64, f: impl FnMut(i64) -> i64) -> Self::I64;
    /// Reads lane `lane`.
    fn i64_extract(v: Self::I64, lane: usize) -> i64;

    /// Loads the first `I64_LANES` floats of `src`.
    fn f32h_load(src: &[f32]) -> Self::F32H;
    /// Lane-wise `v * s` (unfused — matches the scalar contribution product
    /// bit for bit).
    fn f32h_scale(v: Self::F32H, s: f32) -> Self::F32H;
    /// Lane-wise fixed-point quantization
    /// `(x * scale).round().clamp(min_raw, max_raw) as i64` — exactly
    /// `QFormat::quantize` per lane (widened to the accumulator word).
    fn f32h_quantize(x: Self::F32H, scale: f32, min_raw: f32, max_raw: f32) -> Self::I64;
    /// Stores `(lane as i32 as f32) * resolution` per lane — exactly
    /// `QFormat::dequantize` of an in-range accumulator word.
    fn i64_dequantize_store(acc: Self::I64, resolution: f32, dst: &mut [f32]);
}

macro_rules! simd_level {
    ($(#[$doc:meta])* $name:ident, f32x $fw:literal, i64x $iw:literal, fused: $fused:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name;

        impl SimdLevel for $name {
            type F32 = [f32; $fw];
            type I64 = [i64; $iw];
            type F32H = [f32; $iw];
            const F32_LANES: usize = $fw;
            const I64_LANES: usize = $iw;

            #[inline(always)]
            fn f32_zero() -> Self::F32 {
                [0.0; $fw]
            }

            #[inline(always)]
            fn f32_splat(v: f32) -> Self::F32 {
                [v; $fw]
            }

            #[inline(always)]
            fn f32_load(src: &[f32]) -> Self::F32 {
                src[..$fw].try_into().expect("block width")
            }

            #[inline(always)]
            fn f32_store(v: Self::F32, dst: &mut [f32]) {
                dst[..$fw].copy_from_slice(&v);
            }

            #[inline(always)]
            fn f32_add(a: Self::F32, b: Self::F32) -> Self::F32 {
                let mut out = [0.0; $fw];
                for i in 0..$fw {
                    out[i] = a[i] + b[i];
                }
                out
            }

            #[inline(always)]
            fn f32_mul(a: Self::F32, b: Self::F32) -> Self::F32 {
                let mut out = [0.0; $fw];
                for i in 0..$fw {
                    out[i] = a[i] * b[i];
                }
                out
            }

            #[inline(always)]
            fn f32_muladd(a: Self::F32, b: Self::F32, acc: Self::F32) -> Self::F32 {
                let mut out = [0.0; $fw];
                for i in 0..$fw {
                    out[i] = if $fused {
                        a[i].mul_add(b[i], acc[i])
                    } else {
                        a[i] * b[i] + acc[i]
                    };
                }
                out
            }

            #[inline(always)]
            fn f32_accum(dst: &mut [f32], v: Self::F32) {
                let dst: &mut [f32; $fw] = (&mut dst[..$fw]).try_into().expect("block width");
                for i in 0..$fw {
                    dst[i] += v[i];
                }
            }

            #[inline(always)]
            fn i64_zero() -> Self::I64 {
                [0; $iw]
            }

            #[inline(always)]
            fn i64_add(a: Self::I64, b: Self::I64) -> Self::I64 {
                let mut out = [0; $iw];
                for i in 0..$iw {
                    out[i] = a[i] + b[i];
                }
                out
            }

            #[inline(always)]
            fn i64_clamp(v: Self::I64, lo: i64, hi: i64) -> Self::I64 {
                let mut out = [0; $iw];
                for i in 0..$iw {
                    out[i] = if v[i] < lo {
                        lo
                    } else if v[i] > hi {
                        hi
                    } else {
                        v[i]
                    };
                }
                out
            }

            #[inline(always)]
            fn i64_load(src: &[i64]) -> Self::I64 {
                src[..$iw].try_into().expect("block width")
            }

            #[inline(always)]
            fn i64_load_i32(src: &[i32]) -> Self::I64 {
                let src: &[i32; $iw] = src[..$iw].try_into().expect("block width");
                let mut out = [0i64; $iw];
                for i in 0..$iw {
                    out[i] = i64::from(src[i]);
                }
                out
            }

            #[inline(always)]
            fn i64_from_fn(mut f: impl FnMut(usize) -> i64) -> Self::I64 {
                let mut out = [0i64; $iw];
                for (i, lane) in out.iter_mut().enumerate() {
                    *lane = f(i);
                }
                out
            }

            #[inline(always)]
            fn i64_map(v: Self::I64, mut f: impl FnMut(i64) -> i64) -> Self::I64 {
                let mut out = [0i64; $iw];
                for i in 0..$iw {
                    out[i] = f(v[i]);
                }
                out
            }

            #[inline(always)]
            fn i64_extract(v: Self::I64, lane: usize) -> i64 {
                v[lane]
            }

            #[inline(always)]
            fn f32h_load(src: &[f32]) -> Self::F32H {
                src[..$iw].try_into().expect("block width")
            }

            #[inline(always)]
            fn f32h_scale(v: Self::F32H, s: f32) -> Self::F32H {
                let mut out = [0.0; $iw];
                for i in 0..$iw {
                    out[i] = v[i] * s;
                }
                out
            }

            #[inline(always)]
            fn f32h_quantize(x: Self::F32H, scale: f32, min_raw: f32, max_raw: f32) -> Self::I64 {
                let mut out = [0i64; $iw];
                for i in 0..$iw {
                    let scaled = (x[i] * scale).round();
                    out[i] = scaled.clamp(min_raw, max_raw) as i64;
                }
                out
            }

            #[inline(always)]
            fn i64_dequantize_store(acc: Self::I64, resolution: f32, dst: &mut [f32]) {
                let dst: &mut [f32; $iw] = (&mut dst[..$iw]).try_into().expect("block width");
                for i in 0..$iw {
                    dst[i] = (acc[i] as i32) as f32 * resolution;
                }
            }
        }
    };
}

simd_level!(
    /// Target-independent fallback level (4/2 lanes): what [`dispatch`] runs
    /// when the active ISA is [`Isa::Scalar`] and an op is dispatched anyway.
    /// Unfused multiply-add, so results match the scalar kernels bit for bit
    /// wherever they already agree lane-by-lane.
    Fallback, f32x 4, i64x 2, fused: false
);
simd_level!(
    /// AVX2 + FMA level: 8 `f32` lanes, 4 `i64` lanes.
    Avx2Level, f32x 8, i64x 4, fused: true
);
simd_level!(
    /// AVX-512 level: 16 `f32` lanes, 8 `i64` lanes.
    Avx512Level, f32x 16, i64x 8, fused: true
);
simd_level!(
    /// AArch64 NEON level: 4 `f32` lanes, 2 `i64` lanes.
    NeonLevel, f32x 4, i64x 2, fused: true
);

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// A kernel written once over a [`SimdLevel`], monomorphised per ISA by
/// [`dispatch`]. Implementations mark `run` `#[inline(always)]` so the body
/// lands inside the `#[target_feature]` trampoline and is compiled with that
/// ISA's instructions.
pub trait SimdOp {
    /// The kernel's result.
    type Output;
    /// Runs the kernel at level `S`.
    fn run<S: SimdLevel>(self) -> Self::Output;
}

// SAFETY: callers must have proven AVX2+FMA support via runtime detection;
// the fn stays private so `dispatch` below is the only caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn run_avx2<O: SimdOp>(op: O) -> O::Output {
    op.run::<Avx2Level>()
}

// SAFETY: callers must have proven the AVX-512 F/DQ/BW/VL feature set via
// runtime detection; the fn stays private so `dispatch` is the only caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vl")]
unsafe fn run_avx512<O: SimdOp>(op: O) -> O::Output {
    op.run::<Avx512Level>()
}

// SAFETY: callers must have proven NEON support via runtime detection; the
// fn stays private so `dispatch` is the only caller.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn run_neon<O: SimdOp>(op: O) -> O::Output {
    op.run::<NeonLevel>()
}

/// Runs `op` at the [`active`] ISA's level.
///
/// Kernels with a dedicated scalar implementation branch on [`active`]
/// *before* building an op; an op dispatched while the active ISA is
/// [`Isa::Scalar`] (or on a target with no vector trampoline) runs at the
/// [`Fallback`] level, which is always valid.
pub fn dispatch<O: SimdOp>(op: O) -> O::Output {
    // `active()` only returns an ISA whose required CPU features were
    // verified by runtime detection (unsupported requests clamp to
    // `Isa::Scalar`), so each trampoline call below is sound.
    match active() {
        // SAFETY: Avx512 implies detection proved avx512f/dq/bw/vl.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { run_avx512(op) },
        // SAFETY: Avx2 implies detection proved avx2+fma.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { run_avx2(op) },
        // SAFETY: Neon implies detection proved neon.
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { run_neon(op) },
        _ => op.run::<Fallback>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The override is process-global and the test harness is threaded, so
    // tests that install one serialise on `test_override_lock`.

    struct SumSq<'a>(&'a [f32]);

    impl SimdOp for SumSq<'_> {
        type Output = f32;

        #[inline(always)]
        fn run<S: SimdLevel>(self) -> f32 {
            let mut acc = S::f32_zero();
            let mut chunks = self.0.chunks_exact(S::F32_LANES);
            for chunk in &mut chunks {
                let v = S::f32_load(chunk);
                acc = S::f32_muladd(v, v, acc);
            }
            let mut out = vec![0.0f32; S::F32_LANES];
            S::f32_store(acc, &mut out);
            out.iter().sum::<f32>() + chunks.remainder().iter().map(|v| v * v).sum::<f32>()
        }
    }

    #[test]
    fn dispatch_runs_on_every_available_isa() {
        let _lock = test_override_lock();
        let data: Vec<f32> = (0..103).map(|i| (i as f32) * 0.25 - 12.0).collect();
        let reference: f32 = data.iter().map(|v| v * v).sum();
        for isa in available() {
            let guard = force(Some(isa));
            assert_eq!(active(), isa);
            let got = dispatch(SumSq(&data));
            drop(guard);
            let rel = (got - reference).abs() / reference.abs().max(1.0);
            assert!(rel < 1e-5, "{isa}: {got} vs {reference}");
        }
    }

    #[test]
    fn force_guard_restores_previous_override() {
        let _lock = test_override_lock();
        let outer = force(Some(Isa::Scalar));
        assert_eq!(active(), Isa::Scalar);
        {
            let _inner = force(None);
            assert_eq!(forced(), None);
        }
        assert_eq!(forced(), Some(Isa::Scalar));
        drop(outer);
    }

    #[test]
    fn names_round_trip() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            assert_eq!(Isa::from_name(isa.name()), Some(isa));
        }
        assert_eq!(Isa::from_name("auto"), None);
        assert_eq!(Isa::from_name("sse9"), None);
    }

    #[test]
    fn integer_lanes_are_bit_identical_across_levels() {
        // The i64 chain contract: add + clamp lanes match scalar exactly.
        let qs: Vec<i64> = (0..57).map(|i| (i * 7919 % 900) - 450).collect();
        let (lo, hi) = (-512i64, 511i64);
        let scalar: Vec<i64> = {
            let mut acc = 0i64;
            qs.iter()
                .map(|&q| {
                    acc = (acc + q).clamp(lo, hi);
                    acc
                })
                .collect()
        };
        struct Chain<'a> {
            qs: &'a [i64],
            lo: i64,
            hi: i64,
        }
        impl SimdOp for Chain<'_> {
            type Output = Vec<i64>;

            #[inline(always)]
            fn run<S: SimdLevel>(self) -> Vec<i64> {
                // Run the same chain in every lane; all lanes must agree with
                // the scalar fold.
                let mut acc = S::i64_zero();
                let mut trace = Vec::with_capacity(self.qs.len());
                for &q in self.qs {
                    let block = S::i64_from_fn(|_| q);
                    acc = S::i64_clamp(S::i64_add(acc, block), self.lo, self.hi);
                    trace.push(S::i64_extract(acc, S::I64_LANES - 1));
                }
                trace
            }
        }
        let _lock = test_override_lock();
        for isa in available() {
            let _guard = force(Some(isa));
            let got = dispatch(Chain { qs: &qs, lo, hi });
            assert_eq!(got, scalar, "{isa}");
        }
    }
}
