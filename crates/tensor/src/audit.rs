//! Runtime mint-audit layer (the `audit` cargo feature).
//!
//! The id-keyed caches rest on one invariant: **id equality certifies byte
//! equality**. Statically, `falvolt-tidy` checks the contract's
//! preconditions (ids are `#[serde(skip)]`, mutable accessors re-mint).
//! This module checks the invariant itself at runtime: a process-global
//! registry maps every *observed* content id to a fingerprint of the bytes
//! it certified, and any later observation of the same id over different
//! bytes panics — that is a mutable access that forgot to re-mint, or an
//! id that bypassed the mint entirely (e.g. a hand-rolled deserializer).
//!
//! Observation happens in [`crate::Tensor::content_id`] — the moment an id
//! escapes to a cache — so the audit sees exactly the ids the caches key
//! on. The registry is append-only and bounded by the number of distinct
//! ids observed per process; the feature is a debugging/CI tool, not a
//! production mode.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// id → fingerprint of the bytes the id certified when first observed.
fn registry() -> &'static Mutex<HashMap<u64, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// FNV-1a over a byte stream. Not cryptographic — the audit flags
/// *certain* mismatches; a 2^-64 false-negative rate is fine for a debug
/// layer.
pub fn fingerprint_bytes(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fingerprint_bytes`] over the bit patterns of `data`. Bit-exact:
/// `0.0` vs `-0.0` and NaN payloads all count as distinct.
pub fn fingerprint(data: &[f32]) -> u64 {
    fingerprint_bytes(data.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

/// Records that `id` certifies `data`'s bytes, panicking when `id` was
/// previously observed over different bytes.
pub fn observe(id: u64, data: &[f32]) {
    verify_raw(id, fingerprint(data));
}

/// Fingerprint-level [`observe`], for callers that already hashed (the
/// cache-side audits hash non-`Tensor` buffers with [`fingerprint`]-style
/// hashes of their own).
pub fn verify_raw(id: u64, fp: u64) {
    let mut registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match registry.insert(id, fp) {
        Some(previous) if previous != fp => {
            // tidy:allow(no-panic): the audit layer's whole product is this panic
            panic!(
                "content-id audit: id {id} certified bytes with fingerprint \
                 {previous:#018x} but now carries {fp:#018x} — a mutable access \
                 bypassed the re-mint, or the id bypassed the mint"
            );
        }
        _ => {}
    }
}

/// Distinct ids observed so far (test introspection).
pub fn observed() -> usize {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .len()
}

/// (store name, fingerprint key) → fingerprint of the fulfilled bytes.
/// Separate from the id registry: cache keys are u128 fingerprints in
/// their own namespace per store.
fn fulfill_log() -> &'static Mutex<HashMap<(&'static str, u128), u64>> {
    static LOG: OnceLock<Mutex<HashMap<(&'static str, u128), u64>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Records that cache `store` fulfilled `key` with content hashing to
/// `fp`, panicking when the same key was previously fulfilled with
/// different content — a fingerprint collision (two distinct operand sets
/// hashing to one key) or a non-pure compute function. Cached values must
/// be pure functions of their key, so a second fulfilment (e.g. after a
/// quarantine discarded the first) must be byte-identical.
pub fn check_fulfill(store: &'static str, key: u128, fp: u64) {
    let mut log = fulfill_log().lock().unwrap_or_else(PoisonError::into_inner);
    match log.insert((store, key), fp) {
        Some(previous) if previous != fp => {
            // tidy:allow(no-panic): the audit layer's whole product is this panic
            panic!(
                "cache audit: {store} fulfilled key {key:#034x} with fingerprint \
                 {previous:#018x} and later with {fp:#018x} — fingerprint collision \
                 or impure compute function"
            );
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bytes_reobserve_fine_different_bytes_panic() {
        // Ids far above anything the mint hands out in a test process.
        observe(u64::MAX - 1, &[1.0, 2.0]);
        observe(u64::MAX - 1, &[1.0, 2.0]);
        let outcome = std::panic::catch_unwind(|| observe(u64::MAX - 1, &[1.0, 2.5]));
        assert!(outcome.is_err(), "changed bytes under a held id must panic");
    }

    #[test]
    fn fingerprint_separates_close_values_and_signed_zero() {
        assert_ne!(fingerprint(&[0.0]), fingerprint(&[-0.0]));
        assert_ne!(fingerprint(&[1.0]), fingerprint(&[1.0 + f32::EPSILON]));
        assert_eq!(fingerprint(&[3.5, 4.5]), fingerprint(&[3.5, 4.5]));
    }
}
