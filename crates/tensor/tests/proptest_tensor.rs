//! Property-based tests for the tensor substrate.

use falvolt_tensor::{kernels, ops, reduce, simd, SpikeIndex, Tensor};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |v| (r, c, v))
    })
}

proptest! {
    #[test]
    fn addition_is_commutative((r, c, data) in small_matrix(), scale in -3.0f32..3.0) {
        let a = Tensor::from_vec(vec![r, c], data.clone()).unwrap();
        let b = a.mul_scalar(scale);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn transpose_is_involutive((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(vec![r, c], data).unwrap();
        let t = ops::transpose2d(&a).unwrap();
        let tt = ops::transpose2d(&t).unwrap();
        prop_assert_eq!(a, tt);
    }

    #[test]
    fn matmul_identity_is_noop((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(vec![r, c], data).unwrap();
        let identity = Tensor::from_fn(&[c, c], |i| if i / c == i % c { 1.0 } else { 0.0 });
        let prod = ops::matmul(&a, &identity).unwrap();
        for (x, y) in a.data().iter().zip(prod.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        (r, k, a_data) in small_matrix(),
        scale in -2.0f32..2.0,
        cols in 1usize..5,
    ) {
        let a = Tensor::from_vec(vec![r, k], a_data).unwrap();
        let b = Tensor::from_fn(&[k, cols], |i| ((i * 7 % 13) as f32 - 6.0) * 0.3);
        let c = b.mul_scalar(scale);
        let left = ops::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let right = ops::matmul(&a, &b).unwrap().add(&ops::matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn sum_matches_axis0_sum((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(vec![r, c], data).unwrap();
        let total = reduce::sum(&a);
        let by_axis = reduce::sum(&reduce::sum_axis0(&a).unwrap());
        prop_assert!((total - by_axis).abs() < 1e-3);
    }

    #[test]
    fn reshape_preserves_sum((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(vec![r, c], data).unwrap();
        let b = a.reshape(&[c * r]).unwrap();
        prop_assert!((reduce::sum(&a) - reduce::sum(&b)).abs() < 1e-5);
    }

    #[test]
    fn one_hot_rows_sum_to_one(labels in proptest::collection::vec(0usize..10, 1..20)) {
        let t = reduce::one_hot(&labels, 10).unwrap();
        for i in 0..labels.len() {
            let row = t.slice_axis0(i, i + 1).unwrap();
            prop_assert!((reduce::sum(&row) - 1.0).abs() < 1e-6);
        }
        prop_assert_eq!(reduce::argmax_rows(&t).unwrap(), labels);
    }

    #[test]
    fn avg_pool_preserves_mean(n in 1usize..3, c in 1usize..3) {
        let t = Tensor::from_fn(&[n, c, 4, 4], |i| (i % 17) as f32 * 0.25);
        let pooled = ops::avg_pool2d_forward(&t, 2).unwrap();
        prop_assert!((reduce::mean(&t) - reduce::mean(&pooled)).abs() < 1e-4);
    }

    #[test]
    fn blocked_parallel_matmul_matches_naive_reference(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // Shapes deliberately straddle the MR/NR/KC tile boundaries; data is
        // dense and sign-mixed so cancellation errors would surface.
        let salt = seed.wrapping_mul(0x9E37_79B9);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f32 / 250.0 - 2.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(2246822519).wrapping_add(salt) % 1000) as f32 / 250.0 - 2.0)
            .collect();
        let fast = kernels::matmul(&a, &b, m, k, n);
        let slow = kernels::matmul_naive(&a, &b, m, k, n);
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            prop_assert!(
                (x - y).abs() <= 1e-5 * scale,
                "element {}: blocked {} vs naive {}", i, x, y
            );
        }
    }

    #[test]
    fn ops_matmul_routes_through_the_same_kernel(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
    ) {
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7 % 23) as f32 - 11.0) * 0.125);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 5 % 19) as f32 - 9.0) * 0.25);
        let via_ops = ops::matmul(&a, &b).unwrap();
        let via_kernel = kernels::matmul(a.data(), b.data(), m, k, n);
        prop_assert_eq!(via_ops.data(), &via_kernel[..]);
    }

    #[test]
    fn sparse_spike_matmul_matches_dense_blocked_at_all_densities(
        m in 1usize..24,
        k in 1usize..80,
        n in 1usize..24,
        seed in 0u64..1000,
        density_idx in 0usize..4,
    ) {
        // The event-driven gather-accumulate kernel must agree with the
        // dense blocked kernel within 1e-5 at the paper-relevant spike
        // densities: fully silent, sparse, half-on and fully dense.
        let density = [0.0f32, 0.05, 0.5, 1.0][density_idx];
        let salt = seed.wrapping_mul(0x9E37_79B9);
        let a: Vec<f32> = (0..m * k)
            .map(|i| {
                let r = ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f32
                    / 1000.0;
                (r < density) as u8 as f32
            })
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(2246822519).wrapping_add(salt) % 1000) as f32 / 250.0 - 2.0)
            .collect();
        let sparse = kernels::matmul_sparse(&a, &b, m, k, n);
        let dense = kernels::matmul(&a, &b, m, k, n);
        for (i, (x, y)) in sparse.iter().zip(&dense).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            prop_assert!(
                (x - y).abs() <= 1e-5 * scale,
                "density {}, element {}: sparse {} vs dense {}", density, i, x, y
            );
        }
        // The dispatcher must agree with the same tolerance whatever the
        // caller claims about the operand.
        for hint in [
            kernels::MatmulHint::Auto,
            kernels::MatmulHint::Dense,
            kernels::MatmulHint::Spikes,
        ] {
            let dispatched = kernels::matmul_dispatch(&a, &b, m, k, n, hint);
            for (x, y) in dispatched.iter().zip(&dense) {
                let scale = x.abs().max(y.abs()).max(1.0);
                prop_assert!((x - y).abs() <= 1e-5 * scale);
            }
        }
    }

    #[test]
    fn sparse_im2col_scatter_matches_dense_copy(
        batch in 1usize..3,
        channels in 1usize..4,
        size in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..500,
    ) {
        // kernel <= 3 and size >= 3, so the kernel always fits the input.
        let dims = ops::Conv2dDims::new(batch, channels, 1, size, size, kernel, stride, padding)
            .unwrap();
        let salt = seed.wrapping_mul(0x517C_C1B7);
        let input = Tensor::from_fn(&[batch, channels, size, size], |i| {
            let r = ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 100) as f32 / 100.0;
            (r < 0.15) as u8 as f32
        });
        let dense = ops::im2col(&input, &dims).unwrap();
        let profile = kernels::OperandProfile::measure(input.data());
        let sparse = ops::im2col_with_profile(&input, &dims, profile).unwrap();
        prop_assert_eq!(dense.data(), sparse.data());
    }
}

// ---------------------------------------------------------------------------
// SIMD dispatch properties: every lifted kernel agrees with the forced-scalar
// engine at every ISA the CPU supports, including odd tail lengths (sizes
// deliberately straddle the widest lane count). The dispatch override is
// process-global, so each test holds the shared lock for its whole body.
// ---------------------------------------------------------------------------

fn hashed(i: usize, salt: u64, amp: f32) -> f32 {
    let r = ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt) % 2000) as f32;
    (r / 1000.0 - 1.0) * amp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_matmul_matches_scalar_on_every_isa(
        m in 1usize..7,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let _lock = simd::test_override_lock();
        let a: Vec<f32> = (0..m * k).map(|i| hashed(i, seed, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| hashed(i, seed ^ 0xABCD, 1.5)).collect();
        let scalar = {
            let _g = simd::force(Some(simd::Isa::Scalar));
            kernels::matmul(&a, &b, m, k, n)
        };
        for isa in simd::available() {
            let _g = simd::force(Some(isa));
            let vectored = kernels::matmul(&a, &b, m, k, n);
            for (x, y) in vectored.iter().zip(&scalar) {
                let scale = x.abs().max(y.abs()).max(1.0);
                prop_assert!(
                    (x - y).abs() <= 1e-5 * scale,
                    "isa {} diverged: {} vs {}", isa, x, y
                );
            }
        }
    }

    #[test]
    fn spike_row_adds_are_bit_identical_on_every_isa(
        m in 1usize..7,
        k in 1usize..24,
        n in 1usize..40,
        density_pct in 0usize..70,
        seed in 0u64..500,
    ) {
        // The row-add kernels use unfused lane mul/add, so sparse and
        // indexed products must match the scalar engine *exactly* on every
        // ISA — not just within tolerance.
        let _lock = simd::test_override_lock();
        let a: Vec<f32> = (0..m * k)
            .map(|i| {
                let r = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed) % 100;
                f32::from(u8::from((r as usize) < density_pct))
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| hashed(i, seed ^ 0x5EED, 1.0)).collect();
        let index = SpikeIndex::from_dense(&a, k).unwrap();
        let (scalar_sparse, scalar_indexed) = {
            let _g = simd::force(Some(simd::Isa::Scalar));
            (
                kernels::matmul_sparse(&a, &b, m, k, n),
                kernels::matmul_spikes_indexed(&index, &b, m, k, n),
            )
        };
        prop_assert_eq!(&scalar_sparse, &scalar_indexed);
        for isa in simd::available() {
            let _g = simd::force(Some(isa));
            let sparse = kernels::matmul_sparse(&a, &b, m, k, n);
            let indexed = kernels::matmul_spikes_indexed(&index, &b, m, k, n);
            prop_assert_eq!(&sparse, &scalar_sparse, "sparse isa {}", isa);
            prop_assert_eq!(&indexed, &scalar_indexed, "indexed isa {}", isa);
        }
    }

    #[test]
    fn mixed_value_sparse_rows_stay_bit_identical_on_every_isa(
        m in 1usize..5,
        k in 1usize..16,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        // Non-binary nonzeros take the value-scaled row-add (axpy) lanes;
        // those are unfused too, so exact equality must still hold.
        let _lock = simd::test_override_lock();
        let a: Vec<f32> = (0..m * k)
            .map(|i| {
                let r = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed) % 100;
                if r < 30 { hashed(i, seed, 1.0) } else { 0.0 }
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| hashed(i, seed ^ 0x77, 1.0)).collect();
        let scalar = {
            let _g = simd::force(Some(simd::Isa::Scalar));
            kernels::matmul_sparse(&a, &b, m, k, n)
        };
        for isa in simd::available() {
            let _g = simd::force(Some(isa));
            prop_assert_eq!(
                &kernels::matmul_sparse(&a, &b, m, k, n),
                &scalar,
                "isa {}",
                isa
            );
        }
    }
}
