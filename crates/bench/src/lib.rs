//! Shared helpers for the FalVolt benchmark harness.
//!
//! Every bench target (one per figure of the paper's evaluation) and the
//! `reproduce` binary use these helpers to prepare experiment contexts and to
//! print figure series in a uniform way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::vulnerability::SweepSeries;

/// Prepares a Tiny-scale experiment context used by the benches (the smallest
/// setting that still trains a meaningful baseline).
///
/// # Panics
///
/// Panics if preparation fails — benches have no way to recover.
pub fn bench_context(kind: DatasetKind) -> ExperimentContext {
    ExperimentContext::prepare(kind, ExperimentScale::Tiny, 42)
        .expect("bench experiment context must prepare")
}

/// Prepares an experiment context at an explicit scale.
///
/// # Panics
///
/// Panics if preparation fails.
pub fn context_at_scale(kind: DatasetKind, scale: ExperimentScale) -> ExperimentContext {
    ExperimentContext::prepare(kind, scale, 42).expect("experiment context must prepare")
}

/// Prints one sweep series as an aligned two-column table.
pub fn print_series(title: &str, x_label: &str, series: &SweepSeries) {
    println!("{title} [{}]", series.label);
    println!("  {x_label:>12} | accuracy");
    for point in &series.points {
        println!("  {:>12} | {:>6.1}%", point.x, point.accuracy * 100.0);
    }
}

/// Formats an accuracy fraction as a percentage string.
pub fn pct(x: f32) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt::vulnerability::SweepPoint;

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.987), "98.7%");
    }

    #[test]
    fn print_series_does_not_panic() {
        let series = SweepSeries {
            label: "sa1".into(),
            points: vec![SweepPoint {
                x: 8.0,
                accuracy: 0.42,
                iterations: 2,
            }],
        };
        print_series("Figure 5b", "faulty PEs", &series);
    }
}
