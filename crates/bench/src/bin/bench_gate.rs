//! Bench-smoke regression gate.
//!
//! Parses `BENCH_kernels.json` (written by `cargo bench -p falvolt-bench
//! --bench kernels`) and fails when
//!
//! * any recorded `"speedup"` is below the absolute threshold (default 1.0 —
//!   an optimised path must not be slower than the baseline it claims to
//!   beat), or
//! * a **baseline file** is supplied (second argument or
//!   `BENCH_GATE_BASELINE`) and any speedup shared between the two files has
//!   regressed by more than `BENCH_GATE_MAX_REGRESSION` (default 0.10, i.e.
//!   current < 90% of baseline), or a baseline-recorded comparison vanished
//!   from the current file (a bench that stops measuring must not pass
//!   silently).
//!
//! The workspace has no JSON-parsing dependency (offline shims only), so the
//! scan is a small key-path tracker over the machine-generated JSON: every
//! `"speedup": <number>` is labelled with the `/`-joined path of enclosing
//! object keys and array indices (e.g. `sparse_matmul_1024x512x64/[2]`),
//! which is what lets current and baseline values be matched entry-by-entry
//! even as new benches are added. A `"speedup"` whose value cannot be parsed
//! as a finite number (`inf`, `NaN`, garbage) fails the gate rather than
//! being skipped — a broken measurement must not pass silently.
//!
//! `BENCH_GATE_MIN_SPEEDUP` overrides the absolute threshold for noisy
//! shared runners.
//!
//! Entries may carry a sibling `"isa"` string recording which SIMD level the
//! kernel dispatcher resolved to when the entry was measured (`scalar`,
//! `avx2`, `avx512`, `neon`). When both the baseline and the current file
//! record an ISA for an entry and they differ, the baseline comparison for
//! that entry is **skipped with a log line** instead of failing: an AVX-512
//! baseline says nothing about a NEON or scalar runner. The absolute
//! threshold still applies to every current entry regardless of ISA.
//!
//! Array elements are labelled positionally (`[0]`, `[1]`, …), so the
//! baseline must come from the same bench structure as the current file —
//! which CI guarantees by snapshotting the committed `BENCH_kernels.json`
//! of the same revision it benches. Comparing files across revisions that
//! reordered or inserted sweep entries would silently match different
//! entries.
//!
//! Exit status: 0 when every check clears, 1 otherwise (including a missing
//! or speedup-free current file).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One `"speedup"` occurrence: its key path and parsed value (or the
/// offending token).
type LabeledSpeedup = (String, Result<f64, String>);

/// Everything the gate reads out of one bench JSON file: the labelled
/// speedups plus, keyed by the same `/`-joined paths, any `"isa"` strings
/// recording the SIMD level an entry was measured on.
#[derive(Debug, Default)]
struct BenchMetrics {
    speedups: Vec<LabeledSpeedup>,
    isas: BTreeMap<String, String>,
}

impl BenchMetrics {
    /// The recorded ISA for the entry containing the given speedup label
    /// (`a/b/speedup` -> value of `a/b/isa`), if any.
    fn isa_for(&self, speedup_label: &str) -> Option<&str> {
        let prefix = speedup_label.strip_suffix("speedup")?;
        self.isas.get(&format!("{prefix}isa")).map(String::as_str)
    }
}

/// Scans `text` for every `"speedup": <value>` and `"isa": "<name>"`
/// occurrence, labelling each with the path of enclosing object keys / array
/// indices. The scanner understands exactly the JSON shape the bench emits
/// (string keys, nested objects and arrays, scalar values without embedded
/// braces).
fn extract_metrics(text: &str) -> BenchMetrics {
    #[derive(Debug)]
    enum Frame {
        Object,
        Array(usize),
    }
    let mut metrics = BenchMetrics::default();
    let mut stack: Vec<(String, Frame)> = Vec::new();
    let mut pending_key: Option<String> = None;
    let mut chars = text.chars().peekable();

    let path_of = |stack: &[(String, Frame)], key: &str| -> String {
        let mut parts: Vec<String> = stack.iter().map(|(name, _)| name.clone()).collect();
        parts.push(key.to_string());
        parts.retain(|p| !p.is_empty());
        parts.join("/")
    };

    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let mut s = String::new();
                for sc in chars.by_ref() {
                    if sc == '"' {
                        break;
                    }
                    s.push(sc);
                }
                // A string followed by ':' is a key; otherwise it is a value
                // (which consumes any pending key so it cannot leak onto the
                // next container).
                while matches!(chars.peek(), Some(w) if w.is_whitespace()) {
                    chars.next();
                }
                if matches!(chars.peek(), Some(':')) {
                    chars.next();
                    pending_key = Some(s);
                } else if pending_key.take().as_deref() == Some("isa") {
                    metrics.isas.insert(path_of(&stack, "isa"), s);
                }
            }
            '{' => {
                let name = pending_key.take().unwrap_or_else(|| {
                    // Array element object: label with the element index.
                    match stack.last() {
                        Some((_, Frame::Array(i))) => format!("[{i}]"),
                        _ => String::new(),
                    }
                });
                stack.push((name, Frame::Object));
            }
            '[' => {
                let name = pending_key.take().unwrap_or_default();
                stack.push((name, Frame::Array(0)));
            }
            '}' | ']' => {
                stack.pop();
            }
            ',' => {
                if let Some((_, Frame::Array(i))) = stack.last_mut() {
                    *i += 1;
                }
            }
            _ if !c.is_whitespace() => {
                // A scalar value token (number, true, false, null).
                let mut token = String::from(c);
                while let Some(&w) = chars.peek() {
                    if w.is_whitespace() || w == ',' || w == '}' || w == ']' {
                        break;
                    }
                    token.push(w);
                    chars.next();
                }
                if let Some(key) = pending_key.take() {
                    if key == "speedup" {
                        let label = path_of(&stack, &key);
                        let value = match token.parse::<f64>() {
                            Ok(v) if v.is_finite() => Ok(v),
                            _ => Err(token.clone()),
                        };
                        metrics.speedups.push((label, value));
                    }
                }
            }
            _ => {}
        }
    }
    metrics
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into());
    let baseline_path = args
        .next()
        .or_else(|| std::env::var("BENCH_GATE_BASELINE").ok());
    let threshold = std::env::var("BENCH_GATE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    let max_regression = std::env::var("BENCH_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench gate: cannot read {path}: {e}");
            eprintln!("run `cargo bench -p falvolt-bench --bench kernels` first");
            return ExitCode::FAILURE;
        }
    };
    let metrics = extract_metrics(&text);
    if metrics.speedups.is_empty() {
        eprintln!("bench gate: {path} records no \"speedup\" entries — bench output is broken");
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    let mut current = BTreeMap::new();
    for (label, entry) in &metrics.speedups {
        match entry {
            Ok(v) => {
                let verdict = if *v >= threshold { "ok" } else { "REGRESSION" };
                println!("{label} = {v:.3} ({verdict})");
                if *v < threshold {
                    ok = false;
                }
                current.insert(label.clone(), *v);
            }
            Err(token) => {
                eprintln!("{label} = {token:?} (UNPARSEABLE — broken measurement)");
                ok = false;
            }
        }
    }

    if let Some(baseline_path) = baseline_path {
        match std::fs::read_to_string(&baseline_path) {
            Ok(baseline_text) => {
                let floor = 1.0 - max_regression;
                let baseline = extract_metrics(&baseline_text);
                for (label, entry) in &baseline.speedups {
                    let Ok(base) = *entry else { continue };
                    // An entry measured on a different SIMD level than the
                    // baseline is not comparable — skip it loudly rather
                    // than flagging a phantom regression (or blessing a
                    // phantom improvement).
                    if let (Some(base_isa), Some(now_isa)) =
                        (baseline.isa_for(label), metrics.isa_for(label))
                    {
                        if base_isa != now_isa {
                            println!(
                                "{label}: skipped — baseline ISA \"{base_isa}\" != current ISA \"{now_isa}\""
                            );
                            continue;
                        }
                    }
                    match current.get(label) {
                        Some(&now) if now >= base * floor => {
                            println!(
                                "{label}: {now:.3} vs baseline {base:.3} (ok, floor {:.3})",
                                base * floor
                            );
                        }
                        Some(&now) => {
                            eprintln!(
                                "{label}: {now:.3} regressed more than {:.0}% below baseline {base:.3}",
                                max_regression * 100.0
                            );
                            ok = false;
                        }
                        None => {
                            eprintln!(
                                "{label}: recorded in baseline ({base:.3}) but missing from {path}"
                            );
                            ok = false;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("bench gate: cannot read baseline {baseline_path}: {e}");
                ok = false;
            }
        }
    }

    if ok {
        println!(
            "bench gate: all {} recorded speedups >= {threshold} (and within {:.0}% of baseline where one was given)",
            metrics.speedups.len(),
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench gate: at least one optimised path regressed or failed to measure");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::extract_metrics;

    #[test]
    fn extracts_and_labels_all_speedup_values() {
        let json = r#"{ "a": { "speedup": 1.417 }, "b": [ { "speedup": 0.93 }, { "x": 1 } ] }"#;
        let values = extract_metrics(json).speedups;
        assert_eq!(values.len(), 2);
        assert_eq!(values[0], ("a/speedup".to_string(), Ok(1.417)));
        assert_eq!(values[1], ("b/[0]/speedup".to_string(), Ok(0.93)));
    }

    #[test]
    fn array_indices_advance_per_element() {
        let json = r#"{ "s": [ { "speedup": 1.0 }, { "speedup": 2.0 }, { "speedup": 3.0 } ] }"#;
        let labels: Vec<String> = extract_metrics(json)
            .speedups
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(
            labels,
            vec!["s/[0]/speedup", "s/[1]/speedup", "s/[2]/speedup"]
        );
    }

    #[test]
    fn handles_whitespace_and_exponents() {
        let json = "{ \"x\": { \"speedup\":   2.5e1 } }";
        let values = extract_metrics(json).speedups;
        assert_eq!(values[0].1, Ok(25.0));
    }

    #[test]
    fn unparseable_values_are_reported_not_dropped() {
        let json = "{ \"a\": { \"speedup\": inf }, \"b\": { \"speedup\": NaN } }";
        let values = extract_metrics(json).speedups;
        assert_eq!(values.len(), 2);
        assert!(values.iter().all(|(_, v)| v.is_err()));
    }

    #[test]
    fn empty_input_yields_no_values() {
        let metrics = extract_metrics("{}");
        assert!(metrics.speedups.is_empty());
        assert!(metrics.isas.is_empty());
    }

    #[test]
    fn string_values_with_spaces_do_not_confuse_the_scanner() {
        let json = r#"{ "command": "cargo bench -p x --bench y", "k": { "speedup": 1.2 } }"#;
        let values = extract_metrics(json).speedups;
        assert_eq!(values, vec![("k/speedup".to_string(), Ok(1.2))]);
    }

    #[test]
    fn string_valued_members_do_not_leak_their_key_onto_the_next_element() {
        // A stale "note" key must not relabel the next array element.
        let json = r#"{ "arr": [ { "note": "x" }, { "speedup": 1.2 } ] }"#;
        let values = extract_metrics(json).speedups;
        assert_eq!(values, vec![("arr/[1]/speedup".to_string(), Ok(1.2))]);
    }

    #[test]
    fn isa_strings_are_captured_per_entry() {
        let json = r#"{
            "a": { "isa": "avx512", "speedup": 1.4 },
            "b": [ { "isa": "avx2", "speedup": 2.0 }, { "speedup": 3.0 } ]
        }"#;
        let metrics = extract_metrics(json);
        assert_eq!(metrics.isa_for("a/speedup"), Some("avx512"));
        assert_eq!(metrics.isa_for("b/[0]/speedup"), Some("avx2"));
        assert_eq!(metrics.isa_for("b/[1]/speedup"), None);
    }

    #[test]
    fn isa_lookup_matches_only_the_sibling_entry() {
        // An "isa" on a parent object must not be attributed to a nested
        // entry's speedup.
        let json = r#"{ "outer": { "isa": "avx2", "inner": { "speedup": 1.5 } } }"#;
        let metrics = extract_metrics(json);
        assert_eq!(
            metrics.isas.get("outer/isa").map(String::as_str),
            Some("avx2")
        );
        assert_eq!(metrics.isa_for("outer/inner/speedup"), None);
    }
}
