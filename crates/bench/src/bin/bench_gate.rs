//! Bench-smoke regression gate.
//!
//! Parses `BENCH_kernels.json` (written by `cargo bench -p falvolt-bench
//! --bench kernels`) and fails when
//!
//! * any recorded `"speedup"` is below the absolute threshold (default 1.0 —
//!   an optimised path must not be slower than the baseline it claims to
//!   beat), or
//! * a **baseline file** is supplied (second argument or
//!   `BENCH_GATE_BASELINE`) and any speedup shared between the two files has
//!   regressed by more than `BENCH_GATE_MAX_REGRESSION` (default 0.10, i.e.
//!   current < 90% of baseline), or a baseline-recorded comparison vanished
//!   from the current file (a bench that stops measuring must not pass
//!   silently).
//!
//! The workspace has no JSON-parsing dependency (offline shims only), so the
//! scan is a small key-path tracker over the machine-generated JSON: every
//! `"speedup": <number>` is labelled with the `/`-joined path of enclosing
//! object keys and array indices (e.g. `sparse_matmul_1024x512x64/[2]`),
//! which is what lets current and baseline values be matched entry-by-entry
//! even as new benches are added. A `"speedup"` whose value cannot be parsed
//! as a finite number (`inf`, `NaN`, garbage) fails the gate rather than
//! being skipped — a broken measurement must not pass silently.
//!
//! `BENCH_GATE_MIN_SPEEDUP` overrides the absolute threshold for noisy
//! shared runners.
//!
//! `bench_gate --schema-only [PATH]` skips all speedup thresholds and
//! instead validates the file against the bench schema the `falvolt-tidy`
//! pass enforces ([`falvolt_tidy::schema::check_bench_schema`] — known
//! `"isa"` per timing entry, finite in-range numbers). Both gates call the
//! same function, so the schema cannot drift between lint time and bench
//! time.
//!
//! Entries may carry a sibling `"isa"` string recording which SIMD level the
//! kernel dispatcher resolved to when the entry was measured (`scalar`,
//! `avx2`, `avx512`, `neon`). When both the baseline and the current file
//! record an ISA for an entry and they differ, the baseline comparison for
//! that entry is **skipped with a log line** instead of failing: an AVX-512
//! baseline says nothing about a NEON or scalar runner. The absolute
//! threshold still applies to every current entry regardless of ISA.
//!
//! Array elements are labelled positionally (`[0]`, `[1]`, …), so the
//! baseline must come from the same bench structure as the current file —
//! which CI guarantees by snapshotting the committed `BENCH_kernels.json`
//! of the same revision it benches. Comparing files across revisions that
//! reordered or inserted sweep entries would silently match different
//! entries.
//!
//! Exit status: 0 when every check clears. Every failure class has its own
//! non-zero exit code (see [`FailureKind`]) and, in addition to the human
//! log lines, each failure is emitted on stderr as one machine-readable
//! JSON line of the form
//! `bench-gate-failure: {"kind": "...", "label": "...", "detail": "..."}`
//! so CI can report *why* the gate tripped without scraping prose. When
//! several classes fail at once the process exits with the code of the
//! first failure encountered (file-level problems are detected before
//! entry-level ones, so the exit code names the most fundamental fault).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The distinct failure classes the gate can exit with. The discriminant is
/// the process exit code, so callers can dispatch on `$?` alone:
///
/// | code | kind | meaning |
/// |------|------|---------|
/// | 2 | `current-unreadable` | the current bench JSON is missing or unreadable |
/// | 3 | `no-speedups` | the current file records no `"speedup"` entries |
/// | 4 | `unparseable-speedup` | a `"speedup"` value is not a finite number |
/// | 5 | `below-threshold` | a speedup is under the absolute threshold |
/// | 6 | `baseline-unreadable` | the supplied baseline file cannot be read |
/// | 7 | `baseline-regression` | an entry regressed vs (or vanished from) the baseline |
/// | 8 | `schema-violation` | `--schema-only`: the file fails the tidy bench schema |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureKind {
    CurrentUnreadable = 2,
    NoSpeedups = 3,
    UnparseableSpeedup = 4,
    BelowThreshold = 5,
    BaselineUnreadable = 6,
    BaselineRegression = 7,
    Schema = 8,
}

impl FailureKind {
    fn code(self) -> u8 {
        self as u8
    }

    /// Stable machine-readable name, mirrored in the table above.
    fn kind(self) -> &'static str {
        match self {
            FailureKind::CurrentUnreadable => "current-unreadable",
            FailureKind::NoSpeedups => "no-speedups",
            FailureKind::UnparseableSpeedup => "unparseable-speedup",
            FailureKind::BelowThreshold => "below-threshold",
            FailureKind::BaselineUnreadable => "baseline-unreadable",
            FailureKind::BaselineRegression => "baseline-regression",
            FailureKind::Schema => "schema-violation",
        }
    }
}

/// One recorded gate failure: its class, the entry label it concerns (empty
/// for file-level failures) and a human-oriented detail string.
struct Failure {
    kind: FailureKind,
    label: String,
    detail: String,
}

/// Minimal JSON string escaping for the machine-readable failure lines
/// (labels and details may embed quotes or backslashes from file paths and
/// unparseable tokens).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emits the machine-readable line for one failure.
fn report(failure: &Failure) {
    eprintln!(
        "bench-gate-failure: {{\"kind\": \"{}\", \"label\": \"{}\", \"detail\": \"{}\"}}",
        failure.kind.kind(),
        json_escape(&failure.label),
        json_escape(&failure.detail),
    );
}

/// One `"speedup"` occurrence: its key path and parsed value (or the
/// offending token).
type LabeledSpeedup = (String, Result<f64, String>);

/// Everything the gate reads out of one bench JSON file: the labelled
/// speedups plus, keyed by the same `/`-joined paths, any `"isa"` strings
/// recording the SIMD level an entry was measured on.
#[derive(Debug, Default)]
struct BenchMetrics {
    speedups: Vec<LabeledSpeedup>,
    isas: BTreeMap<String, String>,
}

impl BenchMetrics {
    /// The recorded ISA for the entry containing the given speedup label
    /// (`a/b/speedup` -> value of `a/b/isa`), if any.
    fn isa_for(&self, speedup_label: &str) -> Option<&str> {
        let prefix = speedup_label.strip_suffix("speedup")?;
        self.isas.get(&format!("{prefix}isa")).map(String::as_str)
    }
}

/// Scans `text` for every `"speedup": <value>` and `"isa": "<name>"`
/// occurrence, labelling each with the path of enclosing object keys / array
/// indices. The scanner understands exactly the JSON shape the bench emits
/// (string keys, nested objects and arrays, scalar values without embedded
/// braces).
fn extract_metrics(text: &str) -> BenchMetrics {
    #[derive(Debug)]
    enum Frame {
        Object,
        Array(usize),
    }
    let mut metrics = BenchMetrics::default();
    let mut stack: Vec<(String, Frame)> = Vec::new();
    let mut pending_key: Option<String> = None;
    let mut chars = text.chars().peekable();

    let path_of = |stack: &[(String, Frame)], key: &str| -> String {
        let mut parts: Vec<String> = stack.iter().map(|(name, _)| name.clone()).collect();
        parts.push(key.to_string());
        parts.retain(|p| !p.is_empty());
        parts.join("/")
    };

    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let mut s = String::new();
                for sc in chars.by_ref() {
                    if sc == '"' {
                        break;
                    }
                    s.push(sc);
                }
                // A string followed by ':' is a key; otherwise it is a value
                // (which consumes any pending key so it cannot leak onto the
                // next container).
                while matches!(chars.peek(), Some(w) if w.is_whitespace()) {
                    chars.next();
                }
                if matches!(chars.peek(), Some(':')) {
                    chars.next();
                    pending_key = Some(s);
                } else if pending_key.take().as_deref() == Some("isa") {
                    metrics.isas.insert(path_of(&stack, "isa"), s);
                }
            }
            '{' => {
                let name = pending_key.take().unwrap_or_else(|| {
                    // Array element object: label with the element index.
                    match stack.last() {
                        Some((_, Frame::Array(i))) => format!("[{i}]"),
                        _ => String::new(),
                    }
                });
                stack.push((name, Frame::Object));
            }
            '[' => {
                let name = pending_key.take().unwrap_or_default();
                stack.push((name, Frame::Array(0)));
            }
            '}' | ']' => {
                stack.pop();
            }
            ',' => {
                if let Some((_, Frame::Array(i))) = stack.last_mut() {
                    *i += 1;
                }
            }
            _ if !c.is_whitespace() => {
                // A scalar value token (number, true, false, null).
                let mut token = String::from(c);
                while let Some(&w) = chars.peek() {
                    if w.is_whitespace() || w == ',' || w == '}' || w == ']' {
                        break;
                    }
                    token.push(w);
                    chars.next();
                }
                if let Some(key) = pending_key.take() {
                    if key == "speedup" {
                        let label = path_of(&stack, &key);
                        let value = match token.parse::<f64>() {
                            Ok(v) if v.is_finite() => Ok(v),
                            _ => Err(token.clone()),
                        };
                        metrics.speedups.push((label, value));
                    }
                }
            }
            _ => {}
        }
    }
    metrics
}

/// `--schema-only`: validate the bench JSON against the same schema the
/// `falvolt-tidy` pass enforces (known `"isa"` per timing entry, finite
/// in-range numbers), with no speedup thresholds. Diagnostics use tidy's
/// `file:line: [bench-schema]` shape; failures exit with the gate's typed
/// codes (2 unreadable, 8 schema violation) and machine-readable lines.
fn run_schema_only(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench gate: cannot read {path}: {e}");
            let failure = Failure {
                kind: FailureKind::CurrentUnreadable,
                label: String::new(),
                detail: format!("cannot read {path}: {e}"),
            };
            report(&failure);
            return ExitCode::from(failure.kind.code());
        }
    };
    let violations = falvolt_tidy::schema::check_bench_schema(&text);
    if violations.is_empty() {
        println!("bench gate: {path} conforms to the bench schema");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        let prefix = if v.path.is_empty() {
            String::new()
        } else {
            format!("{}: ", v.path)
        };
        eprintln!("{path}:{}: [bench-schema] {prefix}{}", v.line, v.message);
        report(&Failure {
            kind: FailureKind::Schema,
            label: v.path.clone(),
            detail: v.message.clone(),
        });
    }
    eprintln!(
        "bench gate: {} schema violation(s), exiting with code {} ({})",
        violations.len(),
        FailureKind::Schema.code(),
        FailureKind::Schema.kind()
    );
    ExitCode::from(FailureKind::Schema.code())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let schema_only = args.peek().map(String::as_str) == Some("--schema-only");
    if schema_only {
        args.next();
    }
    let path = args
        .next()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into());
    if schema_only {
        return run_schema_only(&path);
    }
    let baseline_path = args
        .next()
        .or_else(|| std::env::var("BENCH_GATE_BASELINE").ok());
    let threshold = std::env::var("BENCH_GATE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    let max_regression = std::env::var("BENCH_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);

    let mut failures: Vec<Failure> = Vec::new();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench gate: cannot read {path}: {e}");
            eprintln!("run `cargo bench -p falvolt-bench --bench kernels` first");
            let failure = Failure {
                kind: FailureKind::CurrentUnreadable,
                label: String::new(),
                detail: format!("cannot read {path}: {e}"),
            };
            report(&failure);
            return ExitCode::from(failure.kind.code());
        }
    };
    let metrics = extract_metrics(&text);
    if metrics.speedups.is_empty() {
        eprintln!("bench gate: {path} records no \"speedup\" entries — bench output is broken");
        let failure = Failure {
            kind: FailureKind::NoSpeedups,
            label: String::new(),
            detail: format!("{path} records no \"speedup\" entries"),
        };
        report(&failure);
        return ExitCode::from(failure.kind.code());
    }

    let mut current = BTreeMap::new();
    for (label, entry) in &metrics.speedups {
        match entry {
            Ok(v) => {
                let verdict = if *v >= threshold { "ok" } else { "REGRESSION" };
                println!("{label} = {v:.3} ({verdict})");
                if *v < threshold {
                    failures.push(Failure {
                        kind: FailureKind::BelowThreshold,
                        label: label.clone(),
                        detail: format!("speedup {v:.3} below threshold {threshold}"),
                    });
                }
                current.insert(label.clone(), *v);
            }
            Err(token) => {
                eprintln!("{label} = {token:?} (UNPARSEABLE — broken measurement)");
                failures.push(Failure {
                    kind: FailureKind::UnparseableSpeedup,
                    label: label.clone(),
                    detail: format!("\"speedup\" value {token:?} is not a finite number"),
                });
            }
        }
    }

    if let Some(baseline_path) = baseline_path {
        match std::fs::read_to_string(&baseline_path) {
            Ok(baseline_text) => {
                let floor = 1.0 - max_regression;
                let baseline = extract_metrics(&baseline_text);
                for (label, entry) in &baseline.speedups {
                    let Ok(base) = *entry else { continue };
                    // An entry measured on a different SIMD level than the
                    // baseline is not comparable — skip it loudly rather
                    // than flagging a phantom regression (or blessing a
                    // phantom improvement).
                    if let (Some(base_isa), Some(now_isa)) =
                        (baseline.isa_for(label), metrics.isa_for(label))
                    {
                        if base_isa != now_isa {
                            println!(
                                "{label}: skipped — baseline ISA \"{base_isa}\" != current ISA \"{now_isa}\""
                            );
                            continue;
                        }
                    }
                    match current.get(label) {
                        Some(&now) if now >= base * floor => {
                            println!(
                                "{label}: {now:.3} vs baseline {base:.3} (ok, floor {:.3})",
                                base * floor
                            );
                        }
                        Some(&now) => {
                            eprintln!(
                                "{label}: {now:.3} regressed more than {:.0}% below baseline {base:.3}",
                                max_regression * 100.0
                            );
                            failures.push(Failure {
                                kind: FailureKind::BaselineRegression,
                                label: label.clone(),
                                detail: format!(
                                    "{now:.3} below floor {:.3} of baseline {base:.3}",
                                    base * floor
                                ),
                            });
                        }
                        None => {
                            eprintln!(
                                "{label}: recorded in baseline ({base:.3}) but missing from {path}"
                            );
                            failures.push(Failure {
                                kind: FailureKind::BaselineRegression,
                                label: label.clone(),
                                detail: format!(
                                    "recorded in baseline ({base:.3}) but missing from {path}"
                                ),
                            });
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("bench gate: cannot read baseline {baseline_path}: {e}");
                failures.push(Failure {
                    kind: FailureKind::BaselineUnreadable,
                    label: String::new(),
                    detail: format!("cannot read baseline {baseline_path}: {e}"),
                });
            }
        }
    }

    match failures.first() {
        None => {
            println!(
                "bench gate: all {} recorded speedups >= {threshold} (and within {:.0}% of baseline where one was given)",
                metrics.speedups.len(),
                max_regression * 100.0
            );
            ExitCode::SUCCESS
        }
        Some(first) => {
            for failure in &failures {
                report(failure);
            }
            eprintln!(
                "bench gate: {} failure(s), exiting with code {} ({})",
                failures.len(),
                first.kind.code(),
                first.kind.kind()
            );
            ExitCode::from(first.kind.code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{extract_metrics, json_escape, FailureKind};

    #[test]
    fn failure_kinds_have_distinct_stable_exit_codes() {
        let kinds = [
            FailureKind::CurrentUnreadable,
            FailureKind::NoSpeedups,
            FailureKind::UnparseableSpeedup,
            FailureKind::BelowThreshold,
            FailureKind::BaselineUnreadable,
            FailureKind::BaselineRegression,
            FailureKind::Schema,
        ];
        let codes: Vec<u8> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8]);
        let mut names: Vec<&str> = kinds.iter().map(|k| k.kind()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len(), "kind names must be distinct");
    }

    #[test]
    fn json_escape_handles_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape(r#"a "b" c"#), r#"a \"b\" c"#);
        assert_eq!(json_escape(r"path\to"), r"path\\to");
        assert_eq!(json_escape("a\nb\x01"), "a\\nb\\u0001");
    }

    #[test]
    fn extracts_and_labels_all_speedup_values() {
        let json = r#"{ "a": { "speedup": 1.417 }, "b": [ { "speedup": 0.93 }, { "x": 1 } ] }"#;
        let values = extract_metrics(json).speedups;
        assert_eq!(values.len(), 2);
        assert_eq!(values[0], ("a/speedup".to_string(), Ok(1.417)));
        assert_eq!(values[1], ("b/[0]/speedup".to_string(), Ok(0.93)));
    }

    #[test]
    fn array_indices_advance_per_element() {
        let json = r#"{ "s": [ { "speedup": 1.0 }, { "speedup": 2.0 }, { "speedup": 3.0 } ] }"#;
        let labels: Vec<String> = extract_metrics(json)
            .speedups
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(
            labels,
            vec!["s/[0]/speedup", "s/[1]/speedup", "s/[2]/speedup"]
        );
    }

    #[test]
    fn handles_whitespace_and_exponents() {
        let json = "{ \"x\": { \"speedup\":   2.5e1 } }";
        let values = extract_metrics(json).speedups;
        assert_eq!(values[0].1, Ok(25.0));
    }

    #[test]
    fn unparseable_values_are_reported_not_dropped() {
        let json = "{ \"a\": { \"speedup\": inf }, \"b\": { \"speedup\": NaN } }";
        let values = extract_metrics(json).speedups;
        assert_eq!(values.len(), 2);
        assert!(values.iter().all(|(_, v)| v.is_err()));
    }

    #[test]
    fn empty_input_yields_no_values() {
        let metrics = extract_metrics("{}");
        assert!(metrics.speedups.is_empty());
        assert!(metrics.isas.is_empty());
    }

    #[test]
    fn string_values_with_spaces_do_not_confuse_the_scanner() {
        let json = r#"{ "command": "cargo bench -p x --bench y", "k": { "speedup": 1.2 } }"#;
        let values = extract_metrics(json).speedups;
        assert_eq!(values, vec![("k/speedup".to_string(), Ok(1.2))]);
    }

    #[test]
    fn string_valued_members_do_not_leak_their_key_onto_the_next_element() {
        // A stale "note" key must not relabel the next array element.
        let json = r#"{ "arr": [ { "note": "x" }, { "speedup": 1.2 } ] }"#;
        let values = extract_metrics(json).speedups;
        assert_eq!(values, vec![("arr/[1]/speedup".to_string(), Ok(1.2))]);
    }

    #[test]
    fn isa_strings_are_captured_per_entry() {
        let json = r#"{
            "a": { "isa": "avx512", "speedup": 1.4 },
            "b": [ { "isa": "avx2", "speedup": 2.0 }, { "speedup": 3.0 } ]
        }"#;
        let metrics = extract_metrics(json);
        assert_eq!(metrics.isa_for("a/speedup"), Some("avx512"));
        assert_eq!(metrics.isa_for("b/[0]/speedup"), Some("avx2"));
        assert_eq!(metrics.isa_for("b/[1]/speedup"), None);
    }

    #[test]
    fn isa_lookup_matches_only_the_sibling_entry() {
        // An "isa" on a parent object must not be attributed to a nested
        // entry's speedup.
        let json = r#"{ "outer": { "isa": "avx2", "inner": { "speedup": 1.5 } } }"#;
        let metrics = extract_metrics(json);
        assert_eq!(
            metrics.isas.get("outer/isa").map(String::as_str),
            Some("avx2")
        );
        assert_eq!(metrics.isa_for("outer/inner/speedup"), None);
    }
}
