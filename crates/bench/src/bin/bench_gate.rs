//! Bench-smoke regression gate.
//!
//! Parses `BENCH_kernels.json` (written by `cargo bench -p falvolt-bench
//! --bench kernels`) and fails when any recorded `"speedup"` is below the
//! threshold — i.e. when an optimised path has regressed behind the baseline
//! it claims to beat. The workspace has no JSON-parsing dependency (offline
//! shims only), so the scan is a small hand-rolled scanner over `"speedup":
//! <number>` occurrences. A `"speedup"` key whose value cannot be parsed as
//! a finite number (`inf`, `NaN`, garbage) fails the gate rather than being
//! skipped — a broken measurement must not pass silently.
//!
//! The threshold defaults to 1.0 (an optimised path must not be slower than
//! its baseline); `BENCH_GATE_MIN_SPEEDUP` overrides it for noisy shared
//! runners.
//!
//! Exit status: 0 when every speedup parses and clears the threshold, 1
//! otherwise (including a missing or speedup-free file, which would mean the
//! bench stopped recording comparisons).

use std::process::ExitCode;

/// Extracts every `"speedup": <value>` occurrence from `text`, in order.
/// Values that do not parse as a finite number are reported as `Err` with
/// the offending token.
fn extract_speedups(text: &str) -> Vec<Result<f64, String>> {
    let needle = "\"speedup\":";
    let mut values = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let token: String = rest
            .trim_start()
            .chars()
            .take_while(|c| !c.is_whitespace() && *c != ',' && *c != '}' && *c != ']')
            .collect();
        match token.parse::<f64>() {
            Ok(v) if v.is_finite() => values.push(Ok(v)),
            _ => values.push(Err(token)),
        }
    }
    values
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into());
    let threshold = std::env::var("BENCH_GATE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench gate: cannot read {path}: {e}");
            eprintln!("run `cargo bench -p falvolt-bench --bench kernels` first");
            return ExitCode::FAILURE;
        }
    };
    let speedups = extract_speedups(&text);
    if speedups.is_empty() {
        eprintln!("bench gate: {path} records no \"speedup\" entries — bench output is broken");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for (i, entry) in speedups.iter().enumerate() {
        match entry {
            Ok(v) => {
                let verdict = if *v >= threshold { "ok" } else { "REGRESSION" };
                println!("speedup[{i}] = {v:.3} ({verdict})");
                if *v < threshold {
                    ok = false;
                }
            }
            Err(token) => {
                eprintln!("speedup[{i}] = {token:?} (UNPARSEABLE — broken measurement)");
                ok = false;
            }
        }
    }
    if ok {
        println!(
            "bench gate: all {} recorded speedups >= {threshold}",
            speedups.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench gate: at least one optimised path regressed or failed to measure");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::extract_speedups;

    #[test]
    fn extracts_all_speedup_values() {
        let json = r#"{ "a": { "speedup": 1.417 }, "b": [ { "speedup": 0.93 }, { "x": 1 } ] }"#;
        let values: Vec<f64> = extract_speedups(json)
            .into_iter()
            .map(|v| v.unwrap())
            .collect();
        assert_eq!(values, vec![1.417, 0.93]);
    }

    #[test]
    fn handles_whitespace_and_exponents() {
        let json = "\"speedup\":   2.5e1,";
        assert_eq!(extract_speedups(json), vec![Ok(25.0)]);
    }

    #[test]
    fn unparseable_values_are_reported_not_dropped() {
        let json = "{ \"speedup\": inf, \"speedup\": NaN }";
        let values = extract_speedups(json);
        assert_eq!(values.len(), 2);
        assert!(values.iter().all(|v| v.is_err()));
    }

    #[test]
    fn empty_input_yields_no_values() {
        assert!(extract_speedups("{}").is_empty());
    }
}
