//! Regenerates every figure of the FalVolt evaluation and prints the series.
//!
//! ```text
//! cargo run --release -p falvolt-bench --bin reproduce -- [--fig all|2|5a|5b|5c|6|7|8]
//!     [--dataset mnist|nmnist|dvs|all] [--scale tiny|quick|full]
//! ```
//!
//! Defaults: `--fig all --dataset mnist --scale tiny`. The measured series
//! recorded in `EXPERIMENTS.md` were produced by this binary.

use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;
use falvolt_bench::{pct, print_series};
use falvolt_systolic::StuckAt;

#[derive(Debug, Clone)]
struct Options {
    figures: Vec<String>,
    datasets: Vec<DatasetKind>,
    scale: ExperimentScale,
}

fn parse_args() -> Options {
    let mut figures = vec!["all".to_string()];
    let mut datasets = vec![DatasetKind::Mnist];
    let mut scale = ExperimentScale::Tiny;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" if i + 1 < args.len() => {
                figures = vec![args[i + 1].to_lowercase()];
                i += 2;
            }
            "--dataset" if i + 1 < args.len() => {
                datasets = match args[i + 1].to_lowercase().as_str() {
                    "mnist" => vec![DatasetKind::Mnist],
                    "nmnist" => vec![DatasetKind::NMnist],
                    "dvs" | "dvs-gesture" => vec![DatasetKind::DvsGesture],
                    "all" => DatasetKind::ALL.to_vec(),
                    other => {
                        eprintln!("unknown dataset '{other}', using mnist");
                        vec![DatasetKind::Mnist]
                    }
                };
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = match args[i + 1].to_lowercase().as_str() {
                    "tiny" => ExperimentScale::Tiny,
                    "quick" => ExperimentScale::Quick,
                    "full" => ExperimentScale::Full,
                    other => {
                        eprintln!("unknown scale '{other}', using tiny");
                        ExperimentScale::Tiny
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    Options {
        figures,
        datasets,
        scale,
    }
}

fn wants(options: &Options, figure: &str) -> bool {
    options.figures.iter().any(|f| f == "all" || f == figure)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = parse_args();
    println!("FalVolt reproduction harness");
    println!(
        "datasets: {:?}, scale: {:?}, figures: {:?}",
        options
            .datasets
            .iter()
            .map(DatasetKind::label)
            .collect::<Vec<_>>(),
        options.scale,
        options.figures
    );

    for &kind in &options.datasets {
        println!("\n================ {} ================", kind.label());
        println!("preparing dataset and training the fault-free baseline...");
        let mut ctx = ExperimentContext::prepare(kind, options.scale, 42)?;
        println!("baseline accuracy: {}", pct(ctx.baseline_accuracy()));
        let epochs = options.scale.retrain_epochs();
        let vuln = options.scale.vulnerability_config();
        let msb = ctx.systolic_config().accumulator_format().msb();

        // Every plan installs the historical per-figure seed mixer (and, for
        // the Figure 5 sweeps, the vulnerability seed), so the fault maps —
        // and therefore the printed series — are identical to the
        // pre-campaign drivers' recorded output.
        if wants(&options, "2") {
            println!("\n--- Figure 2: fixed-threshold retraining sweep ---");
            let run = Campaign::new(&mut ctx)
                .axis(Axis::FaultRate(vec![0.30, 0.60]))
                .axis(Axis::Threshold(vec![0.45, 0.55, 0.7, 1.0]))
                .retrain_epochs(epochs)
                .seed_mixer(falvolt::campaign::mixers::per_fault_rate)
                .run()?;
            println!("  threshold | fault rate | accuracy");
            for cell in &run {
                println!(
                    "  {:>9.2} | {:>9.0}% | {:>6}",
                    cell.spec.threshold.unwrap_or(0.0),
                    cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
                    pct(cell.accuracy)
                );
            }
        }

        if wants(&options, "5a") {
            println!("\n--- Figure 5a: accuracy vs fault bit location ---");
            let run = Campaign::new(&mut ctx)
                .axis(Axis::Polarity(StuckAt::ALL.to_vec()))
                .axis(Axis::BitPosition(vec![0, 2, 4, 6, 8, 10, 12, 14, msb]))
                .axis(Axis::FaultyPes(vec![8]))
                .scenarios_per_cell(vuln.iterations)
                .seed(vuln.seed)
                .seed_mixer(falvolt::campaign::mixers::per_bit)
                .run()?;
            for series in run.mean_series("bit") {
                print_series("Figure 5a", "bit", &series);
            }
        }

        if wants(&options, "5b") {
            println!("\n--- Figure 5b: accuracy vs number of faulty PEs ---");
            let run = Campaign::new(&mut ctx)
                .axis(Axis::FaultyPes(vec![0, 4, 8, 16, 32, 48, 64]))
                .scenarios_per_cell(vuln.iterations)
                .seed(vuln.seed)
                .seed_mixer(falvolt::campaign::mixers::per_faulty_pe_count)
                .run()?;
            for series in run.mean_series("faulty_pes") {
                print_series("Figure 5b", "faulty PEs", &series);
            }
        }

        if wants(&options, "5c") {
            println!("\n--- Figure 5c: accuracy vs systolic-array size ---");
            let run = Campaign::new(&mut ctx)
                .axis(Axis::ArraySize(vec![4, 8, 16, 32]))
                .axis(Axis::FaultyPes(vec![4]))
                .scenarios_per_cell(vuln.iterations)
                .seed(vuln.seed)
                .seed_mixer(falvolt::campaign::mixers::per_array_size)
                .run()?;
            for series in run.mean_series("array_size") {
                print_series("Figure 5c", "array side", &series);
            }
        }

        if wants(&options, "6") || wants(&options, "7") {
            println!("\n--- Figures 6 & 7: mitigation comparison (FaP / FaPIT / FalVolt) ---");
            let run = Campaign::new(&mut ctx)
                .axis(Axis::FaultRate(vec![0.10, 0.30, 0.60]))
                .axis(Axis::Mitigation(vec![
                    MitigationStrategy::FaP,
                    MitigationStrategy::fapit(epochs),
                    MitigationStrategy::falvolt(epochs),
                ]))
                .seed_mixer(falvolt::campaign::mixers::per_fault_rate_rotated)
                .run()?;
            println!("  fault rate | strategy | accuracy");
            for cell in &run {
                let outcome = cell.outcome().expect("retraining cell");
                println!(
                    "  {:>9.0}% | {:<8} | {:>6}",
                    cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
                    outcome.strategy,
                    pct(cell.accuracy)
                );
            }
            println!("\n  per-layer thresholds learned by FalVolt (Figure 6):");
            for cell in &run {
                let outcome = cell.outcome().expect("retraining cell");
                if outcome.strategy != "FalVolt" {
                    continue;
                }
                let thresholds: Vec<String> = outcome
                    .thresholds
                    .iter()
                    .map(|(name, v)| format!("{name}={v:.2}"))
                    .collect();
                println!(
                    "    {:>3.0}% faulty: {}",
                    cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
                    thresholds.join(", ")
                );
            }
        }

        if wants(&options, "8") {
            println!("\n--- Figure 8: accuracy vs retraining epochs (30% faulty PEs) ---");
            let run = Campaign::new(&mut ctx)
                .axis(Axis::FaultRate(vec![0.30]))
                .axis(Axis::Mitigation(vec![
                    MitigationStrategy::fapit(epochs),
                    MitigationStrategy::falvolt(epochs),
                ]))
                .seed_mixer(falvolt::campaign::mixers::convergence)
                .run()?;
            let fapit = &run.cells()[0].outcome().expect("FaPIT cell").history;
            let falvolt = &run.cells()[1].outcome().expect("FalVolt cell").history;
            println!("  epoch |  FaPIT  | FalVolt");
            for (fa, fv) in fapit.iter().zip(falvolt) {
                println!(
                    "  {:>5} | {:>7} | {:>7}",
                    fa.epoch,
                    pct(fa.test_accuracy),
                    pct(fv.test_accuracy)
                );
            }
            let target = run.baseline_accuracy() * 0.95;
            println!(
                "  epochs to 95% of baseline: FaPIT {:?}, FalVolt {:?}",
                falvolt::mitigation::epochs_to_reach(fapit, target),
                falvolt::mitigation::epochs_to_reach(falvolt, target)
            );
        }
    }
    Ok(())
}
