//! Regenerates every figure of the FalVolt evaluation and prints the series.
//!
//! ```text
//! cargo run --release -p falvolt-bench --bin reproduce -- [--fig all|2|5a|5b|5c|6|7|8]
//!     [--dataset mnist|nmnist|dvs|all] [--scale tiny|quick|full]
//! ```
//!
//! Defaults: `--fig all --dataset mnist --scale tiny`. The measured series
//! recorded in `EXPERIMENTS.md` were produced by this binary.

use falvolt::experiment::{
    array_size_experiment, bit_position_experiment, convergence_experiment, faulty_pe_experiment,
    mitigation_comparison, threshold_sweep, DatasetKind, ExperimentContext, ExperimentScale,
};
use falvolt_bench::{pct, print_series};

#[derive(Debug, Clone)]
struct Options {
    figures: Vec<String>,
    datasets: Vec<DatasetKind>,
    scale: ExperimentScale,
}

fn parse_args() -> Options {
    let mut figures = vec!["all".to_string()];
    let mut datasets = vec![DatasetKind::Mnist];
    let mut scale = ExperimentScale::Tiny;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" if i + 1 < args.len() => {
                figures = vec![args[i + 1].to_lowercase()];
                i += 2;
            }
            "--dataset" if i + 1 < args.len() => {
                datasets = match args[i + 1].to_lowercase().as_str() {
                    "mnist" => vec![DatasetKind::Mnist],
                    "nmnist" => vec![DatasetKind::NMnist],
                    "dvs" | "dvs-gesture" => vec![DatasetKind::DvsGesture],
                    "all" => DatasetKind::ALL.to_vec(),
                    other => {
                        eprintln!("unknown dataset '{other}', using mnist");
                        vec![DatasetKind::Mnist]
                    }
                };
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = match args[i + 1].to_lowercase().as_str() {
                    "tiny" => ExperimentScale::Tiny,
                    "quick" => ExperimentScale::Quick,
                    "full" => ExperimentScale::Full,
                    other => {
                        eprintln!("unknown scale '{other}', using tiny");
                        ExperimentScale::Tiny
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    Options {
        figures,
        datasets,
        scale,
    }
}

fn wants(options: &Options, figure: &str) -> bool {
    options.figures.iter().any(|f| f == "all" || f == figure)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = parse_args();
    println!("FalVolt reproduction harness");
    println!(
        "datasets: {:?}, scale: {:?}, figures: {:?}",
        options
            .datasets
            .iter()
            .map(DatasetKind::label)
            .collect::<Vec<_>>(),
        options.scale,
        options.figures
    );

    for &kind in &options.datasets {
        println!("\n================ {} ================", kind.label());
        println!("preparing dataset and training the fault-free baseline...");
        let mut ctx = ExperimentContext::prepare(kind, options.scale, 42)?;
        println!("baseline accuracy: {}", pct(ctx.baseline_accuracy()));
        let epochs = options.scale.retrain_epochs();
        let msb = ctx.systolic_config().accumulator_format().msb();

        if wants(&options, "2") {
            println!("\n--- Figure 2: fixed-threshold retraining sweep ---");
            let report = threshold_sweep(&mut ctx, &[0.45, 0.55, 0.7, 1.0], &[0.30, 0.60], epochs)?;
            println!("  threshold | fault rate | accuracy");
            for row in &report.rows {
                println!(
                    "  {:>9.2} | {:>9.0}% | {:>6}",
                    row.threshold,
                    row.fault_rate * 100.0,
                    pct(row.accuracy)
                );
            }
        }

        if wants(&options, "5a") {
            println!("\n--- Figure 5a: accuracy vs fault bit location ---");
            let bits: Vec<u32> = vec![0, 2, 4, 6, 8, 10, 12, 14, msb];
            let report = bit_position_experiment(&mut ctx, &bits, 8)?;
            for series in &report.series {
                print_series("Figure 5a", "bit", series);
            }
        }

        if wants(&options, "5b") {
            println!("\n--- Figure 5b: accuracy vs number of faulty PEs ---");
            let report = faulty_pe_experiment(&mut ctx, &[0, 4, 8, 16, 32, 48, 64])?;
            print_series("Figure 5b", "faulty PEs", &report.series);
        }

        if wants(&options, "5c") {
            println!("\n--- Figure 5c: accuracy vs systolic-array size ---");
            let report = array_size_experiment(&mut ctx, &[4, 8, 16, 32], 4)?;
            print_series("Figure 5c", "total PEs", &report.series);
        }

        if wants(&options, "6") || wants(&options, "7") {
            println!("\n--- Figures 6 & 7: mitigation comparison (FaP / FaPIT / FalVolt) ---");
            let report = mitigation_comparison(&mut ctx, &[0.10, 0.30, 0.60], epochs)?;
            println!("  fault rate | strategy | accuracy");
            for row in &report.rows {
                println!(
                    "  {:>9.0}% | {:<8} | {:>6}",
                    row.fault_rate * 100.0,
                    row.strategy,
                    pct(row.accuracy)
                );
            }
            println!("\n  per-layer thresholds learned by FalVolt (Figure 6):");
            for row in report.rows.iter().filter(|r| r.strategy == "FalVolt") {
                let thresholds: Vec<String> = row
                    .thresholds
                    .iter()
                    .map(|(name, v)| format!("{name}={v:.2}"))
                    .collect();
                println!(
                    "    {:>3.0}% faulty: {}",
                    row.fault_rate * 100.0,
                    thresholds.join(", ")
                );
            }
        }

        if wants(&options, "8") {
            println!("\n--- Figure 8: accuracy vs retraining epochs (30% faulty PEs) ---");
            let report = convergence_experiment(&mut ctx, 0.30, epochs)?;
            println!("  epoch |  FaPIT  | FalVolt");
            for (fapit, falvolt) in report.fapit.iter().zip(&report.falvolt) {
                println!(
                    "  {:>5} | {:>7} | {:>7}",
                    fapit.epoch,
                    pct(fapit.test_accuracy),
                    pct(falvolt.test_accuracy)
                );
            }
            let (fapit_epochs, falvolt_epochs) = report.epochs_to_fraction_of_baseline(0.95);
            println!(
                "  epochs to 95% of baseline: FaPIT {fapit_epochs:?}, FalVolt {falvolt_epochs:?}"
            );
        }
    }
    Ok(())
}
