//! `bench_gate --schema-only` end-to-end: same schema as the tidy pass,
//! typed exit codes, machine-readable failure lines.

use std::path::Path;
use std::process::{Command, Output};

fn gate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args(args)
        .output()
        .expect("bench_gate runs")
}

#[test]
fn committed_bench_json_conforms() {
    let out = gate(&["--schema-only"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("conforms to the bench schema"));
}

#[test]
fn schema_violations_exit_8_with_file_line_diagnostics() {
    // The tidy violations fixture doubles as the bad-JSON input, so the two
    // gates are proven against the same file.
    let bad = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../tidy/fixtures/violations/BENCH_kernels.json");
    let out = gate(&["--schema-only", bad.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(8), "schema violations exit 8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is utf8");
    assert!(
        stderr.contains(":3: [bench-schema] bad_isa/isa: unknown ISA \"avx1024\""),
        "diagnostics carry file:line: {stderr}"
    );
    assert!(
        stderr.contains("bench-gate-failure: {\"kind\": \"schema-violation\""),
        "machine-readable lines ride along: {stderr}"
    );
    assert!(stderr.contains("3 schema violation(s)"));
}

#[test]
fn unreadable_file_exits_2_in_schema_mode() {
    let out = gate(&["--schema-only", "/nonexistent/BENCH_kernels.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("current-unreadable"));
}
