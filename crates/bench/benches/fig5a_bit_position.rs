//! Figure 5a — accuracy vs stuck-at fault bit location (sa0 and sa1).
//!
//! Prints the figure's series once, then benchmarks the underlying kernel
//! (one faulty-inference evaluation pass through the systolic backend).

use criterion::{criterion_group, criterion_main, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::DatasetKind;
use falvolt::vulnerability::accuracy_under_faults;
use falvolt_bench::{bench_context, print_series};
use falvolt_systolic::{FaultMap, StuckAt};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let msb = ctx.systolic_config().accumulator_format().msb();
    let vuln = ctx.scale().vulnerability_config();

    // Historical seed + mixer: the drawn maps (and series) match the
    // pre-campaign driver's recorded output.
    let run = Campaign::new(&mut ctx)
        .axis(Axis::Polarity(StuckAt::ALL.to_vec()))
        .axis(Axis::BitPosition(vec![0, 4, 8, 12, msb]))
        .axis(Axis::FaultyPes(vec![8]))
        .scenarios_per_cell(vuln.iterations)
        .seed(vuln.seed)
        .seed_mixer(falvolt::campaign::mixers::per_bit)
        .run()
        .expect("figure 5a");
    println!(
        "\nFigure 5a — accuracy vs fault bit location ({}):",
        ctx.kind().label()
    );
    for series in run.mean_series("bit") {
        print_series("  series", "bit", &series);
    }

    // Kernel benchmark: one evaluation pass with MSB stuck-at-1 faults.
    let systolic = *ctx.systolic_config();
    let mut rng = StdRng::seed_from_u64(2);
    let fault_map = FaultMap::random_faulty_pes(&systolic, 8, msb, StuckAt::One, &mut rng).unwrap();
    let test = ctx.test_batches().to_vec();
    c.bench_function("fig5a/faulty_inference_eval", |b| {
        b.iter(|| {
            let accuracy =
                accuracy_under_faults(ctx.network_mut(), systolic, fault_map.clone(), &test)
                    .unwrap();
            criterion::black_box(accuracy)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
