//! Figure 5b — accuracy vs number of faulty PEs (worst-case MSB stuck-at-1).
//!
//! Prints the figure's series once, then benchmarks fault-map generation and
//! a single faulty evaluation as the underlying kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::DatasetKind;
use falvolt_bench::{bench_context, print_series};
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let vuln = ctx.scale().vulnerability_config();
    // Historical seed + mixer: the drawn maps (and series) match the
    // pre-campaign driver's recorded output.
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultyPes(vec![0, 4, 8, 16, 32, 64]))
        .scenarios_per_cell(vuln.iterations)
        .seed(vuln.seed)
        .seed_mixer(falvolt::campaign::mixers::per_faulty_pe_count)
        .run()
        .expect("figure 5b sweep");
    println!(
        "\nFigure 5b — accuracy vs faulty PEs ({}):",
        ctx.kind().label()
    );
    println!("  baseline: {:.1}%", run.baseline_accuracy() * 100.0);
    for series in run.mean_series("faulty_pes") {
        print_series("  series", "faulty PEs", &series);
    }

    // Kernel benchmark: drawing a fault map of the paper's sizes on the full
    // 256x256 grid.
    let paper_grid = SystolicConfig::paper_256x256();
    let mut group = c.benchmark_group("fig5b/fault_map_generation_256x256");
    for &pes in &[8usize, 64, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, &pes| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let map = FaultMap::random_faulty_pes(
                    &paper_grid,
                    pes,
                    paper_grid.accumulator_format().msb(),
                    StuckAt::One,
                    &mut rng,
                )
                .unwrap();
                criterion::black_box(map.faulty_pe_count())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
