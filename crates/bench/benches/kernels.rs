//! Supporting micro-benchmarks and ablations:
//!
//! * float vs clean-systolic vs faulty-systolic matrix products,
//! * im2col lowering,
//! * surrogate-gradient ablation (paper Eq. 2 triangular vs the ATan default)
//!   — the design-choice ablation called out in `DESIGN.md` §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falvolt_snn::layers::{ForwardContext, Layer, Mode, SpikingLayer};
use falvolt_snn::neuron::NeuronConfig;
use falvolt_snn::surrogate::Surrogate;
use falvolt_snn::FloatBackend;
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig, SystolicExecutor};
use falvolt_tensor::ops::Conv2dDims;
use falvolt_tensor::{ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn matmul_backends(c: &mut Criterion) {
    let activations = Tensor::from_fn(&[64, 72], |i| ((i % 3) == 0) as u8 as f32);
    let weights = Tensor::from_fn(&[72, 8], |i| (i % 7) as f32 * 0.05);
    let config = SystolicConfig::new(16, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let fault_map = FaultMap::random_faulty_pes(
        &config,
        16,
        config.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();

    let mut group = c.benchmark_group("kernels/matmul");
    group.bench_function("float", |b| {
        b.iter(|| criterion::black_box(ops::matmul(&activations, &weights).unwrap()))
    });
    let clean = SystolicExecutor::new(config, FaultMap::new(config));
    group.bench_function("systolic_clean", |b| {
        b.iter(|| criterion::black_box(clean.matmul(&activations, &weights).unwrap()))
    });
    let faulty = SystolicExecutor::new(config, fault_map);
    group.bench_function("systolic_faulty", |b| {
        b.iter(|| criterion::black_box(faulty.matmul(&activations, &weights).unwrap()))
    });
    group.finish();
}

fn im2col_lowering(c: &mut Criterion) {
    let dims = Conv2dDims::new(16, 8, 8, 16, 16, 3, 1, 1).unwrap();
    let input = Tensor::from_fn(&[16, 8, 16, 16], |i| (i % 5) as f32 * 0.2);
    c.bench_function("kernels/im2col_16x8x16x16_k3", |b| {
        b.iter(|| criterion::black_box(ops::im2col(&input, &dims).unwrap()))
    });
}

fn surrogate_ablation(c: &mut Criterion) {
    // Ablation: the training step cost and gradient flow of the paper's
    // triangular surrogate (Eq. 2) vs the ATan default, at several gammas.
    let backend = FloatBackend::new();
    let input = Tensor::from_fn(&[32, 256], |i| (i % 13) as f32 * 0.15);
    let grad = Tensor::ones(&[32, 256]);
    let mut group = c.benchmark_group("kernels/surrogate_ablation");
    let variants: Vec<(&str, Surrogate)> = vec![
        ("triangular_gamma_0.5", Surrogate::Triangular { gamma: 0.5 }),
        ("triangular_gamma_1.0", Surrogate::Triangular { gamma: 1.0 }),
        ("triangular_gamma_2.0", Surrogate::Triangular { gamma: 2.0 }),
        ("atan_alpha_2.0", Surrogate::Atan { alpha: 2.0 }),
        ("fast_sigmoid_alpha_4", Surrogate::FastSigmoid { alpha: 4.0 }),
    ];
    for (name, surrogate) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &surrogate, |b, &s| {
            let config = NeuronConfig {
                surrogate: s,
                ..NeuronConfig::falvolt_retraining()
            };
            let mut layer = SpikingLayer::new("ablate", config);
            b.iter(|| {
                layer.reset_state();
                let ctx = ForwardContext::new(Mode::Train, &backend);
                let spikes = layer.forward(&input, &ctx).unwrap();
                let grad_in = layer.backward(&grad).unwrap();
                criterion::black_box((spikes, grad_in))
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = matmul_backends, im2col_lowering, surrogate_ablation
}
criterion_main!(benches);
