//! Supporting micro-benchmarks and ablations:
//!
//! * float vs clean-systolic vs faulty-systolic matrix products,
//! * im2col lowering,
//! * surrogate-gradient ablation (paper Eq. 2 triangular vs the ATan default)
//!   — the design-choice ablation called out in `DESIGN.md` §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falvolt::{ScenarioProducts, SystolicBackend};
use falvolt_snn::config::ArchitectureConfig;
use falvolt_snn::layers::{
    AvgPool2d, Conv2d, Flatten, ForwardContext, Layer, Linear, Mode, SpikingLayer,
};
use falvolt_snn::neuron::NeuronConfig;
use falvolt_snn::surrogate::Surrogate;
use falvolt_snn::{
    EnginePreset, FloatBackend, MatmulBackend, MatmulOutput, MatmulRequest, SpikingNetwork,
    SweepCache,
};
use falvolt_systolic::{FaultMap, ProductCache, StuckAt, SystolicConfig, SystolicExecutor};
use falvolt_tensor::ops::Conv2dDims;
use falvolt_tensor::{ops, MatmulHint, OperandProfile, SpikeIndex, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn matmul_backends(c: &mut Criterion) {
    let activations = Tensor::from_fn(&[64, 72], |i| ((i % 3) == 0) as u8 as f32);
    let weights = Tensor::from_fn(&[72, 8], |i| (i % 7) as f32 * 0.05);
    let config = SystolicConfig::new(16, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let fault_map = FaultMap::random_faulty_pes(
        &config,
        16,
        config.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();

    let mut group = c.benchmark_group("kernels/matmul");
    group.bench_function("float", |b| {
        b.iter(|| criterion::black_box(ops::matmul(&activations, &weights).unwrap()))
    });
    let clean = SystolicExecutor::new(config, FaultMap::new(config));
    group.bench_function("systolic_clean", |b| {
        b.iter(|| criterion::black_box(clean.matmul(&activations, &weights).unwrap()))
    });
    let faulty = SystolicExecutor::new(config, fault_map);
    group.bench_function("systolic_faulty", |b| {
        b.iter(|| criterion::black_box(faulty.matmul(&activations, &weights).unwrap()))
    });
    group.finish();
}

fn im2col_lowering(c: &mut Criterion) {
    let dims = Conv2dDims::new(16, 8, 8, 16, 16, 3, 1, 1).unwrap();
    let input = Tensor::from_fn(&[16, 8, 16, 16], |i| (i % 5) as f32 * 0.2);
    c.bench_function("kernels/im2col_16x8x16x16_k3", |b| {
        b.iter(|| criterion::black_box(ops::im2col(&input, &dims).unwrap()))
    });
}

fn surrogate_ablation(c: &mut Criterion) {
    // Ablation: the training step cost and gradient flow of the paper's
    // triangular surrogate (Eq. 2) vs the ATan default, at several gammas.
    let backend = FloatBackend::new();
    let input = Tensor::from_fn(&[32, 256], |i| (i % 13) as f32 * 0.15);
    let grad = Tensor::ones(&[32, 256]);
    let mut group = c.benchmark_group("kernels/surrogate_ablation");
    let variants: Vec<(&str, Surrogate)> = vec![
        ("triangular_gamma_0.5", Surrogate::Triangular { gamma: 0.5 }),
        ("triangular_gamma_1.0", Surrogate::Triangular { gamma: 1.0 }),
        ("triangular_gamma_2.0", Surrogate::Triangular { gamma: 2.0 }),
        ("atan_alpha_2.0", Surrogate::Atan { alpha: 2.0 }),
        (
            "fast_sigmoid_alpha_4",
            Surrogate::FastSigmoid { alpha: 4.0 },
        ),
    ];
    for (name, surrogate) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &surrogate, |b, &s| {
            let config = NeuronConfig {
                surrogate: s,
                ..NeuronConfig::falvolt_retraining()
            };
            let mut layer = SpikingLayer::new("ablate", config);
            b.iter(|| {
                layer.reset_state();
                let ctx = ForwardContext::new(Mode::Train, &backend);
                let spikes = layer.forward(&input, &ctx).unwrap();
                let grad_in = layer.backward(&grad).unwrap();
                criterion::black_box((spikes, grad_in))
            })
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Seed-vs-kernel-layer comparison (emits BENCH_kernels.json)
// ---------------------------------------------------------------------------

/// The seed's executor inner loop (pre-`FoldPlan`), kept verbatim as the
/// "before" baseline: per-element mask-tile lookups, every column through the
/// quantized chain, no parallelism, no clean-column fast path.
fn seed_executor_matmul(
    config: &SystolicConfig,
    fault_map: &FaultMap,
    activations: &Tensor,
    weights: &Tensor,
) -> Tensor {
    use falvolt_fixedpoint::Fixed;
    use falvolt_systolic::PeCoord;

    let (m, k) = (activations.shape()[0], activations.shape()[1]);
    let n = weights.shape()[1];
    let format = config.accumulator_format();
    let rows = config.rows();
    let cols = config.cols();
    let fault_free = fault_map.is_empty();
    let a = activations.data();
    let w = weights.data();
    let mut out = vec![0.0f32; m * n];
    let mut mask_tile = vec![None; rows * cols];
    if !fault_free {
        for r in 0..rows {
            for c in 0..cols {
                mask_tile[r * cols + c] = fault_map.masks(PeCoord::new(r, c));
            }
        }
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let col_fold = j % cols;
            let mut acc = Fixed::zero(format);
            for (p, &a_ip) in a_row.iter().enumerate() {
                let masks = if fault_free {
                    None
                } else {
                    mask_tile[(p % rows) * cols + col_fold]
                };
                if a_ip != 0.0 {
                    let contribution = Fixed::from_f32(a_ip * w[p * n + j], format);
                    acc = acc.saturating_add(contribution);
                }
                if let Some(masks) = masks {
                    acc = masks.apply(acc);
                }
            }
            out[i * n + j] = acc.to_f32();
        }
    }
    Tensor::from_vec(vec![m, n], out).unwrap()
}

/// Best-of-`reps` wall-clock time of `f`, in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        criterion::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// A [`MatmulBackend`] that records, for every product, the measured lhs
/// density and whether the dispatcher's ISA-aware cutoff would route it to
/// the event-driven kernel — the instrumentation behind the kernel-choice
/// sweep.
#[derive(Debug, Default)]
struct RecordingBackend {
    inner: FloatBackend,
    calls: Mutex<Vec<(f32, bool)>>,
}

impl MatmulBackend for RecordingBackend {
    fn matmul_request(&self, req: MatmulRequest<'_>) -> falvolt_tensor::Result<MatmulOutput> {
        let profile = OperandProfile::measure(req.a().data());
        let event = !matches!(req.hint(), MatmulHint::Dense) && profile.is_event_sparse();
        self.calls
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((profile.density, event));
        self.inner.matmul_request(req)
    }

    fn name(&self) -> &str {
        "recording"
    }
}

/// Per-layer dispatch statistics: `(layer, calls, event_fraction,
/// mean_lhs_density)`.
type LayerChoiceRow = (String, usize, f64, f64);

/// Runs each of the paper's three architectures (untrained weights, one
/// synthetic input batch, temporal prefix cache off so every step's dispatch
/// decision is visible) through a [`RecordingBackend`] and returns, per
/// matmul-bearing layer, one [`LayerChoiceRow`].
fn kernel_choice_sweep() -> Vec<(String, Vec<LayerChoiceRow>)> {
    let mut report = Vec::new();
    for config in [
        ArchitectureConfig::mnist_like(),
        ArchitectureConfig::nmnist_like(),
        ArchitectureConfig::dvs_gesture_like(),
    ] {
        let mut network = config.build(33).expect("architecture builds");
        network.set_engine_preset(EnginePreset::full().with_prefix_cache(false));
        let recorder = Arc::new(RecordingBackend::default());
        network.set_backend(Arc::clone(&recorder) as Arc<dyn MatmulBackend>);
        let mut rng = StdRng::seed_from_u64(77);
        let input = falvolt_tensor::init::uniform(
            &[
                8,
                config.input_channels,
                config.input_size,
                config.input_size,
            ],
            0.0,
            1.5,
            &mut rng,
        );
        network
            .forward(&input, Mode::Eval)
            .expect("forward for kernel-choice sweep");

        // With the prefix cache off, every time step issues the products of
        // the matmul-bearing layers in network order, so call index modulo
        // the layer count attributes each call.
        let mut layer_names = vec!["encode_conv".to_string()];
        for block in 1..=config.conv_blocks {
            layer_names.push(format!("conv{block}"));
        }
        layer_names.push("fc1".to_string());
        layer_names.push("fc2".to_string());
        let calls = recorder
            .calls
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        assert_eq!(
            calls.len(),
            layer_names.len() * config.time_steps,
            "unexpected product count for {}",
            config.name
        );
        let rows = layer_names
            .iter()
            .enumerate()
            .map(|(l, name)| {
                let per_layer: Vec<&(f32, bool)> =
                    calls.iter().skip(l).step_by(layer_names.len()).collect();
                let events = per_layer.iter().filter(|(_, e)| *e).count();
                let mean_density = per_layer.iter().map(|(d, _)| f64::from(*d)).sum::<f64>()
                    / per_layer.len() as f64;
                (
                    name.clone(),
                    per_layer.len(),
                    events as f64 / per_layer.len() as f64,
                    mean_density,
                )
            })
            .collect();
        report.push((config.name.clone(), rows));
    }
    report
}

/// Times the seed's naive matmul against the blocked-parallel kernel at
/// 512x512x512 and the seed executor against the FoldPlan executor, then
/// writes the machine-readable comparison to `BENCH_kernels.json` at the
/// workspace root.
fn kernel_comparison(c: &mut Criterion) {
    use falvolt_tensor::kernels;
    use falvolt_tensor::simd;

    // Every timed entry below records the ISA the SIMD dispatcher resolved
    // to, so `bench_gate` can refuse to compare runs recorded on different
    // hardware (an AVX-512 baseline is meaningless on a NEON runner).
    let isa = simd::active().name();

    // --- matmul: naive vs blocked-parallel at 512^3 -----------------------
    let (m, k, n) = (512usize, 512usize, 512usize);
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 2654435761 + 11) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 2246822519 + 7) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let naive_s = best_of(5, || kernels::matmul_naive(&a, &b, m, k, n));
    let blocked_s = best_of(5, || kernels::matmul(&a, &b, m, k, n));
    let matmul_speedup = naive_s / blocked_s;

    // --- executor: seed loop vs FoldPlan path on a faulty 16x16 array -----
    let config = SystolicConfig::new(16, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let fault_map = FaultMap::random_faulty_pes(
        &config,
        8,
        config.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();
    let (em, ek, en) = (128usize, 256usize, 256usize);
    let acts = Tensor::from_fn(&[em, ek], |i| ((i % 3) == 0) as u8 as f32);
    let wts = Tensor::from_fn(&[ek, en], |i| (i % 11) as f32 * 0.02 - 0.1);
    let executor = SystolicExecutor::new(config, fault_map.clone());
    let seed_s = best_of(3, || seed_executor_matmul(&config, &fault_map, &acts, &wts));
    let foldplan_s = best_of(3, || executor.matmul(&acts, &wts).unwrap());
    let executor_speedup = seed_s / foldplan_s;

    // Same comparison with an empty fault map (the all-clean fast path).
    let clean_executor = SystolicExecutor::new(config, FaultMap::new(config));
    let empty_map = FaultMap::new(config);
    let seed_clean_s = best_of(3, || seed_executor_matmul(&config, &empty_map, &acts, &wts));
    let clean_s = best_of(3, || clean_executor.matmul(&acts, &wts).unwrap());

    // --- sparse spike matmul: event-driven vs dense blocked kernel --------
    // Binary lhs at paper-typical spike densities (<= 20%) plus the dense
    // fallback region; the dispatcher's cutoff is ISA-aware (25% scalar,
    // 15% on vector levels where the SIMD dense tile moved the crossover),
    // so a "speedup" field is only recorded where the event kernel engages
    // under the ISA this run dispatched to.
    let (sm, sk, sn) = (1024usize, 512usize, 64usize);
    let sb: Vec<f32> = (0..sk * sn)
        .map(|i| ((i * 2246822519 + 13) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let mut sparse_entries = Vec::new();
    for &density in &[0.0f32, 0.05, 0.10, 0.20, 0.50, 1.00] {
        let sa: Vec<f32> = (0..sm * sk)
            .map(|i| {
                let r = ((i * 2654435761 + 29) % 100_000) as f32 / 100_000.0;
                (r < density) as u8 as f32
            })
            .collect();
        let measured = OperandProfile::measure(&sa).density;
        let dense_s = best_of(5, || kernels::matmul(&sa, &sb, sm, sk, sn));
        let event_s = best_of(5, || {
            kernels::matmul_dispatch(&sa, &sb, sm, sk, sn, kernels::MatmulHint::Spikes)
        });
        let speedup_field = if measured <= kernels::sparse_density_cutoff() {
            format!(",\n      \"speedup\": {:.3}", dense_s / event_s)
        } else {
            // Dense fallback: the dispatcher picks the blocked kernel, the
            // ratio is ~1.0 noise, not a speedup claim.
            String::new()
        };
        sparse_entries.push(format!(
            "    {{\n      \"isa\": \"{isa}\",\n      \"density\": {:.2},\n      \"measured_density\": {:.4},\n      \"dense_ms\": {:.3},\n      \"event_ms\": {:.3}{}\n    }}",
            density,
            measured,
            dense_s * 1e3,
            event_s * 1e3,
            speedup_field,
        ));
    }

    // --- CSR spike tensors: index walk vs dense kernel vs probe kernel ----
    // The event-stream representation at the kernel level: a prebuilt CSR
    // index (what a spiking layer attaches for free) against the dense
    // blocked kernel and the probe-based gather-accumulate kernel. The CSR
    // walk never scans the dense operand at all.
    let mut csr_entries = Vec::new();
    for &density in &[0.02f32, 0.05, 0.10, 0.20] {
        let sa: Vec<f32> = (0..sm * sk)
            .map(|i| {
                let r = ((i * 2654435761 + 41) % 100_000) as f32 / 100_000.0;
                (r < density) as u8 as f32
            })
            .collect();
        let index = SpikeIndex::from_dense(&sa, sk).expect("binary spike matrix");
        let measured = index.density();
        let dense_s = best_of(5, || kernels::matmul(&sa, &sb, sm, sk, sn));
        let probe_s = best_of(5, || {
            kernels::matmul_dispatch(&sa, &sb, sm, sk, sn, kernels::MatmulHint::Spikes)
        });
        let csr_s = best_of(5, || {
            kernels::matmul_spikes_indexed(&index, &sb, sm, sk, sn)
        });
        csr_entries.push(format!(
            "    {{\n      \"isa\": \"{isa}\",\n      \"density\": {:.2},\n      \"measured_density\": {:.4},\n      \"dense_ms\": {:.3},\n      \"probe_event_ms\": {:.3},\n      \"csr_ms\": {:.3},\n      \"speedup\": {:.3}\n    }}",
            density,
            measured,
            dense_s * 1e3,
            probe_s * 1e3,
            csr_s * 1e3,
            dense_s / csr_s,
        ));
    }

    // --- network forward: temporal prefix cache + spike kernels on vs off -
    // Direct-encoding shape of every figure sweep: the stateless encoder
    // prefix (5x5 conv + avg-pool, the expensive part) ahead of the first
    // spiking layer, then a spiking classifier head, over T = 8 steps on a
    // static input.
    let time_steps = 8usize;
    let net_input = Tensor::from_fn(&[8, 1, 32, 32], |i| {
        ((i * 2654435761 + 17) % 1000) as f32 / 400.0
    });
    let build_network = || {
        let mut network = SpikingNetwork::new(time_steps);
        network.push(Conv2d::new("conv", 1, 16, 5, 1, 2, 21).unwrap());
        network.push(AvgPool2d::new("pool", 2));
        network.push(SpikingLayer::new("sn1", NeuronConfig::paper_default()));
        network.push(Flatten::new("flatten"));
        network.push(Linear::new("fc", 16 * 16 * 16, 10, 22).unwrap());
        network.push(SpikingLayer::new("sn2", NeuronConfig::paper_default()));
        network
    };
    // Measure the hidden spike density the linear layer actually consumes.
    let spike_density = {
        let float = FloatBackend::new();
        let ctx = ForwardContext::new(Mode::Eval, &float);
        let mut conv = Conv2d::new("conv", 1, 16, 5, 1, 2, 21).unwrap();
        let mut pool = AvgPool2d::new("pool", 2);
        let mut sn1 = SpikingLayer::new("sn1", NeuronConfig::paper_default());
        let fm = conv.forward(&net_input, &ctx).unwrap();
        let pooled = pool.forward(&fm, &ctx).unwrap();
        let spikes = sn1.forward(&pooled, &ctx).unwrap();
        OperandProfile::measure(spikes.data()).density
    };
    let mut engine_on = build_network();
    let mut engine_off = build_network();
    engine_off.set_engine_preset(EnginePreset::seed_equivalent());
    let uncached_s = best_of(3, || engine_off.forward(&net_input, Mode::Eval).unwrap());
    let cached_s = best_of(3, || engine_on.forward(&net_input, Mode::Eval).unwrap());

    // --- Fig-5-shaped scenario sweep: 32 fault maps x one input batch ------
    // The sweep axis of every figure: many fault scenarios against the same
    // trained network and input. Baseline = the PR 2 engine (one deep
    // network clone per scenario, mask chains fully replayed, no sharing);
    // engine = scenario views on Arc-shared weights, composed mask chains,
    // the im2col/prefix sweep cache and the shared clean-product cache.
    // Outputs are asserted bit-identical before anything is timed.
    let sys16 = SystolicConfig::new(16, 16).unwrap();
    let msb = sys16.accumulator_format().msb();
    let scenario_maps: Vec<FaultMap> = (0..32)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x5CEA ^ ((i as u64) << 8));
            let faulty_pes = 2 + (i % 7);
            FaultMap::random_faulty_pes(&sys16, faulty_pes, msb, StuckAt::One, &mut rng).unwrap()
        })
        .collect();
    let scenario_net = build_network();
    let run_per_clone_baseline = || -> Vec<Tensor> {
        scenario_maps
            .iter()
            .map(|map| {
                let mut worker = scenario_net.unshared_clone();
                worker.set_backend(
                    SystolicBackend::builder(sys16, map.clone())
                        .composed_mask_chains(false)
                        .shared(),
                );
                worker.forward(&net_input, Mode::Eval).unwrap()
            })
            .collect()
    };
    let run_scenario_engine = || -> Vec<Tensor> {
        // Fresh caches per run: the sweep owns them, and timing must include
        // the misses that fill them. Workers are members of one
        // ScenarioProducts set, so products against scenario-invariant
        // operands are evaluated for all 32 maps in one batched event walk.
        let sweep_cache = Arc::new(SweepCache::new());
        let product_cache = Arc::new(ProductCache::new());
        let set = Arc::new(ScenarioProducts::new(
            sys16,
            scenario_maps.clone(),
            Arc::clone(&product_cache),
        ));
        (0..scenario_maps.len())
            .map(|s| {
                let mut worker = scenario_net.scenario_view();
                worker.set_sweep_cache(Some(Arc::clone(&sweep_cache)));
                worker.set_backend(ScenarioProducts::member(&set, s).unwrap());
                worker.forward(&net_input, Mode::Eval).unwrap()
            })
            .collect()
    };
    let baseline_outputs = run_per_clone_baseline();
    let engine_outputs = run_scenario_engine();
    assert_eq!(baseline_outputs.len(), engine_outputs.len());
    for (i, (a, b)) in baseline_outputs.iter().zip(&engine_outputs).enumerate() {
        assert_eq!(
            a.data(),
            b.data(),
            "scenario {i} diverged from the per-clone baseline"
        );
    }
    let scenario_baseline_s = best_of(2, run_per_clone_baseline);
    let scenario_engine_s = best_of(2, run_scenario_engine);

    // --- campaign-driven Fig-5 sweep: the scheduler's eval fan-out ---------
    // The same 32 scenarios driven through `scenario_accuracies` — the exact
    // fan-out the Campaign scheduler uses for evaluation cells (scenario
    // views, preset threading, sweep/product caches, ScenarioProducts
    // batching) — against the sequential per-clone reference engine.
    // Accuracies are asserted identical before timing.
    let (campaign_reference_s, campaign_engine_s) = {
        use falvolt::vulnerability::{reference_accuracies, scenario_accuracies, SweepCaches};
        use falvolt_snn::trainer::Batch;
        let campaign_test = vec![Batch::new(net_input.clone(), (0..8).collect()).unwrap()];
        let scenario_list: Vec<(SystolicConfig, FaultMap)> =
            scenario_maps.iter().map(|m| (sys16, m.clone())).collect();
        let reference =
            reference_accuracies(&scenario_net, &scenario_list, &campaign_test).unwrap();
        let campaign = scenario_accuracies(
            &scenario_net,
            scenario_list.clone(),
            &campaign_test,
            &SweepCaches::new(),
            &EnginePreset::full(),
        )
        .unwrap();
        assert_eq!(
            reference, campaign,
            "campaign eval fan-out diverged from the per-clone reference"
        );
        let campaign_reference_s = best_of(2, || {
            reference_accuracies(&scenario_net, &scenario_list, &campaign_test).unwrap()
        });
        let campaign_engine_s = best_of(2, || {
            // Fresh caches per run: the campaign owns them, and timing must
            // include the misses that fill them.
            scenario_accuracies(
                &scenario_net,
                scenario_list.clone(),
                &campaign_test,
                &SweepCaches::new(),
                &EnginePreset::full(),
            )
            .unwrap()
        });
        (campaign_reference_s, campaign_engine_s)
    };

    // --- checkpointed campaign: wave checkpointing + wire-format overhead --
    // A Fig-5 faulty-PE plan driven through the actual `Campaign` scheduler,
    // uncheckpointed (one wave, all scenarios batched) vs checkpointing
    // every `checkpoint_every` cells — where the sink pays the full resume
    // wire cost (serialize to JSON, parse back, verify). Results are
    // asserted bit-identical before timing. The gated "speedup" encodes the
    // < 3% overhead budget as `1.03 x uncheckpointed / checkpointed`, so the
    // standard floor-1.0 gate trips whenever checkpointing costs more than
    // 3% of the run.
    const CHECKPOINT_EVERY: usize = 8;
    let (campaign_plain_s, campaign_checkpointed_s, checkpointed_cells) = {
        use falvolt::campaign::{Axis, Campaign, CampaignCheckpoint};
        use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
        fn plan(ctx: &mut ExperimentContext) -> Campaign<'_> {
            Campaign::new(ctx)
                .axis(Axis::FaultyPes((0..16).map(|i| i * 2).collect()))
                .scenarios_per_cell(2)
                .seed(0x51D)
        }
        let mut ctx =
            ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42).unwrap();
        let run_checkpointed = |ctx: &mut ExperimentContext| {
            plan(ctx)
                .checkpoint_every(CHECKPOINT_EVERY)
                .checkpoint_sink(|cp| {
                    let wire = cp.to_json();
                    let reloaded = CampaignCheckpoint::from_json(&wire).unwrap();
                    assert_eq!(&reloaded, cp, "checkpoint wire round-trip diverged");
                    criterion::black_box(wire);
                })
                .run()
                .unwrap()
        };
        let plain = plan(&mut ctx).run().unwrap();
        let checkpointed = run_checkpointed(&mut ctx);
        assert_eq!(
            plain, checkpointed,
            "wave checkpointing must not change campaign results"
        );
        // Paired, interleaved reps: the two variants differ by ~1% while
        // run-to-run drift on a shared machine is ~3%, so each rep times
        // both back-to-back and the minima are taken over the pairs —
        // otherwise drift between two separate best_of blocks would swamp
        // the overhead being gated.
        let mut plain_s = f64::INFINITY;
        let mut checkpointed_s = f64::INFINITY;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            criterion::black_box(plan(&mut ctx).run().unwrap());
            plain_s = plain_s.min(t.elapsed().as_secs_f64());
            let t = std::time::Instant::now();
            criterion::black_box(run_checkpointed(&mut ctx));
            checkpointed_s = checkpointed_s.min(t.elapsed().as_secs_f64());
        }
        (plain_s, checkpointed_s, plain.len())
    };

    // --- executor-level multi-map batching: per-map loop vs one event walk -
    // The same 32 fault maps against one encoder-shaped product
    // (m x k x n = 2048 x 48 x 32 on the 16x16 grid): the per-map loop
    // re-resolves every row's event list and re-quantizes every contribution
    // once per map; `matmul_scenarios` walks the stream once for all maps.
    let (bm, bk, bn) = (2048usize, 48usize, 32usize);
    let batch_a = Tensor::from_fn(&[bm, bk], |i| ((i * 2654435761 + 23) % 1000) as f32 / 400.0);
    let batch_b = Tensor::from_fn(&[bk, bn], |i| (i % 11) as f32 * 0.02 - 0.1);
    let per_map_exec: Vec<SystolicExecutor> = scenario_maps
        .iter()
        .map(|map| SystolicExecutor::new(sys16, map.clone()))
        .collect();
    let batch_exec = SystolicExecutor::new(sys16, FaultMap::new(sys16));
    let per_map_outputs: Vec<Tensor> = per_map_exec
        .iter()
        .map(|e| e.matmul(&batch_a, &batch_b).unwrap())
        .collect();
    let batched_outputs = batch_exec
        .matmul_scenarios(&batch_a, &batch_b, &scenario_maps)
        .unwrap();
    for (s, (a_out, b_out)) in per_map_outputs.iter().zip(&batched_outputs).enumerate() {
        assert_eq!(
            a_out.data(),
            b_out.data(),
            "batched scenario {s} diverged from the per-map product"
        );
    }
    let per_map_s = best_of(3, || {
        per_map_exec
            .iter()
            .map(|e| e.matmul(&batch_a, &batch_b).unwrap())
            .collect::<Vec<_>>()
    });
    let batched_s = best_of(3, || {
        batch_exec
            .matmul_scenarios(&batch_a, &batch_b, &scenario_maps)
            .unwrap()
    });

    // --- SIMD kernel layer: forced-scalar vs runtime-dispatched lanes -----
    // The three lifted hot loops, each timed with the dispatcher pinned to
    // the scalar reference kernels and again on the detected ISA. Outputs
    // are checked for equivalence before anything is timed: the dense tile
    // uses fused multiply-add, so it gets the documented 1e-5 relative
    // tolerance; spike row-adds and the quantized fault chains are
    // bit-identical by contract.
    let simd_scalar_dense_s;
    let scalar_dense = {
        let _scalar = simd::force(Some(simd::Isa::Scalar));
        let out = kernels::matmul(&a, &b, m, k, n);
        simd_scalar_dense_s = best_of(5, || kernels::matmul(&a, &b, m, k, n));
        out
    };
    let simd_dense = kernels::matmul(&a, &b, m, k, n);
    for (i, (s, v)) in scalar_dense.iter().zip(&simd_dense).enumerate() {
        let tol = 1e-5f32 * s.abs().max(v.abs()).max(1.0);
        assert!(
            (s - v).abs() <= tol,
            "dense element {i} diverged: scalar {s} vs {isa} {v}"
        );
    }
    let simd_dense_s = best_of(5, || kernels::matmul(&a, &b, m, k, n));

    let simd_csr_a: Vec<f32> = (0..sm * sk)
        .map(|i| {
            let r = ((i * 2654435761 + 41) % 100_000) as f32 / 100_000.0;
            (r < 0.10) as u8 as f32
        })
        .collect();
    let simd_csr_index = SpikeIndex::from_dense(&simd_csr_a, sk).expect("binary spike matrix");
    let simd_scalar_csr_s;
    let scalar_csr = {
        let _scalar = simd::force(Some(simd::Isa::Scalar));
        let out = kernels::matmul_spikes_indexed(&simd_csr_index, &sb, sm, sk, sn);
        simd_scalar_csr_s = best_of(5, || {
            kernels::matmul_spikes_indexed(&simd_csr_index, &sb, sm, sk, sn)
        });
        out
    };
    let simd_csr = kernels::matmul_spikes_indexed(&simd_csr_index, &sb, sm, sk, sn);
    assert_eq!(
        scalar_csr, simd_csr,
        "CSR spike row-adds must be bit-identical across ISAs"
    );
    let simd_csr_s = best_of(5, || {
        kernels::matmul_spikes_indexed(&simd_csr_index, &sb, sm, sk, sn)
    });

    let simd_scalar_exec_s;
    let scalar_exec = {
        let _scalar = simd::force(Some(simd::Isa::Scalar));
        let out = executor.matmul(&acts, &wts).unwrap();
        simd_scalar_exec_s = best_of(3, || executor.matmul(&acts, &wts).unwrap());
        out
    };
    let simd_exec = executor.matmul(&acts, &wts).unwrap();
    assert_eq!(
        scalar_exec.data(),
        simd_exec.data(),
        "quantized fault chains must be bit-identical across ISAs"
    );
    let simd_exec_s = best_of(3, || executor.matmul(&acts, &wts).unwrap());

    let simd_section = format!(
        "  \"simd_kernels\": {{\n    \"dense_matmul_512x512x512\": {{\n      \"isa\": \"{isa}\",\n      \"scalar_ms\": {:.3},\n      \"simd_ms\": {:.3},\n      \"speedup\": {:.3}\n    }},\n    \"csr_matmul_1024x512x64_density_0.10\": {{\n      \"isa\": \"{isa}\",\n      \"bit_identical\": true,\n      \"scalar_ms\": {:.3},\n      \"simd_ms\": {:.3},\n      \"speedup\": {:.3}\n    }},\n    \"executor_faulty_16x16_m128_k256_n256\": {{\n      \"isa\": \"{isa}\",\n      \"bit_identical\": true,\n      \"scalar_ms\": {:.3},\n      \"simd_ms\": {:.3},\n      \"speedup\": {:.3}\n    }}\n  }}",
        simd_scalar_dense_s * 1e3,
        simd_dense_s * 1e3,
        simd_scalar_dense_s / simd_dense_s,
        simd_scalar_csr_s * 1e3,
        simd_csr_s * 1e3,
        simd_scalar_csr_s / simd_csr_s,
        simd_scalar_exec_s * 1e3,
        simd_exec_s * 1e3,
        simd_scalar_exec_s / simd_exec_s,
    );

    // --- kernel-choice frequency across the paper's architectures ---------
    let choice_report = kernel_choice_sweep();
    let choice_sections: Vec<String> = choice_report
        .iter()
        .map(|(arch, rows)| {
            let entries: Vec<String> = rows
                .iter()
                .map(|(layer, calls, event_frac, mean_density)| {
                    format!(
                        "    {{\n      \"layer\": \"{layer}\",\n      \"calls\": {calls},\n      \"event_kernel_frac\": {event_frac:.4},\n      \"mean_lhs_density\": {mean_density:.4}\n    }}"
                    )
                })
                .collect();
            format!(
                "  \"kernel_choice_{arch}\": [\n{}\n  ]",
                entries.join(",\n")
            )
        })
        .collect();

    let threads = rayon::current_num_threads();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"command\": \"cargo bench -p falvolt-bench --bench kernels\",\n  \"threads\": {threads},\n  \"matmul_512x512x512\": {{\n    \"isa\": \"{isa}\",\n    \"naive_ms\": {:.3},\n    \"blocked_parallel_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"executor_faulty_16x16_m128_k256_n256\": {{\n    \"isa\": \"{isa}\",\n    \"seed_loop_ms\": {:.3},\n    \"foldplan_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"executor_fault_free_16x16_m128_k256_n256\": {{\n    \"isa\": \"{isa}\",\n    \"seed_loop_ms\": {:.3},\n    \"clean_fast_path_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"sparse_matmul_1024x512x64\": [\n{}\n  ],\n  \"csr_matmul_1024x512x64\": [\n{}\n  ],\n  \"network_forward_prefix_cache_T8_conv16k5_pool_32x32\": {{\n    \"isa\": \"{isa}\",\n    \"time_steps\": {time_steps},\n    \"spike_density\": {:.4},\n    \"uncached_dense_ms\": {:.3},\n    \"event_engine_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"scenario_sweep_fig5_32maps_T8_conv16k5_pool_32x32\": {{\n    \"isa\": \"{isa}\",\n    \"scenarios\": {},\n    \"time_steps\": {time_steps},\n    \"bit_identical\": true,\n    \"per_clone_baseline_ms\": {:.3},\n    \"engine_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"campaign_fig5_eval_32maps_T8_conv16k5_pool_32x32\": {{\n    \"isa\": \"{isa}\",\n    \"scenarios\": {},\n    \"time_steps\": {time_steps},\n    \"bit_identical\": true,\n    \"per_clone_reference_ms\": {:.3},\n    \"campaign_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"campaign_fig5_checkpointed\": {{\n    \"isa\": \"{isa}\",\n    \"cells\": {},\n    \"scenarios_per_cell\": 2,\n    \"checkpoint_every\": {CHECKPOINT_EVERY},\n    \"bit_identical\": true,\n    \"overhead_budget\": 1.03,\n    \"uncheckpointed_ms\": {:.3},\n    \"checkpointed_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"matmul_scenarios_32maps_16x16_m2048_k48_n32\": {{\n    \"isa\": \"{isa}\",\n    \"scenarios\": {},\n    \"bit_identical\": true,\n    \"per_map_ms\": {:.3},\n    \"batched_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n{simd_section},\n{}\n}}\n",
        naive_s * 1e3,
        blocked_s * 1e3,
        matmul_speedup,
        seed_s * 1e3,
        foldplan_s * 1e3,
        executor_speedup,
        seed_clean_s * 1e3,
        clean_s * 1e3,
        seed_clean_s / clean_s,
        sparse_entries.join(",\n"),
        csr_entries.join(",\n"),
        spike_density,
        uncached_s * 1e3,
        cached_s * 1e3,
        uncached_s / cached_s,
        scenario_maps.len(),
        scenario_baseline_s * 1e3,
        scenario_engine_s * 1e3,
        scenario_baseline_s / scenario_engine_s,
        scenario_maps.len(),
        campaign_reference_s * 1e3,
        campaign_engine_s * 1e3,
        campaign_reference_s / campaign_engine_s,
        checkpointed_cells,
        campaign_plain_s * 1e3,
        campaign_checkpointed_s * 1e3,
        1.03 * campaign_plain_s / campaign_checkpointed_s,
        scenario_maps.len(),
        per_map_s * 1e3,
        batched_s * 1e3,
        per_map_s / batched_s,
        choice_sections.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("kernel comparison written to BENCH_kernels.json:\n{json}");

    // Register the same comparisons as criterion benchmarks for trend runs.
    let mut group = c.benchmark_group("kernels/matmul_512");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("naive", |bch| {
        bch.iter(|| criterion::black_box(kernels::matmul_naive(&a, &b, m, k, n)))
    });
    group.bench_function("blocked_parallel", |bch| {
        bch.iter(|| criterion::black_box(kernels::matmul(&a, &b, m, k, n)))
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/executor_faulty");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("seed_loop", |bch| {
        bch.iter(|| criterion::black_box(seed_executor_matmul(&config, &fault_map, &acts, &wts)))
    });
    group.bench_function("foldplan", |bch| {
        bch.iter(|| criterion::black_box(executor.matmul(&acts, &wts).unwrap()))
    });
    group.finish();

    // Trend registrations for the event-driven engine comparisons.
    let sa10: Vec<f32> = (0..sm * sk)
        .map(|i| {
            let r = ((i * 2654435761 + 29) % 100_000) as f32 / 100_000.0;
            (r < 0.10) as u8 as f32
        })
        .collect();
    let mut group = c.benchmark_group("kernels/sparse_matmul_density_0.10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("dense_blocked", |bch| {
        bch.iter(|| criterion::black_box(kernels::matmul(&sa10, &sb, sm, sk, sn)))
    });
    group.bench_function("event_driven", |bch| {
        bch.iter(|| {
            criterion::black_box(kernels::matmul_dispatch(
                &sa10,
                &sb,
                sm,
                sk,
                sn,
                kernels::MatmulHint::Spikes,
            ))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/network_forward_T8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("dense_uncached", |bch| {
        bch.iter(|| criterion::black_box(engine_off.forward(&net_input, Mode::Eval).unwrap()))
    });
    group.bench_function("event_engine", |bch| {
        bch.iter(|| criterion::black_box(engine_on.forward(&net_input, Mode::Eval).unwrap()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = kernel_comparison, matmul_backends, im2col_lowering, surrogate_ablation
}
criterion_main!(benches);
