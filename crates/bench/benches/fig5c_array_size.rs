//! Figure 5c — accuracy vs systolic-array size at a fixed faulty-PE count.
//!
//! Prints the figure's series once, then benchmarks the systolic executor's
//! matmul across array sizes (the kernel whose reuse factor explains the
//! figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::DatasetKind;
use falvolt_bench::{bench_context, print_series};
use falvolt_systolic::{FaultMap, SystolicConfig, SystolicExecutor};
use falvolt_tensor::Tensor;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let vuln = ctx.scale().vulnerability_config();
    // Historical seed + mixer: the drawn maps (and series) match the
    // pre-campaign driver's recorded output.
    let run = Campaign::new(&mut ctx)
        .axis(Axis::ArraySize(vec![4, 8, 16, 32]))
        .axis(Axis::FaultyPes(vec![4]))
        .scenarios_per_cell(vuln.iterations)
        .seed(vuln.seed)
        .seed_mixer(falvolt::campaign::mixers::per_array_size)
        .run()
        .expect("figure 5c sweep");
    println!(
        "\nFigure 5c — accuracy vs array size ({}, 4 faulty PEs):",
        ctx.kind().label()
    );
    for series in run.mean_series("array_size") {
        print_series("  series", "array side", &series);
    }

    // Kernel benchmark: the same matrix product executed on arrays of
    // different sizes (fault-free; isolates the mapping/fold overhead).
    let activations = Tensor::from_fn(&[32, 72], |i| ((i % 3) == 0) as u8 as f32);
    let weights = Tensor::from_fn(&[72, 8], |i| (i % 7) as f32 * 0.05);
    let mut group = c.benchmark_group("fig5c/systolic_matmul_by_array_size");
    for &size in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let config = SystolicConfig::square(size).unwrap();
            let executor = SystolicExecutor::new(config, FaultMap::new(config));
            b.iter(|| criterion::black_box(executor.matmul(&activations, &weights).unwrap()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
