//! Figure 7 — classification accuracy of FaP, FaPIT and FalVolt at 10% / 30%
//! / 60% faulty PEs.
//!
//! Prints the comparison once, then benchmarks the fault-aware pruning kernel
//! (mask derivation and application).

use criterion::{criterion_group, criterion_main, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;
use falvolt::prune::PruneMasks;
use falvolt_bench::{bench_context, pct};
use falvolt_systolic::{FaultMap, StuckAt};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let epochs = ExperimentScale::Tiny.retrain_epochs();
    // Historical seed mixer: the drawn chips match the pre-campaign driver.
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.10, 0.30, 0.60]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::FaP,
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .seed_mixer(falvolt::campaign::mixers::per_fault_rate_rotated)
        .run()
        .expect("figure 7 comparison");
    println!(
        "\nFigure 7 — mitigation comparison ({}):",
        ctx.kind().label()
    );
    println!("  baseline: {}", pct(run.baseline_accuracy()));
    println!("  fault rate | strategy | accuracy");
    for cell in &run {
        let outcome = cell.outcome().expect("retraining cell");
        println!(
            "  {:>9.0}% | {:<8} | {:>6}",
            cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
            outcome.strategy,
            pct(cell.accuracy)
        );
    }

    // Kernel benchmark: deriving and applying prune masks for a 30% fault map.
    let systolic = *ctx.systolic_config();
    let mut rng = StdRng::seed_from_u64(5);
    let fault_map = FaultMap::random_with_rate(
        &systolic,
        0.30,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();
    ctx.restore_baseline().unwrap();
    c.bench_function("fig7/prune_mask_derive_and_apply", |b| {
        b.iter(|| {
            let masks = PruneMasks::derive(ctx.network_mut(), &fault_map);
            masks.apply(ctx.network_mut()).unwrap();
            criterion::black_box(masks.pruned_fraction())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
